/**
 * @file
 * Paper Figure 15: the percent change, relative to the baseline, in
 * the mean number of cycles to resolve a mispredicted branch under
 * promotion + cost-regulated packing. The paper reports an average
 * increase (~8%): branches fetched earlier wait longer for operands.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 15",
                "Percent change in mispredicted-branch resolution time");

    const auto metric = [](const sim::SimResult &r) {
        return r.meanResolutionTime;
    };
    const auto results = sweepSuiteConfigs(
        {sim::baselineConfig(),
         sim::promotionPackingConfig(
             64, trace::PackingPolicy::CostRegulated)});
    const std::vector<double> base = metricsOf(results[0], metric);
    const std::vector<double> both = metricsOf(results[1], metric);

    printBenchmarkHeader("");
    printBenchmarkRow("baseline (cycles)", base, 2);
    printBenchmarkRow("promo+pack (cycles)", both, 2);
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("change %", change, 1);
    return 0;
}
