/**
 * @file
 * Paper Figure 6: the fetch width breakdown for gcc with branch
 * promotion at threshold 64 — fewer fetches terminate at the maximum
 * branch limit than in Figure 4.
 */

#include "bench/fetch_histogram.h"
#include "bench/harness.h"

int
main()
{
    using namespace tcsim::bench;
    printBanner("Figure 6",
                "Fetch width breakdown, gcc, promotion threshold 64");
    const tcsim::sim::SimResult result =
        runOne("gcc", tcsim::sim::promotionConfig(64));
    printFetchHistogram(result);
    return 0;
}
