/**
 * @file
 * Paper Figure 11: overall performance (IPC) of the icache front end,
 * the baseline trace cache, and promotion + cost-regulated packing,
 * with the realistic (conservative-disambiguation) execution engine.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 11",
                "IPC with the realistic execution engine");

    const auto metric = [](const sim::SimResult &r) { return r.ipc; };

    const auto results = sweepSuiteConfigs(
        {sim::icacheConfig(), sim::baselineConfig(),
         sim::promotionPackingConfig(
             64, trace::PackingPolicy::CostRegulated)});
    const std::vector<double> icache = metricsOf(results[0], metric);
    const std::vector<double> base = metricsOf(results[1], metric);
    const std::vector<double> both = metricsOf(results[2], metric);

    printBenchmarkHeader("config");
    printBenchmarkRow("icache", icache);
    printBenchmarkRow("baseline", base);
    printBenchmarkRow("promotion,packing", both);
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("both vs baseline %", change, 1);
    return 0;
}
