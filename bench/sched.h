/**
 * @file
 * The cluster-scale sweep scheduler: leases over the enumerated
 * work-unit list, handed to pulling workers over HTTP by tcsim_sched.
 *
 * Dispatch model:
 *
 *  - Work stealing by construction: there is no up-front partition.
 *    Every acquire() hands out the lowest-index unit that currently
 *    has no active lease, so an idle worker always pulls from the
 *    remaining pool and a skewed matrix cannot strand work behind a
 *    slow shard the way static round-robin sharding does.
 *
 *  - Leases expire: a worker that stops renewing (crashed, SIGKILLed,
 *    lost network) forfeits its unit after leaseTimeoutSeconds and
 *    tick() returns the unit to the pool. Workers renew from a
 *    heartbeat-driven side thread, so a healthy slow worker never
 *    loses its lease.
 *
 *  - Stragglers are speculatively RE-dispatched: once enough units
 *    have completed to trust the median duration, a unit in flight
 *    for more than stragglerK x median is handed to a second worker
 *    as well. First valid fragment wins; the loser's duplicate is
 *    counted and dropped (and the content-hashed store name makes the
 *    duplicate put a no-op).
 *
 *  - Crash-safe resume: markCompleted() pre-fills units whose valid
 *    fragments already exist in the store, so a restarted scheduler
 *    only dispatches the holes.
 *
 * Completion IS the streaming merge: complete() folds the fragment's
 * canonical integers into the rolling result vector, so the final
 * document is available the moment the last unit lands — rendered by
 * the same shared renderer as the single-process path, hence
 * byte-identical. renderPartial() exposes the rolling state as a
 * "tcsim-bench-partial-v1" document at any point in between.
 *
 * The class is a pure state machine over caller-supplied timestamps
 * (seconds on any monotonic clock): no threads, no sockets, no clock
 * reads. tcsim_sched drives it from HTTP handlers under its own
 * serialization; tests drive it with synthetic time.
 */

#ifndef TCSIM_BENCH_SCHED_H
#define TCSIM_BENCH_SCHED_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/sweep.h"

namespace tcsim::bench
{

/** Dispatch-policy knobs (defaults match tcsim_sched's flags). */
struct SchedOptions
{
    /** Seconds an unrenewed lease survives before it is revoked. */
    double leaseTimeoutSeconds = 120.0;
    /** Re-dispatch a unit in flight longer than k x median. */
    double stragglerK = 3.0;
    /** Completed-unit durations needed before the median is trusted
     * (until then nothing is classified a straggler). */
    std::uint32_t minMedianSamples = 3;
};

/** One issued lease, as returned to a pulling worker. */
struct LeaseGrant
{
    std::uint32_t unitIndex = 0;
    std::string unitId;
    std::string hash;
    /** The interval the worker should renew at (a fraction of the
     * lease timeout, so one lost renewal is survivable). */
    double renewSeconds = 0.0;
};

/** What acquire() answered (see Scheduler::acquire). */
enum class AcquireStatus
{
    Granted, ///< a lease was issued
    Wait,    ///< nothing to hand out now, but the sweep is not done
    Done,    ///< every unit has completed
};

class Scheduler
{
  public:
    Scheduler(std::vector<WorkUnit> units, SchedOptions options);

    /**
     * Pre-fill @p integers for the unit with @p hash (resume path:
     * the fragment already existed in the store). @return false for
     * an unknown hash or an already-completed unit.
     */
    bool markCompleted(const std::string &hash,
                       const ResultIntegers &integers);

    /**
     * Hand @p worker a unit. Fresh pending units are preferred
     * (lowest index first); with none left, a straggler may be
     * speculatively re-dispatched. @p grant is filled iff the status
     * is Granted.
     */
    AcquireStatus acquire(const std::string &worker, double now,
                          LeaseGrant &grant);

    /** Extend @p worker's lease on @p hash. @return false when the
     * lease is no longer held (expired or completed by another). */
    bool renew(const std::string &worker, const std::string &hash,
               double now);

    enum class CompleteStatus
    {
        Accepted,  ///< first valid result for the unit; folded in
        Duplicate, ///< unit already completed (straggler lost the race)
        Unknown,   ///< hash not in the matrix
    };

    /**
     * Deliver a completed unit: fold @p integers into the rolling
     * result vector and release every lease on the unit. Accepts
     * results from workers that no longer hold a lease (their lease
     * may have expired while the fragment was in flight — the work is
     * still valid, the fragment bytes prove it).
     */
    CompleteStatus complete(const std::string &worker,
                            const std::string &hash,
                            const ResultIntegers &integers, double now);

    /** Revoke expired leases; call periodically (and before acquire
     * decisions that should see fresh state). */
    void tick(double now);

    bool done() const { return completed_ == units_.size(); }

    /** The canonical results document; valid only when done(). */
    std::string renderResults() const;

    /** The rolling "tcsim-bench-partial-v1" document. */
    std::string renderPartial() const;

    /** The "tcsim-sched-status-v1" document for the monitor/CI. */
    std::string renderStatus(double now) const;

    const std::vector<WorkUnit> &units() const { return units_; }

    // Counters, exposed for tests and the status document.
    std::uint64_t leasesIssued() const { return leasesIssued_; }
    std::uint64_t leasesExpired() const { return leasesExpired_; }
    std::uint64_t redispatches() const { return redispatches_; }
    std::uint64_t duplicates() const { return duplicates_; }
    std::uint64_t completedUnits() const { return completed_; }

  private:
    struct ActiveLease
    {
        std::string worker;
        double start = 0.0;    ///< when the unit first went in flight
        double deadline = 0.0; ///< start/renew time + lease timeout
    };

    struct UnitState
    {
        bool completed = false;
        /** Usually 0 or 1 entries; 2 while a straggler runs twice. */
        std::vector<ActiveLease> leases;
    };

    double medianDuration() const;
    bool unitInFlight(const UnitState &state) const
    {
        return !state.completed && !state.leases.empty();
    }

    std::vector<WorkUnit> units_;
    SchedOptions options_;
    std::map<std::string, std::size_t> byHash_;
    std::vector<UnitState> states_;
    std::vector<ResultIntegers> integers_;
    std::vector<bool> filled_;
    /** Scheduler-measured durations of completed units, sorted. */
    std::vector<double> durations_;
    /** worker name -> units completed (status document only). */
    std::map<std::string, std::uint64_t> workerCompleted_;
    std::size_t completed_ = 0;
    std::uint64_t leasesIssued_ = 0;
    std::uint64_t leasesExpired_ = 0;
    std::uint64_t redispatches_ = 0;
    std::uint64_t duplicates_ = 0;
};

} // namespace tcsim::bench

#endif // TCSIM_BENCH_SCHED_H
