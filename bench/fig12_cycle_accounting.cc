/**
 * @file
 * Paper Figure 12: an accounting of all fetch cycles, per benchmark,
 * for the promotion + cost-regulated packing configuration: Useful
 * Fetch, Branch Misses, Cache Misses, Full Window, Traps, Misfetches.
 */

#include <cstdio>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 12",
                "Fetch-cycle accounting, promotion + packing");

    const sim::ProcessorConfig config = sim::promotionPackingConfig(
        64, trace::PackingPolicy::CostRegulated);

    std::printf("%-14s", "Benchmark");
    for (unsigned c = 0;
         c < static_cast<unsigned>(sim::CycleCategory::NumCategories);
         ++c) {
        std::printf("%14s",
                    sim::cycleCategoryName(
                        static_cast<sim::CycleCategory>(c)));
    }
    std::printf("\n");

    const std::vector<sim::SimResult> results =
        sweepSuiteConfigs({config}).front();
    for (const sim::SimResult &r : results) {
        std::uint64_t total = 0;
        for (unsigned c = 0;
             c < static_cast<unsigned>(sim::CycleCategory::NumCategories);
             ++c)
            total += r.cycleCat[c];
        std::printf("%-14s", shortName(r.benchmark).c_str());
        for (unsigned c = 0;
             c < static_cast<unsigned>(sim::CycleCategory::NumCategories);
             ++c) {
            std::printf("%13.1f%%",
                        100.0 * r.cycleCat[c] / std::max<std::uint64_t>(
                                                    total, 1));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
