#include "bench/sched.h"

#include <algorithm>
#include <cstdio>

namespace tcsim::bench
{

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace

Scheduler::Scheduler(std::vector<WorkUnit> units, SchedOptions options)
    : units_(std::move(units)), options_(options),
      states_(units_.size()), integers_(units_.size()),
      filled_(units_.size(), false)
{
    for (std::size_t i = 0; i < units_.size(); ++i)
        byHash_.emplace(units_[i].hash, i);
}

bool
Scheduler::markCompleted(const std::string &hash,
                         const ResultIntegers &integers)
{
    const auto it = byHash_.find(hash);
    if (it == byHash_.end() || states_[it->second].completed)
        return false;
    UnitState &state = states_[it->second];
    state.completed = true;
    state.leases.clear();
    integers_[it->second] = integers;
    filled_[it->second] = true;
    ++completed_;
    return true;
}

double
Scheduler::medianDuration() const
{
    if (durations_.empty())
        return 0.0;
    const std::size_t mid = durations_.size() / 2;
    if (durations_.size() % 2 == 1)
        return durations_[mid];
    return 0.5 * (durations_[mid - 1] + durations_[mid]);
}

AcquireStatus
Scheduler::acquire(const std::string &worker, double now,
                   LeaseGrant &grant)
{
    tick(now);
    if (done())
        return AcquireStatus::Done;

    const auto issue = [&](std::size_t index) {
        ActiveLease lease;
        lease.worker = worker;
        lease.start = now;
        lease.deadline = now + options_.leaseTimeoutSeconds;
        states_[index].leases.push_back(std::move(lease));
        ++leasesIssued_;
        grant.unitIndex = units_[index].index;
        grant.unitId = units_[index].id;
        grant.hash = units_[index].hash;
        grant.renewSeconds = options_.leaseTimeoutSeconds / 3.0;
    };

    // Fresh work first: the lowest-index unit nobody holds. There is
    // no partition — this IS the work stealing.
    for (std::size_t i = 0; i < units_.size(); ++i) {
        if (!states_[i].completed && states_[i].leases.empty()) {
            issue(i);
            return AcquireStatus::Granted;
        }
    }

    // No fresh work: maybe speculatively re-dispatch a straggler.
    // Only once the median is trustworthy, only units held by exactly
    // one (other) worker, and of those the longest in flight.
    if (durations_.size() >= options_.minMedianSamples) {
        const double threshold = options_.stragglerK * medianDuration();
        std::size_t straggler = units_.size();
        double longest = threshold;
        for (std::size_t i = 0; i < units_.size(); ++i) {
            const UnitState &state = states_[i];
            if (state.completed || state.leases.size() != 1 ||
                state.leases[0].worker == worker) {
                continue;
            }
            const double elapsed = now - state.leases[0].start;
            if (elapsed > longest) {
                longest = elapsed;
                straggler = i;
            }
        }
        if (straggler != units_.size()) {
            issue(straggler);
            ++redispatches_;
            return AcquireStatus::Granted;
        }
    }
    return AcquireStatus::Wait;
}

bool
Scheduler::renew(const std::string &worker, const std::string &hash,
                 double now)
{
    const auto it = byHash_.find(hash);
    if (it == byHash_.end() || states_[it->second].completed)
        return false;
    for (ActiveLease &lease : states_[it->second].leases) {
        if (lease.worker == worker) {
            lease.deadline = now + options_.leaseTimeoutSeconds;
            return true;
        }
    }
    return false;
}

Scheduler::CompleteStatus
Scheduler::complete(const std::string &worker, const std::string &hash,
                    const ResultIntegers &integers, double now)
{
    const auto it = byHash_.find(hash);
    if (it == byHash_.end())
        return CompleteStatus::Unknown;
    UnitState &state = states_[it->second];
    if (state.completed) {
        ++duplicates_;
        return CompleteStatus::Duplicate;
    }

    // Scheduler-measured duration: from when the unit FIRST went in
    // flight (the straggler's original dispatch, not the re-dispatch)
    // so re-dispatched units do not deflate the median.
    if (!state.leases.empty()) {
        double start = state.leases[0].start;
        for (const ActiveLease &lease : state.leases)
            start = std::min(start, lease.start);
        durations_.insert(std::upper_bound(durations_.begin(),
                                           durations_.end(), now - start),
                          now - start);
    }

    state.completed = true;
    state.leases.clear();
    integers_[it->second] = integers;
    filled_[it->second] = true;
    ++completed_;
    ++workerCompleted_[worker];
    return CompleteStatus::Accepted;
}

void
Scheduler::tick(double now)
{
    for (UnitState &state : states_) {
        if (state.completed)
            continue;
        const std::size_t before = state.leases.size();
        state.leases.erase(
            std::remove_if(state.leases.begin(), state.leases.end(),
                           [now](const ActiveLease &lease) {
                               return lease.deadline < now;
                           }),
            state.leases.end());
        leasesExpired_ += before - state.leases.size();
    }
}

std::string
Scheduler::renderResults() const
{
    return renderResultsDoc(units_, integers_);
}

std::string
Scheduler::renderPartial() const
{
    return renderPartialDoc(units_, integers_, filled_);
}

std::string
Scheduler::renderStatus(double now) const
{
    std::size_t in_flight = 0;
    double longest = 0.0;
    std::map<std::string, std::uint64_t> active;
    for (const UnitState &state : states_) {
        if (!unitInFlight(state))
            continue;
        ++in_flight;
        for (const ActiveLease &lease : state.leases) {
            longest = std::max(longest, now - lease.start);
            ++active[lease.worker];
        }
    }
    // A worker that completed units but holds nothing right now still
    // belongs in the roster.
    for (const auto &[worker, count] : workerCompleted_)
        active.emplace(worker, 0);

    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-sched-status-v1\",\n";
    out += "  \"matrix_hash\": \"" + matrixHash(units_) + "\",\n";
    out += "  \"units\": " + std::to_string(units_.size()) + ",\n";
    out += "  \"completed\": " + std::to_string(completed_) + ",\n";
    out += "  \"in_flight\": " + std::to_string(in_flight) + ",\n";
    out += "  \"pending\": " +
           std::to_string(units_.size() - completed_ - in_flight) + ",\n";
    out += "  \"leases_issued\": " + std::to_string(leasesIssued_) + ",\n";
    out += "  \"leases_expired\": " + std::to_string(leasesExpired_) +
           ",\n";
    out += "  \"redispatches\": " + std::to_string(redispatches_) + ",\n";
    out += "  \"duplicates\": " + std::to_string(duplicates_) + ",\n";
    out += "  \"median_unit_seconds\": " + formatDouble(medianDuration()) +
           ",\n";
    out +=
        "  \"longest_in_flight_seconds\": " + formatDouble(longest) + ",\n";
    out += "  \"workers\": [\n";
    std::size_t emitted = 0;
    for (const auto &[worker, leases] : active) {
        const auto completed_it = workerCompleted_.find(worker);
        const std::uint64_t units_done = completed_it != workerCompleted_.end()
                                             ? completed_it->second
                                             : 0;
        out += "    {\"worker\": \"" + jsonEscape(worker) +
               "\", \"active_leases\": " + std::to_string(leases) +
               ", \"completed\": " + std::to_string(units_done) + "}";
        out += ++emitted < active.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace tcsim::bench
