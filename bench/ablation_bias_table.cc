/**
 * @file
 * Ablation: branch bias table sizing. The paper fixes an 8K-entry
 * tagged table; this sweep shows the sensitivity of the effective
 * fetch rate and fault counts to the table size (tag conflicts evict
 * promoted state).
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation", "Bias table size sweep (promotion t=64)");

    const std::vector<std::string> benchmarks = {"gcc", "vortex",
                                                 "compress", "tex"};

    const std::vector<std::uint32_t> sizes = {512, 2048, 8192, 32768};
    std::vector<sim::ProcessorConfig> configs;
    for (const std::uint32_t entries : sizes) {
        sim::ProcessorConfig config = sim::promotionConfig(64);
        config.fillUnit.biasTable.entries = entries;
        config.name += "+bias" + std::to_string(entries);
        configs.push_back(config);
    }
    const auto matrix = sweepMatrix(benchmarks, configs);

    std::printf("%-12s %18s %16s %16s\n", "entries", "avgEffFetchRate",
                "avgFaults", "avgPromotedRet");
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        double rate = 0, faults = 0, promoted = 0;
        for (const sim::SimResult &r : matrix[s]) {
            rate += r.effectiveFetchRate;
            faults += static_cast<double>(r.promotedFaults);
            promoted += static_cast<double>(r.promotedRetired);
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-12u %18.2f %16.0f %16.0f\n", sizes[s], rate / n,
                    faults / n, promoted / n);
    }
    std::fflush(stdout);
    return 0;
}
