/**
 * @file
 * Ablation: static vs dynamic branch promotion. The paper's section 4
 * notes promotion "can be done statically as well": no warm-up and
 * better coverage of irregular-but-biased branches, at the cost of
 * missing input-dependent bias changes. The static set here comes
 * from an architectural profiling pass (profileStronglyBiased).
 */

#include <cstdio>

#include "bench/harness.h"
#include "workload/characterize.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation", "Static vs dynamic branch promotion");

    const std::vector<std::string> benchmarks = {"gcc", "compress",
                                                 "vortex", "tex"};

    std::printf("%-26s %13s %12s %10s %12s\n", "configuration",
                "avgEffFetch", "mispred%", "faults", "promotedRet");

    // Per-benchmark configs (static promotion sets depend on the
    // benchmark's profile), so build the request list by hand and fan
    // out every run at once.
    using MakeConfig =
        std::function<sim::ProcessorConfig(const std::string &)>;
    struct Variant
    {
        const char *label;
        MakeConfig make;
    };
    const std::vector<Variant> variants = {
        {"baseline (none)",
         [](const std::string &) { return sim::baselineConfig(); }},
        {"dynamic t=64",
         [](const std::string &) { return sim::promotionConfig(64); }},
        {"static (profiled)",
         [](const std::string &bench) {
             sim::ProcessorConfig config = sim::promotionConfig(64);
             config.name = "static-promotion";
             config.fillUnit.promotion = false;
             config.fillUnit.staticPromotion = true;
             config.fillUnit.staticPromotions =
                 workload::profileStronglyBiased(programFor(bench),
                                                 400000);
             return config;
         }},
        {"static + dynamic",
         [](const std::string &bench) {
             sim::ProcessorConfig config = sim::promotionConfig(64);
             config.name = "static+dynamic";
             config.fillUnit.staticPromotion = true;
             config.fillUnit.staticPromotions =
                 workload::profileStronglyBiased(programFor(bench),
                                                 400000);
             return config;
         }},
    };

    std::vector<RunRequest> requests;
    for (const Variant &variant : variants)
        for (const std::string &bench : benchmarks)
            requests.push_back(RunRequest{bench, variant.make(bench), 0});
    const std::vector<sim::SimResult> results = runAll(requests);

    for (std::size_t v = 0; v < variants.size(); ++v) {
        double rate = 0, mispred = 0, faults = 0, promoted = 0;
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            const sim::SimResult &r = results[v * benchmarks.size() + b];
            rate += r.effectiveFetchRate;
            mispred += r.condMispredictRate;
            faults += static_cast<double>(r.promotedFaults);
            promoted += static_cast<double>(r.promotedRetired);
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-26s %13.2f %11.2f%% %10.0f %12.0f\n",
                    variants[v].label, rate / n, 100 * mispred / n,
                    faults / n, promoted / n);
    }
    std::fflush(stdout);
    return 0;
}
