/**
 * @file
 * Ablation: static vs dynamic branch promotion. The paper's section 4
 * notes promotion "can be done statically as well": no warm-up and
 * better coverage of irregular-but-biased branches, at the cost of
 * missing input-dependent bias changes. The static set here comes
 * from an architectural profiling pass (profileStronglyBiased).
 */

#include <cstdio>

#include "bench/harness.h"
#include "workload/characterize.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation", "Static vs dynamic branch promotion");

    const std::vector<std::string> benchmarks = {"gcc", "compress",
                                                 "vortex", "tex"};

    std::printf("%-26s %13s %12s %10s %12s\n", "configuration",
                "avgEffFetch", "mispred%", "faults", "promotedRet");

    const auto row = [&](const char *label,
                         const std::function<sim::ProcessorConfig(
                             const std::string &)> &make) {
        double rate = 0, mispred = 0, faults = 0, promoted = 0;
        for (const std::string &bench : benchmarks) {
            std::fprintf(stderr, "  running %-14s %s...\n", bench.c_str(),
                         label);
            const sim::SimResult r = runOne(bench, make(bench));
            rate += r.effectiveFetchRate;
            mispred += r.condMispredictRate;
            faults += static_cast<double>(r.promotedFaults);
            promoted += static_cast<double>(r.promotedRetired);
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-26s %13.2f %11.2f%% %10.0f %12.0f\n", label,
                    rate / n, 100 * mispred / n, faults / n,
                    promoted / n);
        std::fflush(stdout);
    };

    row("baseline (none)", [](const std::string &) {
        return sim::baselineConfig();
    });
    row("dynamic t=64", [](const std::string &) {
        return sim::promotionConfig(64);
    });
    row("static (profiled)", [](const std::string &bench) {
        sim::ProcessorConfig config = sim::promotionConfig(64);
        config.name = "static-promotion";
        config.fillUnit.promotion = false;
        config.fillUnit.staticPromotion = true;
        config.fillUnit.staticPromotions =
            workload::profileStronglyBiased(programFor(bench), 400000);
        return config;
    });
    row("static + dynamic", [](const std::string &bench) {
        sim::ProcessorConfig config = sim::promotionConfig(64);
        config.name = "static+dynamic";
        config.fillUnit.staticPromotion = true;
        config.fillUnit.staticPromotions =
            workload::profileStronglyBiased(programFor(bench), 400000);
        return config;
    });
    return 0;
}
