/**
 * @file
 * Paper Table 2: the average effective fetch rate with and without
 * branch promotion, sweeping the promotion threshold over
 * {8, 16, 32, 64, 128, 256}, plus the icache and baseline references.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Table 2",
                "Average effective fetch rate vs promotion threshold");

    const auto metric = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };
    const auto average = [](const std::vector<double> &v) {
        return std::accumulate(v.begin(), v.end(), 0.0) / v.size();
    };

    const std::vector<std::uint32_t> thresholds = {8, 16, 32, 64, 128,
                                                   256};
    std::vector<sim::ProcessorConfig> configs = {sim::icacheConfig(),
                                                 sim::baselineConfig()};
    std::vector<std::string> labels = {"icache", "baseline"};
    for (const std::uint32_t threshold : thresholds) {
        configs.push_back(sim::promotionConfig(threshold));
        labels.push_back("threshold = " + std::to_string(threshold));
    }
    const auto results = sweepSuiteConfigs(configs);

    std::printf("%-22s %22s\n", "Configuration", "Ave effective fetch rate");
    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::printf("%-22s %22.2f\n", labels[c].c_str(),
                    average(metricsOf(results[c], metric)));
    }
    std::fflush(stdout);
    return 0;
}
