/**
 * @file
 * Paper Table 2: the average effective fetch rate with and without
 * branch promotion, sweeping the promotion threshold over
 * {8, 16, 32, 64, 128, 256}, plus the icache and baseline references.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Table 2",
                "Average effective fetch rate vs promotion threshold");

    const auto metric = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };
    const auto average = [](const std::vector<double> &v) {
        return std::accumulate(v.begin(), v.end(), 0.0) / v.size();
    };

    std::printf("%-22s %22s\n", "Configuration", "Ave effective fetch rate");
    std::printf("%-22s %22.2f\n", "icache",
                average(sweepSuite(sim::icacheConfig(), metric)));
    std::printf("%-22s %22.2f\n", "baseline",
                average(sweepSuite(sim::baselineConfig(), metric)));
    for (const std::uint32_t threshold : {8u, 16u, 32u, 64u, 128u, 256u}) {
        const std::string label =
            "threshold = " + std::to_string(threshold);
        std::printf("%-22s %22.2f\n", label.c_str(),
                    average(sweepSuite(sim::promotionConfig(threshold),
                                       metric)));
        std::fflush(stdout);
    }
    return 0;
}
