/**
 * @file
 * Content-addressed artifact cache for expensive deterministic
 * byproducts of a benchmark run: generated workload::Program images
 * and warmed predictor-state checkpoints.
 *
 * Every artifact is addressed by a canonical key string that encodes
 * everything its bytes depend on (generator version, profile
 * fingerprint, config fingerprint, warm-up length). The cache file
 * name is the FNV-1a hash of the key; the key itself plus a payload
 * checksum are embedded in a wrapper header, so
 *
 *  - a key-hash collision can never return the wrong artifact (the
 *    embedded key is compared before the payload is trusted), and
 *  - a corrupted or truncated file is detected by checksum and
 *    treated as a miss (and rejected), never handed to a payload
 *    parser that may abort on malformed input.
 *
 * Stores are atomic (write to a temp file, then rename), so a worker
 * killed mid-store leaves no partial artifact behind. Cache hits only
 * ever substitute for re-running a deterministic producer, so they
 * can change wall-clock time but never simulation results.
 *
 * Storage is pluggable: artifacts flow through the FragmentStore
 * interface (bench/store.h), so the same cache works against the
 * historical local directory (TCSIM_CACHE_DIR — byte-for-byte the old
 * layout, "<kind>/<keyhash>.art") or the shared HTTP object store
 * (TCSIM_CACHE_STORE=http://host:port) that a multi-host farm mounts.
 * The integrity wrapper travels with the payload, so a corrupt object
 * from ANY backend is rejected (and evicted) instead of parsed.
 *
 * Wrapper layout (little-endian):
 *   magic "TCARTFC1", u32 key length, key bytes,
 *   u64 payload FNV-1a hash, u64 payload length, payload bytes.
 */

#ifndef TCSIM_BENCH_ARTIFACT_CACHE_H
#define TCSIM_BENCH_ARTIFACT_CACHE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "bench/store.h"

namespace tcsim::bench
{

/** Hit/miss accounting, reported into benchmark result documents. */
struct ArtifactCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    /** Files discarded for a bad magic, key mismatch or checksum. */
    std::uint64_t rejected = 0;
};

/** The cache proper. A default-constructed cache is disabled. */
class ArtifactCache
{
  public:
    /** @param dir local cache root; empty disables the cache. */
    explicit ArtifactCache(std::string dir = {});

    /** Route through an explicit backend (null disables). */
    explicit ArtifactCache(std::unique_ptr<FragmentStore> store);

    bool enabled() const { return store_ != nullptr; }
    /** The local root; empty when disabled or on a remote backend. */
    const std::string &dir() const { return dir_; }

    /**
     * Look up the artifact for @p key under @p kind.
     * @return the payload bytes on a verified hit.
     */
    std::optional<std::string> load(std::string_view kind,
                                    std::string_view key);

    /**
     * Store @p payload for @p key (atomically; concurrent stores of
     * the same key are safe and idempotent).
     * @return false on I/O failure (the cache stays consistent).
     */
    bool store(std::string_view kind, std::string_view key,
               std::string_view payload);

    /**
     * Memoize: return the cached payload for @p key, or run
     * @p produce, store its result, and return it. With the cache
     * disabled this simply calls @p produce.
     */
    std::string getOrCreate(std::string_view kind, std::string_view key,
                            const std::function<std::string()> &produce);

    /** @return the store object name for @p key under @p kind. */
    static std::string objectName(std::string_view kind,
                                  std::string_view key);

    /** @return the local file an artifact would live at (for tests;
     * meaningful only for directory-backed caches). */
    std::string pathFor(std::string_view kind, std::string_view key) const;

    ArtifactCacheStats stats() const;

    /**
     * @return the process-wide cache: TCSIM_CACHE_STORE (a store spec,
     * e.g. http://host:port) wins over TCSIM_CACHE_DIR (a local
     * directory); disabled when neither is set.
     */
    static ArtifactCache &process();

  private:
    std::string dir_;
    std::unique_ptr<FragmentStore> store_;
    mutable std::mutex mutex_;
    ArtifactCacheStats stats_;
};

} // namespace tcsim::bench

#endif // TCSIM_BENCH_ARTIFACT_CACHE_H
