/**
 * @file
 * Content-addressed artifact cache for expensive deterministic
 * byproducts of a benchmark run: generated workload::Program images
 * and warmed predictor-state checkpoints.
 *
 * Every artifact is addressed by a canonical key string that encodes
 * everything its bytes depend on (generator version, profile
 * fingerprint, config fingerprint, warm-up length). The cache file
 * name is the FNV-1a hash of the key; the key itself plus a payload
 * checksum are embedded in a wrapper header, so
 *
 *  - a key-hash collision can never return the wrong artifact (the
 *    embedded key is compared before the payload is trusted), and
 *  - a corrupted or truncated file is detected by checksum and
 *    treated as a miss (and rejected), never handed to a payload
 *    parser that may abort on malformed input.
 *
 * Stores are atomic (write to a temp file, then rename), so a worker
 * killed mid-store leaves no partial artifact behind. Cache hits only
 * ever substitute for re-running a deterministic producer, so they
 * can change wall-clock time but never simulation results.
 *
 * Wrapper layout (little-endian):
 *   magic "TCARTFC1", u32 key length, key bytes,
 *   u64 payload FNV-1a hash, u64 payload length, payload bytes.
 */

#ifndef TCSIM_BENCH_ARTIFACT_CACHE_H
#define TCSIM_BENCH_ARTIFACT_CACHE_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace tcsim::bench
{

/** Hit/miss accounting, reported into benchmark result documents. */
struct ArtifactCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    /** Files discarded for a bad magic, key mismatch or checksum. */
    std::uint64_t rejected = 0;
};

/** The cache proper. A default-constructed cache is disabled. */
class ArtifactCache
{
  public:
    /** @param dir cache root; empty disables the cache entirely. */
    explicit ArtifactCache(std::string dir = {}) : dir_(std::move(dir)) {}

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Look up the artifact for @p key under @p kind.
     * @return the payload bytes on a verified hit.
     */
    std::optional<std::string> load(std::string_view kind,
                                    std::string_view key);

    /**
     * Store @p payload for @p key (atomically; concurrent stores of
     * the same key are safe and idempotent).
     * @return false on I/O failure (the cache stays consistent).
     */
    bool store(std::string_view kind, std::string_view key,
               std::string_view payload);

    /**
     * Memoize: return the cached payload for @p key, or run
     * @p produce, store its result, and return it. With the cache
     * disabled this simply calls @p produce.
     */
    std::string getOrCreate(std::string_view kind, std::string_view key,
                            const std::function<std::string()> &produce);

    /** @return the file an artifact would live at (for tests). */
    std::string pathFor(std::string_view kind, std::string_view key) const;

    ArtifactCacheStats stats() const;

    /**
     * @return the process-wide cache configured by TCSIM_CACHE_DIR
     * (disabled when the variable is unset or empty).
     */
    static ArtifactCache &process();

  private:
    std::string dir_;
    mutable std::mutex mutex_;
    ArtifactCacheStats stats_;
};

} // namespace tcsim::bench

#endif // TCSIM_BENCH_ARTIFACT_CACHE_H
