/**
 * @file
 * Server-class front-end exhibit: the paper's promotion + packing
 * deltas re-measured on the server workload profiles (huge code
 * footprint, deep call chains, indirect-branch-dense dispatch loops,
 * trap density) beside a desktop reference group from the SPEC-like
 * suite. The question the exhibit answers: how do the paper's
 * trace-cache gains shift once the instruction footprint blows past
 * the icache and the fill unit sees dispatch-driven path diversity?
 *
 * For each group it reports the front-end numbers the paper's story
 * rests on — effective fetch rate, trace-cache hit ratio, icache
 * misses per kilo-instruction, conditional mispredict rate, IPC —
 * under the icache / baseline / promo+pack configurations, and the
 * promo+pack-vs-baseline percentage delta per benchmark so the
 * desktop-vs-server shift is a single row comparison.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace
{

void
printRow(const std::string &label, const std::vector<double> &values,
         int precision)
{
    std::printf("%-26s", label.c_str());
    double sum = 0.0;
    for (const double value : values) {
        std::printf("%9.*f", precision, value);
        sum += value;
    }
    std::printf("%9.*f\n", precision,
                values.empty() ? 0.0 : sum / values.size());
    std::fflush(stdout);
}

} // namespace

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Server front end",
                "promotion+packing deltas under server-class footprint "
                "pressure");

    const std::vector<std::string> desktop = {"compress", "go", "gcc",
                                              "li"};
    const std::vector<std::string> server = {"server-oltp", "server-web",
                                             "server-cache"};
    std::vector<std::string> benchmarks = desktop;
    benchmarks.insert(benchmarks.end(), server.begin(), server.end());

    const std::vector<sim::ProcessorConfig> configs = {
        sim::icacheConfig(), sim::baselineConfig(),
        sim::promotionPackingConfig(64,
                                    trace::PackingPolicy::CostRegulated)};
    const std::vector<std::vector<sim::SimResult>> results =
        sweepMatrix(benchmarks, configs);

    std::printf("%-26s", "metric / config");
    for (const std::string &bench : benchmarks)
        std::printf("%9s", shortName(bench).c_str());
    std::printf("%9s\n", "avg");

    const auto fetch_rate = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };
    const auto tc_hit = [](const sim::SimResult &r) {
        return r.tcLookups != 0
                   ? static_cast<double>(r.tcHits) / r.tcLookups
                   : 0.0;
    };
    const auto icache_mpki = [](const sim::SimResult &r) {
        return r.instructions != 0
                   ? 1000.0 * r.icacheMisses / r.instructions
                   : 0.0;
    };
    const auto mispredict = [](const sim::SimResult &r) {
        return 100.0 * r.condMispredictRate;
    };
    const auto ipc = [](const sim::SimResult &r) { return r.ipc; };

    printRow("fetch rate icache", metricsOf(results[0], fetch_rate), 3);
    printRow("fetch rate baseline", metricsOf(results[1], fetch_rate), 3);
    printRow("fetch rate promo+pack", metricsOf(results[2], fetch_rate),
             3);
    printRow("tc hit % baseline", metricsOf(results[1], [&](auto &r) {
                 return 100.0 * tc_hit(r);
             }),
             1);
    printRow("tc hit % promo+pack", metricsOf(results[2], [&](auto &r) {
                 return 100.0 * tc_hit(r);
             }),
             1);
    printRow("icache MPKI icache", metricsOf(results[0], icache_mpki), 2);
    printRow("icache MPKI promo+pack", metricsOf(results[2], icache_mpki),
             2);
    printRow("mispredict % baseline", metricsOf(results[1], mispredict),
             2);
    printRow("mispredict % promo+pack", metricsOf(results[2], mispredict),
             2);
    printRow("ipc baseline", metricsOf(results[1], ipc), 3);
    printRow("ipc promo+pack", metricsOf(results[2], ipc), 3);

    // The headline comparison: the promo+pack gain over the plain
    // trace-cache baseline, per benchmark, so the desktop columns and
    // the server columns read side by side.
    const std::vector<double> base_fr = metricsOf(results[1], fetch_rate);
    const std::vector<double> both_fr = metricsOf(results[2], fetch_rate);
    const std::vector<double> base_ipc = metricsOf(results[1], ipc);
    const std::vector<double> both_ipc = metricsOf(results[2], ipc);
    std::vector<double> fr_delta, ipc_delta;
    for (std::size_t i = 0; i < base_fr.size(); ++i) {
        fr_delta.push_back(base_fr[i] != 0.0 ? 100.0 *
                                                   (both_fr[i] -
                                                    base_fr[i]) /
                                                   base_fr[i]
                                             : 0.0);
        ipc_delta.push_back(base_ipc[i] != 0.0 ? 100.0 *
                                                     (both_ipc[i] -
                                                      base_ipc[i]) /
                                                     base_ipc[i]
                                               : 0.0);
    }
    printRow("fetch-rate delta %", fr_delta, 2);
    printRow("ipc delta %", ipc_delta, 2);

    const auto group_mean = [&](const std::vector<double> &values,
                                std::size_t begin, std::size_t count) {
        double sum = 0.0;
        for (std::size_t i = begin; i < begin + count; ++i)
            sum += values[i];
        return count != 0 ? sum / count : 0.0;
    };
    std::printf("\n");
    std::printf("promo+pack vs baseline, desktop group: "
                "fetch rate %+.2f%%, ipc %+.2f%%\n",
                group_mean(fr_delta, 0, desktop.size()),
                group_mean(ipc_delta, 0, desktop.size()));
    std::printf("promo+pack vs baseline, server group:  "
                "fetch rate %+.2f%%, ipc %+.2f%%\n",
                group_mean(fr_delta, desktop.size(), server.size()),
                group_mean(ipc_delta, desktop.size(), server.size()));
    return 0;
}
