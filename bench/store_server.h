/**
 * @file
 * The object-store shim: serves a FragmentStore namespace over the
 * same authenticated HTTP plumbing as the status endpoint, so sweep
 * workers on different hosts can share one fragment/artifact store.
 *
 * Endpoints (all behind `Authorization: Bearer <token>`):
 *
 *   PUT    /obj/<name>[?overwrite=1]  store bytes atomically
 *                                     (first-wins without overwrite;
 *                                     a duplicate PUT answers 200
 *                                     with {"deduped": true})
 *   GET    /obj/<name>                object bytes, 404 when absent
 *   HEAD   /obj/<name>                existence probe
 *   DELETE /obj/<name>                drop (e.g. a corrupt artifact)
 *   GET    /manifest[?prefix=p]       "tcsim-store-manifest-v1" JSON
 *                                     listing names/sizes/ages
 *
 * The shim stores onto a backing FragmentStore (a LocalDirStore in
 * practice), so a merge run on the serving host against the backing
 * directory sees exactly the bytes workers uploaded — the
 * byte-identical merge guarantee does not depend on the transport.
 *
 * handle() is exposed separately from the standalone server so
 * tcsim_sched can mount the store on the same port as its lease
 * endpoints (one URL for workers to both pull work and push results).
 */

#ifndef TCSIM_BENCH_STORE_SERVER_H
#define TCSIM_BENCH_STORE_SERVER_H

#include <memory>
#include <string>

#include "bench/store.h"
#include "obs/http.h"

namespace tcsim::bench
{

class StoreServer
{
  public:
    /** @param backing the store served; must outlive the server. */
    explicit StoreServer(FragmentStore &backing) : backing_(backing) {}

    /**
     * Route one already-authenticated request. Returns 404 for paths
     * outside the store namespace, so a combined server can try other
     * routers first/after.
     */
    obs::HttpResponse handle(const obs::HttpRequest &request);

    /** @return whether @p request targets the store namespace. */
    static bool routes(const obs::HttpRequest &request);

    /** Render the "tcsim-store-manifest-v1" document for @p prefix. */
    std::string renderManifest(const std::string &prefix);

    /**
     * Serve standalone on @p bind_addr:@p port (0 = ephemeral).
     * @return false on bind failure or empty token.
     */
    bool start(const std::string &bind_addr, std::uint16_t port,
               const std::string &token);
    std::uint16_t port() const { return server_.port(); }
    void stop() { server_.stop(); }

  private:
    FragmentStore &backing_;
    obs::HttpServer server_;
};

} // namespace tcsim::bench

#endif // TCSIM_BENCH_STORE_SERVER_H
