/**
 * @file
 * Paper Figure 4: the fetch width breakdown for gcc with the baseline
 * 128 KB trace cache, annotated with the seven termination reasons.
 */

#include "bench/fetch_histogram.h"
#include "bench/harness.h"

int
main()
{
    using namespace tcsim::bench;
    printBanner("Figure 4",
                "Fetch width breakdown, gcc, baseline trace cache");
    const tcsim::sim::SimResult result =
        runOne("gcc", tcsim::sim::baselineConfig());
    printFetchHistogram(result);
    return 0;
}
