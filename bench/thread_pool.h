/**
 * @file
 * A fixed-size thread pool shared by the experiment binaries.
 *
 * Independent (benchmark, configuration) simulations are embarrassingly
 * parallel: the pool fans them out across TCSIM_JOBS worker threads
 * (default: hardware_concurrency) while callers collect results in a
 * deterministic order of their choosing.
 */

#ifndef TCSIM_BENCH_THREAD_POOL_H
#define TCSIM_BENCH_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcsim::bench
{

/** A fixed-size pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the number of worker threads. */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue one task; runs as soon as a worker is free. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskCv_; ///< workers: work available / stop
    std::condition_variable idleCv_; ///< wait(): queue drained + idle
    unsigned running_ = 0;           ///< tasks currently executing
    bool stopping_ = false;
};

/**
 * @return the job count for experiment fan-out: TCSIM_JOBS if set (>= 1),
 * else std::thread::hardware_concurrency().
 */
unsigned defaultJobCount();

/**
 * The process-wide pool used by the experiment engine, created on first
 * use with defaultJobCount() workers.
 */
ThreadPool &sharedPool();

/**
 * Run fn(0) .. fn(n-1) on the shared pool and block until all are done.
 * @p fn must be safe to call concurrently for distinct indices.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn);

} // namespace tcsim::bench

#endif // TCSIM_BENCH_THREAD_POOL_H
