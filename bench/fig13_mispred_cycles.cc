/**
 * @file
 * Paper Figure 13: the percent change, relative to the baseline, in
 * the number of fetch cycles lost to branch mispredictions under
 * promotion + cost-regulated packing.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 13",
                "Percent change in fetch cycles lost to mispredictions");

    const auto metric = [](const sim::SimResult &r) {
        return static_cast<double>(r.cycleCat[static_cast<unsigned>(
            sim::CycleCategory::BranchMisses)]);
    };
    const auto results = sweepSuiteConfigs(
        {sim::baselineConfig(),
         sim::promotionPackingConfig(
             64, trace::PackingPolicy::CostRegulated)});
    const std::vector<double> base = metricsOf(results[0], metric);
    const std::vector<double> both = metricsOf(results[1], metric);

    printBenchmarkHeader("");
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("change %", change, 1);
    return 0;
}
