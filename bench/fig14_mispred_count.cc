/**
 * @file
 * Paper Figure 14: the percent change, relative to the baseline, in
 * the number of mispredicted branches (conditional plus indirect;
 * returns are predicted nearly ideally) under promotion +
 * cost-regulated packing.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 14",
                "Percent change in mispredicted branches (cond + indirect)");

    const auto metric = [](const sim::SimResult &r) {
        return static_cast<double>(r.condMispredicts +
                                   r.indirectMispredicts);
    };
    const auto results = sweepSuiteConfigs(
        {sim::baselineConfig(),
         sim::promotionPackingConfig(
             64, trace::PackingPolicy::CostRegulated)});
    const std::vector<double> base = metricsOf(results[0], metric);
    const std::vector<double> both = metricsOf(results[1], metric);

    printBenchmarkHeader("");
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("change %", change, 1);
    return 0;
}
