#include "bench/store_server.h"

#include <cstdio>

namespace tcsim::bench
{

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/** The raw value of `key=` in @p query ("" when absent). */
std::string
queryParam(const std::string &query, const std::string &key)
{
    std::size_t start = 0;
    while (start <= query.size()) {
        const std::size_t amp = query.find('&', start);
        const std::size_t end =
            amp == std::string::npos ? query.size() : amp;
        const std::string pair = query.substr(start, end - start);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos && pair.substr(0, eq) == key)
            return pair.substr(eq + 1);
        if (pair == key)
            return "1"; // bare flag
        if (amp == std::string::npos)
            break;
        start = amp + 1;
    }
    return "";
}

obs::HttpResponse
jsonError(int status, const char *what)
{
    obs::HttpResponse resp;
    resp.status = status;
    resp.body = std::string("{\"error\": \"") + what + "\"}\n";
    return resp;
}

} // namespace

bool
StoreServer::routes(const obs::HttpRequest &request)
{
    return request.path.rfind("/obj/", 0) == 0 ||
           request.path == "/manifest";
}

std::string
StoreServer::renderManifest(const std::string &prefix)
{
    const std::vector<StoreObject> objects = backing_.list(prefix);
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-store-manifest-v1\",\n";
    out += "  \"store\": \"" + jsonEscape(backing_.describe()) + "\",\n";
    out += "  \"prefix\": \"" + jsonEscape(prefix) + "\",\n";
    out += "  \"objects\": [\n";
    for (std::size_t i = 0; i < objects.size(); ++i) {
        out += "    {\"name\": \"" + jsonEscape(objects[i].name) +
               "\", \"size\": " + std::to_string(objects[i].size) +
               ", \"age_seconds\": " + formatDouble(objects[i].ageSeconds) +
               "}";
        out += i + 1 < objects.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

obs::HttpResponse
StoreServer::handle(const obs::HttpRequest &request)
{
    if (request.path == "/manifest") {
        if (request.method != "GET")
            return jsonError(405, "method");
        obs::HttpResponse resp;
        resp.body = renderManifest(queryParam(request.query, "prefix"));
        return resp;
    }
    if (request.path.rfind("/obj/", 0) != 0)
        return jsonError(404, "not found");

    const std::string name = request.path.substr(5);
    if (!isValidStoreName(name))
        return jsonError(400, "bad object name");

    if (request.method == "PUT") {
        const bool overwrite =
            queryParam(request.query, "overwrite") == "1";
        const bool existed = !overwrite && backing_.exists(name);
        if (!backing_.put(name, request.body, overwrite))
            return jsonError(500, "store failed");
        obs::HttpResponse resp;
        resp.status = existed ? 200 : 201;
        resp.body = existed ? "{\"deduped\": true}\n" : "{\"ok\": true}\n";
        return resp;
    }
    if (request.method == "GET" || request.method == "HEAD") {
        std::optional<std::string> bytes = backing_.get(name);
        if (!bytes)
            return jsonError(404, "no such object");
        obs::HttpResponse resp;
        resp.contentType = "application/octet-stream";
        if (request.method == "GET")
            resp.body = *std::move(bytes);
        return resp;
    }
    if (request.method == "DELETE") {
        if (!backing_.exists(name))
            return jsonError(404, "no such object");
        if (!backing_.remove(name))
            return jsonError(500, "remove failed");
        obs::HttpResponse resp;
        resp.body = "{\"ok\": true}\n";
        return resp;
    }
    return jsonError(405, "method");
}

bool
StoreServer::start(const std::string &bind_addr, std::uint16_t port,
                   const std::string &token)
{
    return server_.start(bind_addr, port, token,
                         [this](const obs::HttpRequest &request) {
                             return handle(request);
                         });
}

} // namespace tcsim::bench
