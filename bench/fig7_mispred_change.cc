/**
 * @file
 * Paper Figure 7: the percent change, relative to the baseline, in the
 * number of mispredicted conditional branches when branches are
 * promoted at thresholds 64, 128 and 256 (promoted-branch faults count
 * as mispredictions).
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 7",
                "Percent change in mispredicted conditional branches "
                "under promotion");

    const auto metric = [](const sim::SimResult &r) {
        return static_cast<double>(r.condMispredicts);
    };
    const std::vector<std::uint32_t> thresholds = {64, 128, 256};
    std::vector<sim::ProcessorConfig> configs = {sim::baselineConfig()};
    for (const std::uint32_t threshold : thresholds)
        configs.push_back(sim::promotionConfig(threshold));
    const auto results = sweepSuiteConfigs(configs);
    const std::vector<double> base = metricsOf(results[0], metric);

    printBenchmarkHeader("threshold");
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        const std::vector<double> promo = metricsOf(results[t + 1], metric);
        std::vector<double> change;
        for (std::size_t i = 0; i < base.size(); ++i)
            change.push_back(100.0 * (promo[i] - base[i]) / base[i]);
        printBenchmarkRow("threshold=" + std::to_string(thresholds[t]),
                          change, 1);
    }
    return 0;
}
