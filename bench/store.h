/**
 * @file
 * Pluggable fragment/artifact storage for the sweep farm.
 *
 * Everything the farm persists — result fragments, worker heartbeats,
 * cached artifacts (program images, predictor checkpoints, BBV
 * profiles, warm states) — is a named blob under content-hashed
 * names. FragmentStore abstracts where those blobs live:
 *
 *  - LocalDirStore: a directory on the local filesystem. This is the
 *    default and is byte-for-byte the historical fragments-dir /
 *    cache-dir behavior (same paths, same atomic temp+rename
 *    discipline), so existing workflows need zero configuration
 *    changes.
 *
 *  - HttpStore: a client for the object-store shim (bench/store_server,
 *    served standalone or embedded in tcsim_sched), so workers on
 *    different hosts share one fragment/artifact namespace over plain
 *    HTTP with bearer-token auth.
 *
 * Store semantics shared by both backends:
 *
 *  - put() is atomic: a reader never observes a torn object.
 *  - By default put() is first-wins: overwriting an existing object is
 *    a successful no-op (content-hashed names mean a racing duplicate
 *    carries the same canonical payload — this is the dedup point for
 *    fragments from re-dispatched stragglers). Pass overwrite=true
 *    only for telemetry objects (heartbeats) that are rewritten by
 *    design.
 *  - Names are restricted to [A-Za-z0-9._-] with at most one '/'
 *    separator ("kind/object"), rejecting path traversal at the
 *    interface instead of trusting callers.
 *
 * Blob integrity is the layer above: fragments embed their unit hash
 * and artifacts carry the TCARTFC1 checksum wrapper, so a corrupted
 * object is detected and rejected by the consumer no matter which
 * backend served it.
 */

#ifndef TCSIM_BENCH_STORE_H
#define TCSIM_BENCH_STORE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tcsim::bench
{

/** One manifest row: an object's name plus cheap metadata. */
struct StoreObject
{
    std::string name;
    std::uint64_t size = 0;
    /** Seconds since the object was last written (mtime age for the
     * local backend; server-measured for HTTP). Heartbeat staleness
     * keys off this. */
    double ageSeconds = 0.0;
};

/** @return whether @p name is a valid store object name. */
bool isValidStoreName(std::string_view name);

/** The storage interface the sweep/scheduler/cache layers talk to. */
class FragmentStore
{
  public:
    virtual ~FragmentStore() = default;

    /**
     * Atomically store @p bytes under @p name. First-wins unless
     * @p overwrite: storing over an existing object succeeds without
     * touching it. @return false on I/O or transport failure.
     */
    virtual bool put(const std::string &name, std::string_view bytes,
                     bool overwrite = false) = 0;

    /** @return the object's bytes, or empty optional when absent. */
    virtual std::optional<std::string> get(const std::string &name) = 0;

    virtual bool exists(const std::string &name) = 0;

    /** Remove @p name (used to drop corrupt artifacts). @return true
     * when the object is gone afterwards (also when it never was). */
    virtual bool remove(const std::string &name) = 0;

    /**
     * All objects whose name starts with @p prefix, sorted by name.
     * Metadata is best-effort (age 0 when the backend cannot say).
     */
    virtual std::vector<StoreObject> list(const std::string &prefix) = 0;

    /** Human-readable location ("/path/to/dir", "http://host:port"). */
    virtual std::string describe() const = 0;
};

/** The historical directory-backed store. */
class LocalDirStore : public FragmentStore
{
  public:
    explicit LocalDirStore(std::string dir) : dir_(std::move(dir)) {}

    bool put(const std::string &name, std::string_view bytes,
             bool overwrite = false) override;
    std::optional<std::string> get(const std::string &name) override;
    bool exists(const std::string &name) override;
    bool remove(const std::string &name) override;
    std::vector<StoreObject> list(const std::string &prefix) override;
    std::string describe() const override { return dir_; }

    const std::string &dir() const { return dir_; }

  private:
    std::string pathFor(const std::string &name) const;
    std::string dir_;
};

/** Client for the HTTP object-store shim (see bench/store_server.h). */
class HttpStore : public FragmentStore
{
  public:
    HttpStore(std::string host, std::uint16_t port, std::string token)
        : host_(std::move(host)), port_(port), token_(std::move(token))
    {
    }

    bool put(const std::string &name, std::string_view bytes,
             bool overwrite = false) override;
    std::optional<std::string> get(const std::string &name) override;
    bool exists(const std::string &name) override;
    bool remove(const std::string &name) override;
    std::vector<StoreObject> list(const std::string &prefix) override;
    std::string describe() const override;

  private:
    std::string host_;
    std::uint16_t port_;
    std::string token_;
};

/**
 * The farm bearer token: TCSIM_FARM_TOKEN, falling back to
 * TCSIM_STATUS_TOKEN so a farm that already exports the status token
 * needs no second secret. Empty when neither is set.
 */
std::string farmToken();

/**
 * Open a store from a spec: "http://host:port" yields an HttpStore
 * (authenticated with farmToken()); anything else is a local
 * directory. @return null with a message on stderr for a malformed
 * http spec or (http only) a missing token.
 */
std::unique_ptr<FragmentStore> openStore(const std::string &spec);

} // namespace tcsim::bench

#endif // TCSIM_BENCH_STORE_H
