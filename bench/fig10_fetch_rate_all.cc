/**
 * @file
 * Paper Figure 10: effective fetch rates for all five configurations
 * — icache, baseline trace cache, packing only, promotion only, and
 * promotion + packing — per benchmark.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 10", "Effective fetch rates for all techniques");

    const auto metric = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };

    const std::vector<double> icache =
        sweepSuite(sim::icacheConfig(), metric);
    const std::vector<double> base =
        sweepSuite(sim::baselineConfig(), metric);
    const std::vector<double> pack =
        sweepSuite(sim::packingConfig(), metric);
    const std::vector<double> promo =
        sweepSuite(sim::promotionConfig(64), metric);
    const std::vector<double> both =
        sweepSuite(sim::promotionPackingConfig(64), metric);

    printBenchmarkHeader("config");
    printBenchmarkRow("icache", icache);
    printBenchmarkRow("baseline", base);
    printBenchmarkRow("packing", pack);
    printBenchmarkRow("promotion", promo);
    printBenchmarkRow("promotion+packing", both);
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("both vs baseline %", change, 1);
    return 0;
}
