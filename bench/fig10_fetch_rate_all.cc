/**
 * @file
 * Paper Figure 10: effective fetch rates for all five configurations
 * — icache, baseline trace cache, packing only, promotion only, and
 * promotion + packing — per benchmark.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 10", "Effective fetch rates for all techniques");

    const auto metric = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };

    const auto results = sweepSuiteConfigs(
        {sim::icacheConfig(), sim::baselineConfig(), sim::packingConfig(),
         sim::promotionConfig(64), sim::promotionPackingConfig(64)});
    const std::vector<double> icache = metricsOf(results[0], metric);
    const std::vector<double> base = metricsOf(results[1], metric);
    const std::vector<double> pack = metricsOf(results[2], metric);
    const std::vector<double> promo = metricsOf(results[3], metric);
    const std::vector<double> both = metricsOf(results[4], metric);

    printBenchmarkHeader("config");
    printBenchmarkRow("icache", icache);
    printBenchmarkRow("baseline", base);
    printBenchmarkRow("packing", pack);
    printBenchmarkRow("promotion", promo);
    printBenchmarkRow("promotion+packing", both);
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("both vs baseline %", change, 1);
    return 0;
}
