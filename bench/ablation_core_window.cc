/**
 * @file
 * Ablation: execution-window sensitivity. The paper does not specify
 * the checkpoint-pool depth or total window size of its HPS core;
 * DESIGN.md documents our defaults (64 checkpoints, 512-entry window).
 * This sweep shows how the headline comparison (baseline vs
 * promotion+packing) responds to those choices.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation", "Execution window sensitivity");

    const std::vector<std::string> benchmarks = {"gcc", "compress",
                                                 "tex"};

    // One fan-out: for each (checkpoints, rob) point, a baseline and a
    // promotion+packing config (interleaved pairs).
    struct Point
    {
        std::uint32_t checkpoints;
        std::uint32_t rob;
    };
    std::vector<Point> points;
    std::vector<sim::ProcessorConfig> configs;
    for (const std::uint32_t checkpoints : {16u, 32u, 64u, 128u}) {
        for (const std::uint32_t rob : {256u, 512u, 1024u}) {
            points.push_back(Point{checkpoints, rob});
            const std::string suffix = "+ckpt" +
                                       std::to_string(checkpoints) +
                                       "+rob" + std::to_string(rob);
            sim::ProcessorConfig base = sim::baselineConfig();
            base.checkpoints = checkpoints;
            base.robEntries = rob;
            base.name += suffix;
            configs.push_back(base);

            sim::ProcessorConfig both = sim::promotionPackingConfig(64);
            both.checkpoints = checkpoints;
            both.robEntries = rob;
            both.name += suffix;
            configs.push_back(both);
        }
    }
    const auto matrix = sweepMatrix(benchmarks, configs);

    std::printf("%-10s %-8s %14s %14s %12s\n", "ckpts", "rob",
                "baselineIPC", "promopackIPC", "fullWindow%");
    for (std::size_t p = 0; p < points.size(); ++p) {
        double base_ipc = 0, both_ipc = 0, full_window = 0;
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            base_ipc += matrix[2 * p][b].ipc;
            const sim::SimResult &rp = matrix[2 * p + 1][b];
            both_ipc += rp.ipc;
            std::uint64_t cycles = 0;
            for (unsigned c = 0;
                 c < static_cast<unsigned>(
                         sim::CycleCategory::NumCategories);
                 ++c)
                cycles += rp.cycleCat[c];
            full_window += 100.0 *
                           rp.cycleCat[static_cast<unsigned>(
                               sim::CycleCategory::FullWindow)] /
                           std::max<std::uint64_t>(cycles, 1);
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-10u %-8u %14.3f %14.3f %11.1f%%\n",
                    points[p].checkpoints, points[p].rob, base_ipc / n,
                    both_ipc / n, full_window / n);
    }
    std::fflush(stdout);
    return 0;
}
