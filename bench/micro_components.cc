/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * cache lookups, multiple-branch prediction, fill-unit throughput,
 * functional execution, and whole-processor simulation speed.
 */

#include <benchmark/benchmark.h>

#include "bpred/multi.h"
#include "memory/cache.h"
#include "sim/processor.h"
#include "trace/fill_unit.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;

const workload::Program &
compressProgram()
{
    static const workload::Program program =
        workload::generateProgram(workload::findProfile("compress"));
    return program;
}

void
BM_CacheAccess(benchmark::State &state)
{
    memory::Cache cache(memory::CacheParams{"l1", 64 * 1024, 4, 64, 0},
                        nullptr, 50);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr = (addr + 4096 + 64) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TreeMbpPredict(benchmark::State &state)
{
    bpred::TreeMbp mbp;
    std::uint64_t hist = 0x123456789abcdefULL;
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mbp.predict(pc, hist, 0, 0));
        hist = hist * 6364136223846793005ULL + 1;
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeMbpPredict);

void
BM_SplitMbpPredict(benchmark::State &state)
{
    bpred::SplitMbp mbp;
    std::uint64_t hist = 0x123456789abcdefULL;
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mbp.predict(pc, hist, 0, 0));
        hist = hist * 6364136223846793005ULL + 1;
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitMbpPredict);

void
BM_FillUnitThroughput(benchmark::State &state)
{
    trace::TraceCache cache(trace::TraceCacheParams{2048, 4});
    trace::FillUnitParams params;
    params.packing = trace::PackingPolicy::Unregulated;
    params.promotion = true;
    trace::FillUnit unit(params, cache);

    trace::RetiredInst alu;
    alu.inst = isa::Instruction{isa::Opcode::Add, 10, 11, 12, 0};
    trace::RetiredInst br;
    br.inst = isa::Instruction{isa::Opcode::Bne, 0, 4, 0, 8};
    br.taken = true;

    Addr pc = 0x1000;
    unsigned i = 0;
    for (auto _ : state) {
        trace::RetiredInst inst = (++i % 6 == 0) ? br : alu;
        inst.pc = pc;
        pc = (pc + 4) & 0xffff;
        unit.retire(inst);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FillUnitThroughput);

void
BM_FunctionalExecution(benchmark::State &state)
{
    workload::FunctionalExecutor exec(compressProgram());
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.step());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalExecution);

void
BM_ProcessorSimulation(benchmark::State &state)
{
    // Whole-machine simulation speed in retired instructions/second.
    for (auto _ : state) {
        sim::Processor proc(sim::promotionPackingConfig(),
                            compressProgram());
        proc.run(20000);
        benchmark::DoNotOptimize(proc.retiredInsts());
        state.SetItemsProcessed(
            static_cast<std::int64_t>(proc.retiredInsts()));
    }
}
BENCHMARK(BM_ProcessorSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
