/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * cache lookups, multiple-branch prediction, fill-unit throughput,
 * functional execution, and whole-processor simulation speed.
 */

#include <benchmark/benchmark.h>

#include "bpred/bias_table.h"
#include "bpred/hybrid.h"
#include "bpred/multi.h"
#include "core/rename_overlay.h"
#include "memory/cache.h"
#include "sim/processor.h"
#include "trace/fill_unit.h"
#include "trace/trace_cache.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;

const workload::Program &
compressProgram()
{
    static const workload::Program program =
        workload::generateProgram(workload::findProfile("compress"));
    return program;
}

void
BM_CacheAccess(benchmark::State &state)
{
    memory::Cache cache(memory::CacheParams{"l1", 64 * 1024, 4, 64, 0},
                        nullptr, 50);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr = (addr + 4096 + 64) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TreeMbpPredict(benchmark::State &state)
{
    bpred::TreeMbp mbp;
    std::uint64_t hist = 0x123456789abcdefULL;
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mbp.predict(pc, hist, 0, 0));
        hist = hist * 6364136223846793005ULL + 1;
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeMbpPredict);

void
BM_SplitMbpPredict(benchmark::State &state)
{
    bpred::SplitMbp mbp;
    std::uint64_t hist = 0x123456789abcdefULL;
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mbp.predict(pc, hist, 0, 0));
        hist = hist * 6364136223846793005ULL + 1;
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitMbpPredict);

/** Build a small straight-line segment starting at @p start. */
trace::TraceSegment
makeSegment(Addr start)
{
    trace::TraceSegment segment;
    segment.startAddr = start;
    for (unsigned i = 0; i < trace::kMaxSegmentInsts; ++i) {
        trace::TraceInst ti;
        ti.inst = isa::Instruction{isa::Opcode::Add, 10, 11, 12, 0};
        ti.pc = start + i * isa::kInstBytes;
        segment.insts.push_back(ti);
    }
    return segment;
}

void
BM_TraceCacheLookupHit(benchmark::State &state)
{
    // The per-fetch probe: cycle through resident segments so every
    // lookup hits (the trace-cache steady state of a hot loop).
    trace::TraceCache cache(trace::TraceCacheParams{2048, 4});
    constexpr unsigned kResident = 256;
    for (unsigned i = 0; i < kResident; ++i)
        cache.insert(makeSegment(0x1000 + i * 64));
    unsigned i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.lookup(0x1000 + (i++ % kResident) * 64));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceCacheLookupHit);

void
BM_TraceCacheLookupAllPathAssoc(benchmark::State &state)
{
    // The path-associative probe with a caller-owned scratch vector —
    // the allocation-free pattern the fetch engine uses per cycle.
    trace::TraceCacheParams params{2048, 4};
    params.pathAssociativity = true;
    trace::TraceCache cache(params);
    constexpr unsigned kResident = 256;
    for (unsigned i = 0; i < kResident; ++i)
        cache.insert(makeSegment(0x1000 + i * 64));
    std::vector<const trace::TraceSegment *> candidates;
    unsigned i = 0;
    for (auto _ : state) {
        cache.lookupAll(0x1000 + (i++ % kResident) * 64, candidates);
        benchmark::DoNotOptimize(candidates.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceCacheLookupAllPathAssoc);

void
BM_HybridPredict(benchmark::State &state)
{
    bpred::HybridPredictor hybrid;
    std::uint64_t hist = 0x123456789abcdefULL;
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hybrid.predict(pc, hist));
        hist = hist * 6364136223846793005ULL + 1;
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridPredict);

void
BM_BiasTableUpdate(benchmark::State &state)
{
    // The per-retired-branch bias-table update driving promotion.
    bpred::BranchBiasTable table(bpred::BiasTableParams{});
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    for (auto _ : state) {
        rng = rng * 6364136223846793005ULL + 1;
        const Addr pc = 0x1000 + (rng >> 33) % 4096 * 4;
        table.update(pc, (rng >> 17) & 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BiasTableUpdate);

void
BM_BiasTableAdvice(benchmark::State &state)
{
    // The per-retired-branch promotion-advice probe on the packed
    // 8-byte-entry table (eight entries per cache line). Warm the
    // whole table first so the scan measures lookup locality, not
    // cold-miss handling.
    bpred::BranchBiasTable table(bpred::BiasTableParams{});
    for (std::uint32_t i = 0; i < 8192; ++i)
        table.update(0x1000 + Addr{i} * 4, true);
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        rng = rng * 6364136223846793005ULL + 1;
        const Addr pc = 0x1000 + (rng >> 33) % 8192 * 4;
        hits += table.advice(pc).promote;
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BiasTableAdvice);

void
BM_BiasTableAdviceWideLayout(benchmark::State &state)
{
    // Reference point for the packed layout: the same random probe
    // stream over a 16-byte-per-entry table (the pre-packing shape:
    // u64 tag + u32 meta + padding, four entries per cache line).
    // The delta against BM_BiasTableAdvice is the cache-locality win
    // of the 8-byte entries.
    struct WideEntry
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint32_t meta = 0;
    };
    static_assert(sizeof(WideEntry) == 16, "pre-packing entry shape");
    std::vector<WideEntry> entries(8192);
    for (std::uint32_t i = 0; i < 8192; ++i) {
        entries[i].tag = (0x1000 / 4 + i) >> 13;
        entries[i].meta = (1u << 29) | 64;
    }
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        rng = rng * 6364136223846793005ULL + 1;
        const Addr pc = 0x1000 + (rng >> 33) % 8192 * 4;
        const std::uint64_t word = pc / 4;
        const WideEntry &entry = entries[word & 8191];
        hits += entry.tag == word >> 13 && (entry.meta & (1u << 29));
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BiasTableAdviceWideLayout);

void
BM_FillUnitThroughput(benchmark::State &state)
{
    trace::TraceCache cache(trace::TraceCacheParams{2048, 4});
    trace::FillUnitParams params;
    params.packing = trace::PackingPolicy::Unregulated;
    params.promotion = true;
    trace::FillUnit unit(params, cache);

    trace::RetiredInst alu;
    alu.inst = isa::Instruction{isa::Opcode::Add, 10, 11, 12, 0};
    trace::RetiredInst br;
    br.inst = isa::Instruction{isa::Opcode::Bne, 0, 4, 0, 8};
    br.taken = true;

    Addr pc = 0x1000;
    unsigned i = 0;
    for (auto _ : state) {
        trace::RetiredInst inst = (++i % 6 == 0) ? br : alu;
        inst.pc = pc;
        pc = (pc + 4) & 0xffff;
        unit.retire(inst);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FillUnitThroughput);

void
BM_FillUnitSegmentBuild(benchmark::State &state)
{
    // Finalize-heavy stream: short blocks ending in Ret terminate a
    // segment each, so every iteration exercises the full build →
    // insert → reset cycle. Measures the segment-build allocation
    // path (pending_ buffer recycling via TraceCache::insert swap).
    trace::TraceCache cache(trace::TraceCacheParams{256, 4});
    trace::FillUnitParams params;
    params.packing = trace::PackingPolicy::CostRegulated;
    trace::FillUnit unit(params, cache);

    trace::RetiredInst alu;
    alu.inst = isa::Instruction{isa::Opcode::Add, 10, 11, 12, 0};
    trace::RetiredInst ret;
    ret.inst = isa::Instruction{isa::Opcode::Ret, 0, isa::kRegRa, 0, 0};

    Addr pc = 0x1000;
    for (auto _ : state) {
        for (unsigned i = 0; i < 7; ++i) {
            trace::RetiredInst inst = alu;
            inst.pc = pc;
            pc += 4;
            unit.retire(inst);
        }
        trace::RetiredInst inst = ret;
        inst.pc = pc;
        pc = 0x1000 + ((pc + 4) & 0x3fff);
        unit.retire(inst);
    }
    state.SetItemsProcessed(state.iterations()); // one segment per iter
}
BENCHMARK(BM_FillUnitSegmentBuild);

void
BM_FunctionalExecution(benchmark::State &state)
{
    workload::FunctionalExecutor exec(compressProgram());
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.step());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalExecution);

void
BM_ProcessorSimulation(benchmark::State &state)
{
    // Whole-machine simulation speed in retired instructions/second.
    for (auto _ : state) {
        sim::Processor proc(sim::promotionPackingConfig(),
                            compressProgram());
        proc.run(20000);
        benchmark::DoNotOptimize(proc.retiredInsts());
        state.SetItemsProcessed(
            static_cast<std::int64_t>(proc.retiredInsts()));
    }
}
BENCHMARK(BM_ProcessorSimulation)->Unit(benchmark::kMillisecond);

/** Promotion+packing config with an @p rob_entries-entry window (the
 * checkpoint pool is scaled up so it never caps the window). */
sim::ProcessorConfig
windowConfig(std::uint32_t rob_entries, bool speculative)
{
    sim::ProcessorConfig config = sim::promotionPackingConfig(64);
    config.robEntries = rob_entries;
    config.checkpoints = std::max(64u, rob_entries / 4);
    if (speculative)
        config.disambiguation = sim::Disambiguation::Speculative;
    return config;
}

void
BM_StoreViolationWindow(benchmark::State &state)
{
    // Per-event cost of the store-order-violation and load
    // disambiguation checks as the in-flight window grows: compress
    // under speculative disambiguation exercises both on every store
    // address resolution and load schedule. With the indexed lookups
    // the time per retired instruction should stay flat from 64- to
    // 1024-entry windows.
    const sim::ProcessorConfig config = windowConfig(
        static_cast<std::uint32_t>(state.range(0)), true);
    std::int64_t retired = 0;
    for (auto _ : state) {
        sim::Processor proc(config, compressProgram());
        proc.run(24000);
        benchmark::DoNotOptimize(proc.retiredInsts());
        retired += static_cast<std::int64_t>(proc.retiredInsts());
    }
    state.SetItemsProcessed(retired);
}
BENCHMARK(BM_StoreViolationWindow)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void
BM_FaultRecoveryWindow(benchmark::State &state)
{
    // Per-event cost of promoted-branch fault recovery (checkpoint
    // selection + override-skip counting) as the window grows:
    // gnuchess under promotion+packing has the densest promoted-fault
    // rate in the suite.
    const sim::ProcessorConfig config = windowConfig(
        static_cast<std::uint32_t>(state.range(0)), false);
    static const workload::Program program =
        workload::generateProgram(workload::findProfile("gnuchess"));
    std::int64_t retired = 0;
    for (auto _ : state) {
        sim::Processor proc(config, program);
        proc.run(24000);
        benchmark::DoNotOptimize(proc.retiredInsts());
        retired += static_cast<std::int64_t>(proc.retiredInsts());
    }
    state.SetItemsProcessed(retired);
}
BENCHMARK(BM_FaultRecoveryWindow)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------------
// Shadow-rename fork cost: full RAT copy (the old dispatch scheme)
// vs. the copy-on-write RenameOverlay. Each iteration forks once and
// renames a short inactive tail (4 reads + 4 writes), the typical
// shape of a post-divergence segment tail.
// ----------------------------------------------------------------------

struct MockRatEntry
{
    bool isValue = true;
    RegVal value = 0;
    InstSeqNum tag = 0;
};
using MockRat = std::array<MockRatEntry, isa::kNumArchRegs>;

MockRat
makeMockRat()
{
    MockRat rat;
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        rat[r] = MockRatEntry{(r % 3) != 0, r * 7ull, r + 100ull};
    return rat;
}

void
BM_ShadowRenameFullCopy(benchmark::State &state)
{
    const MockRat rat = makeMockRat();
    std::uint64_t seq = 1;
    for (auto _ : state) {
        MockRat shadow = rat; // the old fork: copy all entries
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < 4; ++i) {
            const unsigned r = (i * 5 + 3) & (isa::kNumArchRegs - 1);
            sum += shadow[r].value;
            shadow[r] = MockRatEntry{false, 0, seq++};
        }
        benchmark::DoNotOptimize(sum);
        benchmark::DoNotOptimize(shadow);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowRenameFullCopy);

void
BM_ShadowRenameOverlay(benchmark::State &state)
{
    const MockRat rat = makeMockRat();
    core::RenameOverlay<MockRatEntry, isa::kNumArchRegs> shadow;
    std::uint64_t seq = 1;
    for (auto _ : state) {
        shadow.fork(rat); // O(1) fork
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < 4; ++i) {
            const unsigned r = (i * 5 + 3) & (isa::kNumArchRegs - 1);
            sum += shadow.get(r).value;
            shadow.set(r, MockRatEntry{false, 0, seq++});
        }
        benchmark::DoNotOptimize(sum);
        shadow.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowRenameOverlay);

} // namespace

BENCHMARK_MAIN();
