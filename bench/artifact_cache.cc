#include "bench/artifact_cache.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/binio.h"
#include "common/fnv.h"

namespace tcsim::bench
{

namespace
{

constexpr char kWrapperMagic[8] = {'T', 'C', 'A', 'R', 'T', 'F', 'C', '1'};

/**
 * Parse a wrapper file's bytes; @return the payload when the magic,
 * embedded key and payload checksum all verify.
 */
std::optional<std::string>
unwrap(const std::string &bytes, std::string_view key)
{
    std::istringstream is(bytes);
    if (!binio::expectMagic(is, kWrapperMagic))
        return std::nullopt;
    std::uint32_t key_len = 0;
    if (!binio::readScalar(is, key_len) || key_len != key.size())
        return std::nullopt;
    std::string stored_key(key_len, '\0');
    is.read(stored_key.data(), key_len);
    if (!is || stored_key != key)
        return std::nullopt;
    std::uint64_t payload_hash = 0, payload_len = 0;
    if (!binio::readScalar(is, payload_hash) ||
        !binio::readScalar(is, payload_len)) {
        return std::nullopt;
    }
    // The remaining bytes must be exactly the payload: a truncated or
    // padded file is corrupt even if the checksum happens to pass.
    const auto header_end = static_cast<std::size_t>(is.tellg());
    if (bytes.size() - header_end != payload_len)
        return std::nullopt;
    std::string payload = bytes.substr(header_end);
    if (fnv1a(payload) != payload_hash)
        return std::nullopt;
    return payload;
}

std::string
wrap(std::string_view key, std::string_view payload)
{
    std::ostringstream os;
    binio::writeMagic(os, kWrapperMagic);
    binio::writeScalar<std::uint32_t>(
        os, static_cast<std::uint32_t>(key.size()));
    os.write(key.data(), static_cast<std::streamsize>(key.size()));
    binio::writeScalar<std::uint64_t>(os, fnv1a(payload));
    binio::writeScalar<std::uint64_t>(os, payload.size());
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    return std::move(os).str();
}

} // namespace

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir))
{
    if (!dir_.empty())
        store_ = std::make_unique<LocalDirStore>(dir_);
}

ArtifactCache::ArtifactCache(std::unique_ptr<FragmentStore> store)
    : store_(std::move(store))
{
    if (auto *local = dynamic_cast<LocalDirStore *>(store_.get()))
        dir_ = local->dir();
}

std::string
ArtifactCache::objectName(std::string_view kind, std::string_view key)
{
    std::string name;
    name.append(kind);
    name += '/';
    name += hashHex(fnv1a(key));
    name += ".art";
    return name;
}

std::string
ArtifactCache::pathFor(std::string_view kind, std::string_view key) const
{
    return dir_ + "/" + objectName(kind, key);
}

std::optional<std::string>
ArtifactCache::load(std::string_view kind, std::string_view key)
{
    if (!enabled())
        return std::nullopt;
    const std::string name = objectName(kind, key);

    std::optional<std::string> payload;
    bool rejected = false;
    if (std::optional<std::string> bytes = store_->get(name)) {
        payload = unwrap(*bytes, key);
        if (!payload) {
            // Corrupt wrapper: evict it so the regenerated artifact
            // replaces it instead of being rejected again next run.
            rejected = true;
            store_->remove(name);
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (payload)
        ++stats_.hits;
    else
        ++stats_.misses;
    if (rejected)
        ++stats_.rejected;
    return payload;
}

bool
ArtifactCache::store(std::string_view kind, std::string_view key,
                     std::string_view payload)
{
    if (!enabled())
        return false;
    // First-wins put: concurrent stores of the same content-addressed
    // key race benignly (identical bytes), and the backend guarantees
    // readers never observe a torn object.
    if (!store_->put(objectName(kind, key), wrap(key, payload)))
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
    return true;
}

std::string
ArtifactCache::getOrCreate(std::string_view kind, std::string_view key,
                           const std::function<std::string()> &produce)
{
    if (enabled()) {
        if (std::optional<std::string> payload = load(kind, key))
            return *std::move(payload);
    }
    std::string payload = produce();
    if (enabled())
        store(kind, key, payload);
    return payload;
}

ArtifactCacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

ArtifactCache &
ArtifactCache::process()
{
    static ArtifactCache cache = [] {
        const char *spec = std::getenv("TCSIM_CACHE_STORE");
        if (spec != nullptr && spec[0] != '\0') {
            if (auto store = openStore(spec))
                return ArtifactCache(std::move(store));
            std::fprintf(stderr,
                         "artifact cache: TCSIM_CACHE_STORE '%s' "
                         "unusable, cache disabled\n",
                         spec);
            return ArtifactCache();
        }
        const char *dir = std::getenv("TCSIM_CACHE_DIR");
        return ArtifactCache(dir != nullptr ? dir : "");
    }();
    return cache;
}

} // namespace tcsim::bench
