/**
 * @file
 * Memory-pressure addendum to the paper's IPC exhibits (Figures 11 and
 * 16): the same icache / baseline / promotion+packing comparison, but
 * with the contended DRAM backstop enabled — finite bus bandwidth,
 * banked open-row timing, an outstanding-miss limit, and dirty-victim
 * writeback traffic charged where it lands. The paper's substrate is a
 * flat >= 50-cycle memory; this exhibit measures whether the promo+pack
 * IPC deltas (claims 8 and 10 in EXPERIMENTS.md) widen once a wider
 * fetch engine's extra demand has to queue for memory instead of
 * drawing on infinite bandwidth.
 *
 * TCSIM_MEM_BUS_BYTES overrides the bus width (default 4 bytes/cycle —
 * deliberately narrow so an L2 line occupies the bus for 16 cycles and
 * contention is visible at small instruction budgets).
 */

#include <cstdlib>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Mem pressure",
                "IPC under the contended DRAM model (claims 8/10 addendum)");

    memory::DramParams dram;
    dram.busBytesPerCycle = 4;
    if (const char *env = std::getenv("TCSIM_MEM_BUS_BYTES"))
        dram.busBytesPerCycle = static_cast<std::uint32_t>(
            std::strtoul(env, nullptr, 10));

    const auto metric = [](const sim::SimResult &r) { return r.ipc; };

    // Realistic engine (Figure 11 shape) under contention.
    const auto results = sweepSuiteConfigs(
        {sim::withContendedMemory(sim::icacheConfig(), dram),
         sim::withContendedMemory(sim::baselineConfig(), dram),
         sim::withContendedMemory(
             sim::promotionPackingConfig(
                 64, trace::PackingPolicy::CostRegulated),
             dram)});
    const std::vector<double> icache = metricsOf(results[0], metric);
    const std::vector<double> base = metricsOf(results[1], metric);
    const std::vector<double> both = metricsOf(results[2], metric);

    printBenchmarkHeader("config");
    printBenchmarkRow("icache+mem", icache);
    printBenchmarkRow("baseline+mem", base);
    printBenchmarkRow("promo,pack+mem", both);
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("both vs baseline %", change, 1);

    // Perfect-disambiguation engine (Figure 16 shape) under contention.
    auto perfect = [&](sim::ProcessorConfig cfg) {
        cfg.disambiguation = sim::Disambiguation::Perfect;
        return sim::withContendedMemory(std::move(cfg), dram);
    };
    const auto results_p = sweepSuiteConfigs(
        {perfect(sim::baselineConfig()),
         perfect(sim::promotionPackingConfig(
             64, trace::PackingPolicy::CostRegulated))});
    const std::vector<double> base_p = metricsOf(results_p[0], metric);
    const std::vector<double> both_p = metricsOf(results_p[1], metric);
    printBenchmarkRow("baseline+mem (perfect)", base_p);
    printBenchmarkRow("promo,pack+mem (perfect)", both_p);
    std::vector<double> change_p;
    for (std::size_t i = 0; i < base_p.size(); ++i)
        change_p.push_back(100.0 * (both_p[i] - base_p[i]) / base_p[i]);
    printBenchmarkRow("both vs baseline % (perfect)", change_p, 1);
    return 0;
}
