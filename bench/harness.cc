#include "bench/harness.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "bench/artifact_cache.h"
#include "bench/thread_pool.h"
#include "common/fnv.h"
#include "obs/profiler.h"
#include "workload/serialize.h"

namespace tcsim::bench
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Serializes the per-run progress lines from all worker threads. */
std::mutex &
progressMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
reportProgress(const std::string &benchmark, const std::string &config)
{
    std::lock_guard<std::mutex> lock(progressMutex());
    std::fprintf(stderr, "  running %-14s %s...\n", benchmark.c_str(),
                 config.c_str());
}

// ----------------------------------------------------------------------
// Machine-readable results (BENCH_results.json fragments).
// ----------------------------------------------------------------------

/** One completed simulation, summarized for the JSON trajectory log. */
struct RecordedRun
{
    std::string benchmark;
    std::string config;
    std::uint64_t instructions;
    std::uint64_t cycles;
    double ipc;
    double effectiveFetchRate;
    double condMispredictRate;
    double wallSeconds;
    double simMips; ///< simulated instructions per wall microsecond
    std::string profileJson; ///< obs::SelfProfiler JSON; empty if off
};

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

/** Collects every run of this process; written once at exit. */
class ResultsRecorder
{
  public:
    static ResultsRecorder &
    instance()
    {
        static ResultsRecorder recorder;
        return recorder;
    }

    void
    record(const sim::SimResult &result, double wall_seconds,
           std::string profile_json = {})
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double sim_mips =
            wall_seconds > 0.0
                ? static_cast<double>(result.instructions) /
                      (wall_seconds * 1e6)
                : 0.0;
        runs_.push_back(RecordedRun{result.benchmark, result.config,
                                    result.instructions, result.cycles,
                                    result.ipc, result.effectiveFetchRate,
                                    result.condMispredictRate,
                                    wall_seconds, sim_mips,
                                    std::move(profile_json)});
        if (!atexitRegistered_) {
            atexitRegistered_ = true;
            std::atexit([] { ResultsRecorder::instance().write(); });
        }
    }

    void
    write()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::string path = outputPath();
        if (path.empty() || runs_.empty())
            return;
        std::FILE *out = std::fopen(path.c_str(), "w");
        if (out == nullptr) {
            std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(out,
                     "{\"exhibit\":\"%s\",\"wall_seconds\":%.3f,"
                     "\"jobs\":%u,\"runs\":[",
                     jsonEscape(exhibitName()).c_str(),
                     secondsSince(start_), defaultJobCount());
        for (std::size_t i = 0; i < runs_.size(); ++i) {
            const RecordedRun &run = runs_[i];
            std::fprintf(
                out,
                "%s{\"benchmark\":\"%s\",\"config\":\"%s\","
                "\"instructions\":%llu,\"cycles\":%llu,\"ipc\":%.6f,"
                "\"effective_fetch_rate\":%.6f,"
                "\"cond_mispredict_rate\":%.6f,\"wall_seconds\":%.3f,"
                "\"sim_mips\":%.3f",
                i == 0 ? "" : ",", jsonEscape(run.benchmark).c_str(),
                jsonEscape(run.config).c_str(),
                static_cast<unsigned long long>(run.instructions),
                static_cast<unsigned long long>(run.cycles), run.ipc,
                run.effectiveFetchRate, run.condMispredictRate,
                run.wallSeconds, run.simMips);
            if (!run.profileJson.empty())
                std::fprintf(out, ",\"profile\":%s",
                             run.profileJson.c_str());
            std::fprintf(out, "}");
        }
        std::fprintf(out, "]}\n");
        std::fclose(out);
    }

  private:
    static std::string
    exhibitName()
    {
#ifdef __GLIBC__
        return program_invocation_short_name;
#else
        return "exhibit";
#endif
    }

    static std::string
    outputPath()
    {
        if (const char *path = std::getenv("TCSIM_RESULTS_JSON"))
            return path;
        if (const char *dir = std::getenv("TCSIM_RESULTS_DIR"))
            return std::string(dir) + "/" + exhibitName() + ".json";
        return {};
    }

    std::mutex mutex_;
    std::vector<RecordedRun> runs_;
    Clock::time_point start_ = Clock::now();
    bool atexitRegistered_ = false;
};

/** Execute one request: progress line, simulate, time, record. */
sim::SimResult
executeRequest(const RunRequest &request)
{
    reportProgress(request.benchmark, request.config.name);
    const workload::BenchmarkProfile &profile =
        workload::findProfile(request.benchmark);
    const workload::Program &program = programFor(request.benchmark);

    const Clock::time_point start = Clock::now();
    sim::Processor proc(request.config, program);
    std::uint64_t warmup = 0;
    if (const char *env = std::getenv("TCSIM_WARMUP"))
        warmup = std::strtoull(env, nullptr, 10);
    if (warmup > 0) {
        proc.run(warmup);
        proc.resetStats();
    }
    const std::uint64_t budget =
        request.maxInsts != 0 ? request.maxInsts : instBudget(profile);

    std::unique_ptr<obs::SelfProfiler> profiler;
    if (std::getenv("TCSIM_PROFILE") != nullptr) {
        profiler = std::make_unique<obs::SelfProfiler>();
        proc.attachProfiler(profiler.get());
        profiler->beginRun();
    }

    sim::SimResult result = proc.run(warmup + budget);

    std::string profile_json;
    if (profiler != nullptr) {
        profiler->endRun(proc.retiredInsts());
        profiler->appendJson(profile_json);
    }
    ResultsRecorder::instance().record(result, secondsSince(start),
                                       std::move(profile_json));
    return result;
}

} // namespace

std::uint64_t
instBudget(const workload::BenchmarkProfile &profile)
{
    if (const char *env = std::getenv("TCSIM_INSTS"))
        return std::strtoull(env, nullptr, 10);
    return profile.defaultMaxInsts;
}

std::string
programArtifactKey(const workload::BenchmarkProfile &profile)
{
    std::string key = "program:v";
    key += std::to_string(workload::kGeneratorVersion);
    key += ':';
    key += profile.name;
    key += ":profile=";
    key += hashHex(workload::profileFingerprint(profile));
    return key;
}

const workload::Program &
programFor(const std::string &name)
{
    // Each benchmark is generated exactly once; the cache entry is
    // created under the map mutex and populated under its own
    // call_once so concurrent requests for different benchmarks
    // generate in parallel while requests for the same benchmark
    // block until it is ready.
    struct CacheEntry
    {
        std::once_flag once;
        std::unique_ptr<workload::Program> program;
    };
    static std::mutex cache_mutex;
    static std::map<std::string, CacheEntry> cache;

    CacheEntry *entry;
    {
        std::lock_guard<std::mutex> lock(cache_mutex);
        entry = &cache[name];
    }
    std::call_once(entry->once, [&] {
        const workload::BenchmarkProfile &profile =
            workload::findProfile(name);
        ArtifactCache &artifacts = ArtifactCache::process();
        if (artifacts.enabled()) {
            const std::string key = programArtifactKey(profile);
            if (std::optional<std::string> image =
                    artifacts.load("program", key)) {
                std::istringstream is(*image);
                // The payload passed the cache checksum, so a parse
                // failure means a same-version format change — a bug
                // loadProgram reports fatally; fall through only on a
                // short stream.
                if (std::optional<workload::Program> loaded =
                        workload::loadProgram(is)) {
                    entry->program = std::make_unique<workload::Program>(
                        std::move(*loaded));
                    return;
                }
            }
            workload::Program generated =
                workload::generateProgram(profile);
            std::ostringstream image;
            if (workload::saveProgram(generated, image))
                artifacts.store("program", key, std::move(image).str());
            entry->program = std::make_unique<workload::Program>(
                std::move(generated));
            return;
        }
        entry->program = std::make_unique<workload::Program>(
            workload::generateProgram(profile));
    });
    return *entry->program;
}

std::vector<sim::SimResult>
runAll(const std::vector<RunRequest> &requests, unsigned jobs)
{
    std::vector<sim::SimResult> results(requests.size());
    if (requests.empty())
        return results;

    // Deterministic collection: worker i writes only slot i, so suite
    // order is preserved no matter how the pool schedules the jobs.
    std::unique_ptr<ThreadPool> private_pool;
    ThreadPool *pool;
    if (jobs > 0) {
        private_pool = std::make_unique<ThreadPool>(jobs);
        pool = private_pool.get();
    } else {
        pool = &sharedPool();
    }

    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        pool->submit([&, i] {
            results[i] = executeRequest(requests[i]);
            std::unique_lock<std::mutex> lock(done_mutex);
            if (++done == requests.size())
                done_cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done == requests.size(); });
    return results;
}

std::vector<std::vector<sim::SimResult>>
sweepMatrix(const std::vector<std::string> &benchmarks,
            const std::vector<sim::ProcessorConfig> &configs)
{
    std::vector<RunRequest> requests;
    requests.reserve(benchmarks.size() * configs.size());
    for (const sim::ProcessorConfig &config : configs)
        for (const std::string &bench : benchmarks)
            requests.push_back(RunRequest{bench, config, 0});

    const std::vector<sim::SimResult> flat = runAll(requests);

    std::vector<std::vector<sim::SimResult>> results(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        results[c].assign(flat.begin() + c * benchmarks.size(),
                          flat.begin() + (c + 1) * benchmarks.size());
    }
    return results;
}

std::vector<std::vector<sim::SimResult>>
sweepSuiteConfigs(const std::vector<sim::ProcessorConfig> &configs)
{
    return sweepMatrix(allBenchmarks(), configs);
}

std::vector<double>
metricsOf(const std::vector<sim::SimResult> &results,
          const std::function<double(const sim::SimResult &)> &metric)
{
    std::vector<double> values;
    values.reserve(results.size());
    for (const sim::SimResult &result : results)
        values.push_back(metric(result));
    return values;
}

sim::SimResult
runOne(const std::string &benchmark, const sim::ProcessorConfig &config)
{
    return executeRequest(RunRequest{benchmark, config, 0});
}

std::string
shortName(const std::string &benchmark)
{
    static const std::map<std::string, std::string> shorts = {
        {"compress", "comp"},     {"m88ksim", "m88k"},
        {"vortex", "vor"},        {"gnuchess", "ch"},
        {"ghostscript", "gs"},    {"gnuplot", "plot"},
        {"python", "py"},         {"sim-outorder", "ss"},
        {"server-oltp", "oltp"},  {"server-web", "web"},
        {"server-cache", "kvc"},
    };
    const auto it = shorts.find(benchmark);
    return it != shorts.end() ? it->second : benchmark;
}

std::vector<std::string>
allBenchmarks()
{
    std::vector<std::string> names;
    for (const auto &profile : workload::benchmarkSuite())
        names.push_back(profile.name);
    return names;
}

void
printBenchmarkHeader(const std::string &row_label)
{
    std::printf("%-26s", row_label.c_str());
    for (const std::string &bench : allBenchmarks())
        std::printf("%7s", shortName(bench).c_str());
    std::printf("%7s\n", "avg");
}

void
printBenchmarkRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::printf("%-26s", label.c_str());
    double sum = 0;
    for (const double value : values) {
        std::printf("%7.*f", precision, value);
        sum += value;
    }
    std::printf("%7.*f\n", precision,
                values.empty() ? 0.0 : sum / values.size());
    std::fflush(stdout);
}

std::vector<double>
sweepSuite(const sim::ProcessorConfig &config,
           const std::function<double(const sim::SimResult &)> &metric)
{
    return metricsOf(sweepSuiteConfigs({config}).front(), metric);
}

void
printBanner(const std::string &exhibit, const std::string &what)
{
    std::printf("==============================================================================\n");
    std::printf("%s: %s\n", exhibit.c_str(), what.c_str());
    std::printf("(Patel, Evers, Patt, ISCA 1998 -- reproduced on synthetic workloads;\n");
    std::printf(" absolute numbers differ from the paper, shapes should match. See\n");
    std::printf(" EXPERIMENTS.md. Scale with TCSIM_INSTS=<n>, fan out with TCSIM_JOBS=<n>.)\n");
    std::printf("==============================================================================\n");
    std::fflush(stdout);
}

} // namespace tcsim::bench
