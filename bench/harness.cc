#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace tcsim::bench
{

std::uint64_t
instBudget(const workload::BenchmarkProfile &profile)
{
    if (const char *env = std::getenv("TCSIM_INSTS"))
        return std::strtoull(env, nullptr, 10);
    return profile.defaultMaxInsts;
}

const workload::Program &
programFor(const std::string &name)
{
    static std::map<std::string, workload::Program> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, workload::generateProgram(
                                    workload::findProfile(name)))
                 .first;
    }
    return it->second;
}

sim::SimResult
runOne(const std::string &benchmark, const sim::ProcessorConfig &config)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile(benchmark);
    sim::Processor proc(config, programFor(benchmark));
    std::uint64_t warmup = 0;
    if (const char *env = std::getenv("TCSIM_WARMUP"))
        warmup = std::strtoull(env, nullptr, 10);
    if (warmup > 0) {
        proc.run(warmup);
        proc.resetStats();
    }
    return proc.run(warmup + instBudget(profile));
}

std::string
shortName(const std::string &benchmark)
{
    static const std::map<std::string, std::string> shorts = {
        {"compress", "comp"},     {"m88ksim", "m88k"},
        {"vortex", "vor"},        {"gnuchess", "ch"},
        {"ghostscript", "gs"},    {"gnuplot", "plot"},
        {"python", "py"},         {"sim-outorder", "ss"},
    };
    const auto it = shorts.find(benchmark);
    return it != shorts.end() ? it->second : benchmark;
}

std::vector<std::string>
allBenchmarks()
{
    std::vector<std::string> names;
    for (const auto &profile : workload::benchmarkSuite())
        names.push_back(profile.name);
    return names;
}

void
printBenchmarkHeader(const std::string &row_label)
{
    std::printf("%-26s", row_label.c_str());
    for (const std::string &bench : allBenchmarks())
        std::printf("%7s", shortName(bench).c_str());
    std::printf("%7s\n", "avg");
}

void
printBenchmarkRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::printf("%-26s", label.c_str());
    double sum = 0;
    for (const double value : values) {
        std::printf("%7.*f", precision, value);
        sum += value;
    }
    std::printf("%7.*f\n", precision,
                values.empty() ? 0.0 : sum / values.size());
    std::fflush(stdout);
}

std::vector<double>
sweepSuite(const sim::ProcessorConfig &config,
           const std::function<double(const sim::SimResult &)> &metric)
{
    std::vector<double> values;
    for (const std::string &bench : allBenchmarks()) {
        std::fprintf(stderr, "  running %-14s %s...\n", bench.c_str(),
                     config.name.c_str());
        values.push_back(metric(runOne(bench, config)));
    }
    return values;
}

void
printBanner(const std::string &exhibit, const std::string &what)
{
    std::printf("==============================================================================\n");
    std::printf("%s: %s\n", exhibit.c_str(), what.c_str());
    std::printf("(Patel, Evers, Patt, ISCA 1998 -- reproduced on synthetic workloads;\n");
    std::printf(" absolute numbers differ from the paper, shapes should match. See\n");
    std::printf(" EXPERIMENTS.md. Scale with TCSIM_INSTS=<n>.)\n");
    std::printf("==============================================================================\n");
    std::fflush(stdout);
}

} // namespace tcsim::bench
