#include "bench/sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include <unistd.h>

#include "bench/artifact_cache.h"
#include "bench/harness.h"
#include "common/fnv.h"
#include "common/json.h"
#include "common/log.h"
#include "obs/bbv.h"
#include "sample/simpoints.h"
#include "sim/processor.h"
#include "workload/archstate.h"
#include "workload/btrace.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace tcsim::bench
{

namespace
{

constexpr unsigned kNumCycleCats =
    static_cast<unsigned>(sim::CycleCategory::NumCategories);
constexpr unsigned kNumFetchReasons =
    static_cast<unsigned>(sim::FetchReason::NumReasons);
constexpr unsigned kFetchHistWidth = sim::Accounting::kMaxFetchWidth + 1;

/**
 * Version of the predictor-checkpoint artifact: the wrapper key layout
 * plus every component's serialization format. Bump when any of the
 * saveState formats change so stale warmed blobs regenerate.
 */
constexpr unsigned kPredStateVersion = 1;

/**
 * Deterministic double rendering for the canonical documents: %.17g
 * round-trips every IEEE double exactly and formats identically in
 * every process (locale-independent digits for the C locale we run
 * under), which the byte-identical merge guarantee rests on.
 */
std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

void
appendArray(std::string &out, const std::uint64_t *values, unsigned count)
{
    out += '[';
    for (unsigned i = 0; i < count; ++i) {
        if (i > 0)
            out += ',';
        out += std::to_string(values[i]);
    }
    out += ']';
}

double
ratioOf(std::uint64_t numerator, std::uint64_t denominator)
{
    return denominator == 0
               ? 0.0
               : static_cast<double>(numerator) / denominator;
}

/**
 * The canonical per-unit record. Every byte of a merged results
 * document's result entries comes from here; derived doubles are
 * recomputed from the integers on the spot, so it does not matter
 * whether the integers arrived from an in-process simulation or were
 * parsed back out of a fragment.
 */
void
appendResultRecord(std::string &out, const WorkUnit &unit,
                   const ResultIntegers &n, const char *indent)
{
    const std::string pad = std::string(indent) + "  ";
    out += "{\n";
    auto kv = [&](const char *key, const std::string &rendered,
                  bool last = false) {
        out += pad;
        out += '"';
        out += key;
        out += "\": ";
        out += rendered;
        if (!last)
            out += ',';
        out += '\n';
    };
    auto num = [&](const char *key, std::uint64_t value) {
        kv(key, std::to_string(value));
    };
    auto dbl = [&](const char *key, double value) {
        kv(key, formatDouble(value));
    };

    kv("benchmark", "\"" + jsonEscape(unit.benchmark) + "\"");
    kv("config", "\"" + jsonEscape(unit.config.name) + "\"");
    num("insts", unit.insts);
    num("warmup", unit.warmup);
    if (unit.sampled.enabled) {
        num("sampled_interval", unit.sampled.interval);
        num("sampled_max_k", unit.sampled.maxK);
    }
    kv("hash", "\"" + unit.hash + "\"");
    num("instructions", n.instructions);
    num("cycles", n.cycles);
    dbl("ipc", ratioOf(n.instructions, n.cycles));
    num("useful_fetches", n.usefulFetches);
    num("fetched_insts", n.fetchedInsts);
    dbl("effective_fetch_rate", ratioOf(n.fetchedInsts, n.usefulFetches));
    num("cond_branches", n.condBranches);
    num("cond_mispredicts", n.condMispredicts);
    num("promoted_faults", n.promotedFaults);
    num("indirect_mispredicts", n.indirectMispredicts);
    dbl("cond_mispredict_rate", ratioOf(n.condMispredicts, n.condBranches));
    num("resolution_time_sum", n.resolutionTimeSum);
    num("resolution_time_count", n.resolutionTimeCount);
    dbl("mean_resolution_time",
        ratioOf(n.resolutionTimeSum, n.resolutionTimeCount));
    {
        std::string rendered;
        appendArray(rendered, n.fetchesNeedingPreds, 4);
        kv("fetches_needing_preds", rendered);
    }
    dbl("fetches_needing_01",
        ratioOf(n.fetchesNeedingPreds[0] + n.fetchesNeedingPreds[1],
                n.usefulFetches));
    dbl("fetches_needing_2",
        ratioOf(n.fetchesNeedingPreds[2], n.usefulFetches));
    dbl("fetches_needing_3",
        ratioOf(n.fetchesNeedingPreds[3], n.usefulFetches));
    {
        std::string rendered;
        appendArray(rendered, n.cycleCat, kNumCycleCats);
        kv("cycle_cat", rendered);
    }
    {
        std::string rendered = "[";
        for (unsigned r = 0; r < kNumFetchReasons; ++r) {
            if (r > 0)
                rendered += ',';
            appendArray(rendered, n.fetchHist[r], kFetchHistWidth);
        }
        rendered += ']';
        kv("fetch_hist", rendered);
    }
    num("tc_lookups", n.tcLookups);
    num("tc_hits", n.tcHits);
    dbl("tc_hit_ratio", ratioOf(n.tcHits, n.tcLookups));
    num("icache_misses", n.icacheMisses);
    kv("promoted_retired", std::to_string(n.promotedRetired), true);
    out += indent;
    out += '}';
}

/** Parse one canonical array member into @p values; false on shape
 * mismatch. */
bool
parseArray(const json::Value &record, const char *key,
           std::uint64_t *values, unsigned count)
{
    const json::Value *array = record.find(key);
    if (array == nullptr || !array->isArray() ||
        array->items().size() != count) {
        return false;
    }
    for (unsigned i = 0; i < count; ++i) {
        const json::Value &item = array->items()[i];
        if (!item.isNumber())
            return false;
        values[i] = item.asUint64();
    }
    return true;
}

/** Parse a fragment's canonical record back into integers. */
bool
parseResultRecord(const json::Value &record, ResultIntegers &n)
{
    const char *scalar_keys[] = {
        "instructions",       "cycles",
        "useful_fetches",     "fetched_insts",
        "cond_branches",      "cond_mispredicts",
        "promoted_faults",    "indirect_mispredicts",
        "resolution_time_sum", "resolution_time_count",
        "tc_lookups",         "tc_hits",
        "icache_misses",      "promoted_retired",
    };
    std::uint64_t *scalar_slots[] = {
        &n.instructions,       &n.cycles,
        &n.usefulFetches,      &n.fetchedInsts,
        &n.condBranches,       &n.condMispredicts,
        &n.promotedFaults,     &n.indirectMispredicts,
        &n.resolutionTimeSum,  &n.resolutionTimeCount,
        &n.tcLookups,          &n.tcHits,
        &n.icacheMisses,       &n.promotedRetired,
    };
    static_assert(sizeof(scalar_keys) / sizeof(scalar_keys[0]) ==
                  sizeof(scalar_slots) / sizeof(scalar_slots[0]));
    for (unsigned i = 0; i < sizeof(scalar_keys) / sizeof(scalar_keys[0]);
         ++i) {
        const json::Value *value = record.find(scalar_keys[i]);
        if (value == nullptr || !value->isNumber())
            return false;
        *scalar_slots[i] = value->asUint64();
    }
    if (!parseArray(record, "fetches_needing_preds", n.fetchesNeedingPreds,
                    4) ||
        !parseArray(record, "cycle_cat", n.cycleCat, kNumCycleCats)) {
        return false;
    }
    const json::Value *hist = record.find("fetch_hist");
    if (hist == nullptr || !hist->isArray() ||
        hist->items().size() != kNumFetchReasons) {
        return false;
    }
    for (unsigned r = 0; r < kNumFetchReasons; ++r) {
        const json::Value &row = hist->items()[r];
        if (!row.isArray() || row.items().size() != kFetchHistWidth)
            return false;
        for (unsigned w = 0; w < kFetchHistWidth; ++w) {
            if (!row.items()[w].isNumber())
                return false;
            n.fetchHist[r][w] = row.items()[w].asUint64();
        }
    }
    return true;
}

std::string
predictorStateKey(const WorkUnit &unit)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile(unit.benchmark);
    std::string key = "predstate:v";
    key += std::to_string(kPredStateVersion);
    key += ":gen=v";
    key += std::to_string(workload::kGeneratorVersion);
    key += ":prog=";
    key += hashHex(workload::profileFingerprint(profile));
    key += ":cfg=";
    key += hashHex(sim::configFingerprint(unit.config));
    key += ":warmup=";
    key += std::to_string(unit.warmup);
    return key;
}

/**
 * Cache key for a sampled-execution warm-state checkpoint: the full
 * microarchitectural state (predictors, bias table, indirect targets,
 * cache tags, trace-cache contents) exported after functionally
 * warming the prefix [0, @p pos). Independent of unit.warmup (the
 * functional pass always covers the whole prefix); keyed by the
 * warming-scheme version so a change to the warming algorithm
 * invalidates old checkpoints.
 */
std::string
warmingStateKey(const WorkUnit &unit, std::uint64_t pos)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile(unit.benchmark);
    std::string key = "warmstate:v";
    key += std::to_string(sample::kSampledWarmingVersion);
    key += ":pred=v";
    key += std::to_string(kPredStateVersion);
    key += ":gen=v";
    key += std::to_string(workload::kGeneratorVersion);
    key += ":prog=";
    key += hashHex(workload::profileFingerprint(profile));
    key += ":cfg=";
    key += hashHex(sim::configFingerprint(unit.config));
    key += ":pos=";
    key += std::to_string(pos);
    return key;
}

/** Program-only key prefix shared by the config-independent sampled
 * artifacts (BBV profiles, architectural checkpoints). */
std::string
programKeyPrefix(const std::string &benchmark)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile(benchmark);
    std::string key = "gen=v";
    key += std::to_string(workload::kGeneratorVersion);
    key += ":prog=";
    key += hashHex(workload::profileFingerprint(profile));
    return key;
}

std::string
archCkptKey(const std::string &benchmark, std::uint64_t pos)
{
    std::string key = "archckpt:v1:";
    key += programKeyPrefix(benchmark);
    key += ":pos=";
    key += std::to_string(pos);
    return key;
}

double
wallSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

std::string
bbvArtifactKey(const std::string &benchmark, std::uint64_t insts,
               std::uint64_t interval)
{
    std::string key = "bbv:v";
    key += std::to_string(sample::kBbvFormatVersion);
    key += ':';
    key += programKeyPrefix(benchmark);
    key += ":insts=";
    key += std::to_string(insts);
    key += ":interval=";
    key += std::to_string(interval);
    return key;
}

std::string
btraceArtifactKey(const std::string &benchmark, std::uint64_t insts)
{
    std::string key = "btrace:v";
    key += std::to_string(workload::kBtraceFormatVersion);
    key += ':';
    key += programKeyPrefix(benchmark);
    key += ":insts=";
    key += std::to_string(insts);
    return key;
}

std::vector<sim::ProcessorConfig>
defaultSweepConfigs()
{
    return {sim::icacheConfig(), sim::baselineConfig(),
            sim::promotionConfig(), sim::packingConfig(),
            sim::promotionPackingConfig()};
}

std::optional<sim::ProcessorConfig>
configByName(const std::string &name)
{
    // A "+mem" suffix layers the contended-DRAM memory model (default
    // DramParams) over any base config, e.g. "baseline+mem".
    constexpr std::string_view mem_suffix = "+mem";
    if (name.size() > mem_suffix.size() &&
        name.compare(name.size() - mem_suffix.size(), mem_suffix.size(),
                     mem_suffix) == 0) {
        auto base = configByName(
            name.substr(0, name.size() - mem_suffix.size()));
        if (!base)
            return std::nullopt;
        return sim::withContendedMemory(std::move(*base));
    }
    if (name == "icache")
        return sim::icacheConfig();
    if (name == "baseline")
        return sim::baselineConfig();
    const auto policy_of =
        [](const std::string &text) -> std::optional<trace::PackingPolicy> {
        if (text == "atomic")
            return trace::PackingPolicy::Atomic;
        if (text == "unregulated")
            return trace::PackingPolicy::Unregulated;
        if (text == "n-regulated")
            return trace::PackingPolicy::NRegulated;
        if (text == "cost-regulated")
            return trace::PackingPolicy::CostRegulated;
        return std::nullopt;
    };
    if (name.rfind("promotion-t", 0) == 0) {
        const std::string digits = name.substr(11);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            return std::nullopt;
        }
        return sim::promotionConfig(
            static_cast<std::uint32_t>(std::stoul(digits)));
    }
    if (name.rfind("packing-", 0) == 0) {
        if (auto policy = policy_of(name.substr(8)))
            return sim::packingConfig(*policy);
        return std::nullopt;
    }
    if (name.rfind("promo-pack-", 0) == 0) {
        if (auto policy = policy_of(name.substr(11)))
            return sim::promotionPackingConfig(64, *policy);
        return std::nullopt;
    }
    return std::nullopt;
}

std::vector<WorkUnit>
enumerateUnits(const SweepOptions &options)
{
    const std::vector<std::string> benchmarks =
        options.benchmarks.empty() ? allBenchmarks() : options.benchmarks;
    const std::vector<sim::ProcessorConfig> configs =
        options.configs.empty() ? defaultSweepConfigs() : options.configs;

    std::vector<WorkUnit> units;
    units.reserve(configs.size() * benchmarks.size());
    for (const sim::ProcessorConfig &config : configs) {
        const std::uint64_t config_fp = sim::configFingerprint(config);
        for (const std::string &benchmark : benchmarks) {
            const workload::BenchmarkProfile &profile =
                workload::findProfile(benchmark);
            WorkUnit unit;
            unit.index = static_cast<std::uint32_t>(units.size());
            unit.benchmark = benchmark;
            unit.config = config;
            unit.insts = options.insts != 0 ? options.insts
                                            : profile.defaultMaxInsts;
            // Per-unit override: "benchmark@config" beats "benchmark".
            {
                const std::string cell = benchmark + "@" + config.name;
                bool exact = false;
                for (const auto &[selector, insts] : options.instsFor) {
                    if (selector == cell) {
                        unit.insts = insts;
                        exact = true;
                    } else if (selector == benchmark && !exact) {
                        unit.insts = insts;
                    }
                }
            }
            unit.warmup = options.warmup;
            unit.sampled = options.sampled;
            unit.replay = options.replay;
            if (unit.replay &&
                (unit.sampled.enabled || unit.warmup != 0)) {
                fatal("replay sweep: --replay is a front-end analysis "
                      "pass and cannot combine with --warmup or "
                      "sampled execution");
            }
            unit.id = benchmark + "@" + config.name + "@" +
                      std::to_string(unit.insts);
            if (unit.sampled.enabled) {
                if (unit.sampled.interval == 0 || unit.sampled.maxK == 0 ||
                    unit.insts % unit.sampled.interval != 0) {
                    fatal("sampled sweep: interval must be positive, "
                          "divide the budget (%llu %% %llu != 0), and "
                          "max_k must be positive",
                          static_cast<unsigned long long>(unit.insts),
                          static_cast<unsigned long long>(
                              unit.sampled.interval));
                }
                unit.id += "@sampled-i" +
                           std::to_string(unit.sampled.interval) + "-k" +
                           std::to_string(unit.sampled.maxK) + "-w" +
                           std::to_string(unit.warmup);
            }
            if (unit.replay)
                unit.id += "@replay";
            std::uint64_t hash = fnv1a(unit.id);
            hash = fnv1aAppendScalar(hash, workload::kGeneratorVersion);
            hash = fnv1aAppendScalar(
                hash, workload::profileFingerprint(profile));
            hash = fnv1aAppendScalar(hash, config_fp);
            hash = fnv1aAppendScalar(hash, unit.warmup);
            if (unit.sampled.enabled) {
                // The sampled result additionally depends on the BBV
                // artifact format, the clustering algorithm and its
                // parameters; hash them so stale fragments regenerate.
                hash = fnv1aAppendScalar(hash, unit.sampled.interval);
                hash = fnv1aAppendScalar(hash, unit.sampled.maxK);
                hash = fnv1aAppendScalar(hash, sample::kBbvFormatVersion);
                hash = fnv1aAppendScalar(hash,
                                         sample::kSimpointsAlgoVersion);
                hash = fnv1aAppendScalar(hash, sample::kSimpointSeed);
                hash = fnv1aAppendScalar(
                    hash, sample::kSampledWarmingVersion);
            }
            if (unit.replay) {
                // Replay results depend on the trace encoding; hash
                // the format version so fragments from an older
                // btrace layout regenerate instead of merging.
                hash = fnv1aAppendScalar(hash,
                                         workload::kBtraceFormatVersion);
            }
            unit.hash = hashHex(hash);
            units.push_back(std::move(unit));
        }
    }
    return units;
}

std::string
matrixHash(const std::vector<WorkUnit> &units)
{
    std::uint64_t hash = kFnvOffsetBasis;
    for (const WorkUnit &unit : units)
        hash = fnv1aAppend(hash, unit.hash);
    return hashHex(hash);
}

ResultIntegers
integersOf(const sim::SimResult &result)
{
    ResultIntegers n;
    n.instructions = result.instructions;
    n.cycles = result.cycles;
    n.condBranches = result.condBranches;
    n.condMispredicts = result.condMispredicts;
    n.promotedFaults = result.promotedFaults;
    n.indirectMispredicts = result.indirectMispredicts;
    n.usefulFetches = result.usefulFetches;
    n.fetchedInsts = result.fetchedInsts;
    n.resolutionTimeSum = result.resolutionTimeSum;
    n.resolutionTimeCount = result.resolutionTimeCount;
    for (unsigned i = 0; i < 4; ++i)
        n.fetchesNeedingPreds[i] = result.fetchesNeedingPreds[i];
    for (unsigned c = 0; c < kNumCycleCats; ++c)
        n.cycleCat[c] = result.cycleCat[c];
    for (unsigned r = 0; r < kNumFetchReasons; ++r)
        for (unsigned w = 0; w < kFetchHistWidth; ++w)
            n.fetchHist[r][w] = result.fetchHist[r][w];
    n.tcLookups = result.tcLookups;
    n.tcHits = result.tcHits;
    n.icacheMisses = result.icacheMisses;
    n.promotedRetired = result.promotedRetired;
    return n;
}

sim::SimResult
executeUnit(const WorkUnit &unit)
{
    const workload::Program &program = programFor(unit.benchmark);
    sim::Processor proc(unit.config, program);

    if (unit.warmup > 0) {
        // The warmed predictor state is a pure function of
        // (program, config, warmup length, format versions), so it is
        // memoized through the artifact cache. The measurement run
        // ALWAYS imports the blob into a fresh processor — also right
        // after generating it — so a cache hit replays exactly the
        // cold path and cannot change simulation results.
        const std::string key = predictorStateKey(unit);
        const std::string blob =
            ArtifactCache::process().getOrCreate("predstate", key, [&] {
                sim::Processor trainer(unit.config, program);
                trainer.run(unit.warmup);
                std::ostringstream os;
                trainer.exportPredictorState(os);
                return std::move(os).str();
            });
        std::istringstream is(blob);
        if (!proc.importPredictorState(is)) {
            fatal("predictor checkpoint for %s rejected by a processor "
                  "with the same configuration (format bug)",
                  unit.id.c_str());
        }
    }
    return proc.run(unit.insts);
}

namespace
{

/** Accumulate @p region into @p total scaled by @p weight (exact
 * integer math; the canonical renderer derives rates later). */
void
accumulateWeighted(ResultIntegers &total, const ResultIntegers &region,
                   std::uint64_t weight)
{
    total.instructions += weight * region.instructions;
    total.cycles += weight * region.cycles;
    total.condBranches += weight * region.condBranches;
    total.condMispredicts += weight * region.condMispredicts;
    total.promotedFaults += weight * region.promotedFaults;
    total.indirectMispredicts += weight * region.indirectMispredicts;
    total.usefulFetches += weight * region.usefulFetches;
    total.fetchedInsts += weight * region.fetchedInsts;
    total.resolutionTimeSum += weight * region.resolutionTimeSum;
    total.resolutionTimeCount += weight * region.resolutionTimeCount;
    for (unsigned i = 0; i < 4; ++i)
        total.fetchesNeedingPreds[i] +=
            weight * region.fetchesNeedingPreds[i];
    for (unsigned c = 0; c < kNumCycleCats; ++c)
        total.cycleCat[c] += weight * region.cycleCat[c];
    for (unsigned r = 0; r < kNumFetchReasons; ++r)
        for (unsigned w = 0; w < kFetchHistWidth; ++w)
            total.fetchHist[r][w] += weight * region.fetchHist[r][w];
    total.tcLookups += weight * region.tcLookups;
    total.tcHits += weight * region.tcHits;
    total.icacheMisses += weight * region.icacheMisses;
    total.promotedRetired += weight * region.promotedRetired;
}

/**
 * The sampled execution pipeline for one unit. Every stage is cached
 * through the artifact cache and regenerated deterministically on a
 * miss, so results are identical hit or miss and across shards.
 */
ResultIntegers
executeSampledUnit(const WorkUnit &unit)
{
    TCSIM_ASSERT(unit.sampled.enabled);
    const workload::Program &program = programFor(unit.benchmark);
    ArtifactCache &cache = ArtifactCache::process();

    // 1. BBV profile: functional pass, configuration-independent,
    //    shared by every config in the matrix via the cache.
    const std::string bbv_json =
        cache.getOrCreate(
            "bbv",
            bbvArtifactKey(unit.benchmark, unit.insts,
                           unit.sampled.interval),
            [&] {
            return sample::profileBbv(program, unit.benchmark, unit.insts,
                                      unit.sampled.interval)
                .toJson();
        });
    const std::optional<obs::BbvDocument> bbv =
        obs::BbvDocument::fromJson(bbv_json);
    if (!bbv || bbv->totalInsts != unit.insts ||
        bbv->intervalInsts != unit.sampled.interval) {
        fatal("BBV profile for %s is malformed or mismatched "
              "(early halt below the budget?)",
              unit.id.c_str());
    }

    // 2. Deterministic clustering: a pure single-threaded function of
    //    the BBV artifact — bit-identical regardless of TCSIM_JOBS or
    //    shard count.
    const workload::BenchmarkProfile &profile =
        workload::findProfile(unit.benchmark);
    const sample::SimpointPlan plan = sample::selectSimpoints(
        *bbv, hashHex(workload::profileFingerprint(profile)),
        unit.sampled.maxK);

    // 3. Architectural checkpoints at each region's detailed warm-up
    //    start (config-independent). All misses are produced by ONE
    //    monotone walker pass instead of one pass per position.
    std::vector<std::uint64_t> positions;
    for (const sample::Simpoint &pt : plan.points) {
        const std::uint64_t start = pt.startInsts;
        const std::uint64_t detail_start =
            start > unit.warmup ? start - unit.warmup : 0;
        if (detail_start > 0)
            positions.push_back(detail_start);
    }
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());

    std::map<std::uint64_t, std::string> ckpt_blobs;
    std::vector<std::uint64_t> missing;
    for (const std::uint64_t pos : positions) {
        std::optional<std::string> blob;
        if (cache.enabled())
            blob = cache.load("archckpt", archCkptKey(unit.benchmark, pos));
        if (blob)
            ckpt_blobs.emplace(pos, std::move(*blob));
        else
            missing.push_back(pos);
    }
    if (!missing.empty()) {
        workload::ArchStateWalker walker(program);
        for (const std::uint64_t pos : missing) {
            walker.advanceTo(pos);
            std::string blob = walker.capture().serialize();
            if (cache.enabled())
                cache.store("archckpt", archCkptKey(unit.benchmark, pos),
                            blob);
            ckpt_blobs.emplace(pos, std::move(blob));
        }
    }
    const auto ckptAt = [&](std::uint64_t pos) -> workload::ArchCheckpoint {
        const auto it = ckpt_blobs.find(pos);
        TCSIM_ASSERT(it != ckpt_blobs.end());
        auto ckpt = workload::ArchCheckpoint::deserialize(it->second);
        if (!ckpt || ckpt->instIndex != pos) {
            fatal("architectural checkpoint at %llu for %s is corrupt",
                  static_cast<unsigned long long>(pos), unit.id.c_str());
        }
        return std::move(*ckpt);
    };

    // 4. Warm-state checkpoints at the same positions: ONE shared
    //    functional-warming pass per (program, config) walks the whole
    //    prefix once, training predictors and the bias table, feeding
    //    the fill unit (which builds the trace cache) and touching
    //    cache tags at functional-executor speed, and exports the full
    //    warm microarchitectural state at each region's detailed
    //    warm-up start. The pass is monotone — functionalWarmup()
    //    resumes on a never-cycled processor — so its cost is one
    //    functional traversal of the program, not one per region.
    //    Checkpoints are pure functions of (program, config, position,
    //    warming version) and flow through the artifact cache like
    //    everything else.
    std::map<std::uint64_t, std::string> warm_blobs;
    {
        std::vector<std::uint64_t> warm_missing;
        for (const std::uint64_t pos : positions) {
            std::optional<std::string> blob;
            if (cache.enabled())
                blob = cache.load("warmstate", warmingStateKey(unit, pos));
            if (blob)
                warm_blobs.emplace(pos, std::move(*blob));
            else
                warm_missing.push_back(pos);
        }
        if (!warm_missing.empty()) {
            sim::Processor warmer(unit.config, program);
            for (const std::uint64_t pos : warm_missing) {
                warmer.functionalWarmup(pos);
                std::ostringstream os;
                warmer.exportWarmState(os);
                std::string blob = std::move(os).str();
                if (cache.enabled())
                    cache.store("warmstate", warmingStateKey(unit, pos),
                                blob);
                warm_blobs.emplace(pos, std::move(blob));
            }
        }
    }

    // 5. Simulate each representative region on the detailed model
    //    and combine by cluster weight. Each region's processor is
    //    warm-started architecturally from the cached checkpoint with
    //    the prefix-warmed microarchitectural state imported on top
    //    (regions ALWAYS import the blob — also right after generating
    //    it — so a cache hit replays exactly the cold path), then runs
    //    the unit's warm-up budget of DETAILED instructions (smoothing
    //    the residual gap between functional warming and real pipeline
    //    behavior), and only then opens the stats window (resetStats)
    //    for the region proper. This layered warm-up is what keeps
    //    per-region cold-start bias inside the error tolerance without
    //    paying detailed-simulation cost for it.
    ResultIntegers combined;
    for (const sample::Simpoint &pt : plan.points) {
        const std::uint64_t start = pt.startInsts;
        const std::uint64_t stop = start + plan.intervalInsts;
        const std::uint64_t detail_start =
            start > unit.warmup ? start - unit.warmup : 0;

        sim::Processor proc(unit.config, program);
        if (detail_start > 0) {
            proc.warmStart(ckptAt(detail_start));
            const auto it = warm_blobs.find(detail_start);
            TCSIM_ASSERT(it != warm_blobs.end());
            std::istringstream is(it->second);
            if (!proc.importWarmState(is)) {
                fatal("functional-warming checkpoint at %llu for %s "
                      "rejected by a processor with the same "
                      "configuration (format bug)",
                      static_cast<unsigned long long>(detail_start),
                      unit.id.c_str());
            }
        }
        if (detail_start < start)
            proc.run(start);
        proc.resetStats();
        accumulateWeighted(combined, integersOf(proc.run(stop)),
                           pt.weightNum);
    }
    return combined;
}

/**
 * Record the config-independent control-flow trace for a benchmark:
 * one oracle pass through Processor::recordTrace into a temporary
 * file, whose bytes become the cacheable artifact payload. The trace
 * records only oracle facts (pc, target, class, taken), so the
 * recording processor's configuration cannot influence the bytes; a
 * fixed canonical config keeps that invariance explicit. Deterministic
 * — same program + budget always produces the same image — so it is
 * safe to memoize through the artifact cache and share across shards.
 */
std::string
recordBtraceBytes(const std::string &benchmark, std::uint64_t insts)
{
    const workload::Program &program = programFor(benchmark);
    const workload::BenchmarkProfile &profile =
        workload::findProfile(benchmark);
    const std::string tmp =
        (std::filesystem::temp_directory_path() /
         ("tcsim-btrace-" + std::to_string(::getpid()) + "-" +
          hashHex(fnv1a(btraceArtifactKey(benchmark, insts))) + ".tmp"))
            .string();
    {
        workload::BtraceWriter writer(tmp, workload::kGeneratorVersion,
                                      workload::profileFingerprint(profile),
                                      program.entry());
        sim::Processor recorder(sim::icacheConfig(), program);
        recorder.recordTrace(writer, insts);
    }
    std::ifstream in(tmp, std::ios::binary);
    if (!in)
        fatal("cannot read back recorded btrace '%s'", tmp.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return std::move(buf).str();
}

/**
 * The replay pipeline for one unit: fetch (or record) the benchmark's
 * btrace artifact, then drive this config's front end from it via
 * Processor::replayTrace. Only front-end counters are meaningful;
 * cycles and the fetch/timing stats stay zero (derived rates over a
 * zero denominator render as 0 in the canonical documents).
 */
ResultIntegers
executeReplayUnit(const WorkUnit &unit)
{
    TCSIM_ASSERT(unit.replay);
    const std::string bytes = ArtifactCache::process().getOrCreate(
        "btrace", btraceArtifactKey(unit.benchmark, unit.insts),
        [&] { return recordBtraceBytes(unit.benchmark, unit.insts); });

    workload::BtraceReader reader;
    std::string error;
    if (!reader.openBytes(bytes, &error)) {
        fatal("btrace artifact for %s is invalid: %s", unit.id.c_str(),
              error.c_str());
    }
    const workload::BenchmarkProfile &profile =
        workload::findProfile(unit.benchmark);
    if (reader.header().generatorVersion != workload::kGeneratorVersion ||
        reader.header().profileFingerprint !=
            workload::profileFingerprint(profile)) {
        fatal("btrace artifact for %s was recorded from a different "
              "program (stale cache entry?)",
              unit.id.c_str());
    }

    const workload::Program &program = programFor(unit.benchmark);
    sim::Processor proc(unit.config, program);
    const sim::Processor::ControlFlowResult r = proc.replayTrace(reader);

    ResultIntegers n;
    n.instructions = r.instructions;
    n.condBranches = r.condBranches;
    n.condMispredicts = r.condMispredicts;
    n.indirectMispredicts = r.indirectMispredicts;
    n.tcLookups = r.tcLookups;
    n.tcHits = r.tcHits;
    n.icacheMisses = r.icacheMisses;
    return n;
}

} // namespace

ResultIntegers
executeUnitIntegers(const WorkUnit &unit)
{
    if (unit.replay)
        return executeReplayUnit(unit);
    if (unit.sampled.enabled)
        return executeSampledUnit(unit);
    return integersOf(executeUnit(unit));
}

std::string
samplingErrorReport(const SweepOptions &options, double tolerance,
                    double mispredict_tolerance, bool *all_within_out)
{
    TCSIM_ASSERT(options.sampled.enabled,
                 "samplingErrorReport needs a sampled matrix");
    const std::vector<WorkUnit> units = enumerateUnits(options);

    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-sampling-error-v1\",\n";
    out += "  \"matrix_hash\": \"" + matrixHash(units) + "\",\n";
    out += "  \"tolerance\": " + formatDouble(tolerance) + ",\n";
    out += "  \"mispredict_tolerance\": " +
           formatDouble(mispredict_tolerance) + ",\n";
    out += "  \"units\": [\n";

    bool all_within = true;
    double full_wall_total = 0.0;
    double sampled_wall_total = 0.0;
    double max_err_ipc = 0.0;
    double max_err_fetch = 0.0;
    double max_err_mispredict = 0.0;
    for (std::size_t i = 0; i < units.size(); ++i) {
        const WorkUnit &unit = units[i];

        auto t0 = std::chrono::steady_clock::now();
        const ResultIntegers sampled = executeSampledUnit(unit);
        const double sampled_wall = wallSince(t0);

        WorkUnit full_unit = unit;
        full_unit.sampled = SampledParams{};
        t0 = std::chrono::steady_clock::now();
        const ResultIntegers full = integersOf(executeUnit(full_unit));
        const double full_wall = wallSince(t0);

        const auto rel_err = [](double estimate, double reference) {
            if (reference == 0.0)
                return estimate == 0.0 ? 0.0 : 1.0;
            return std::abs(estimate - reference) / reference;
        };
        const auto stats_of = [](const ResultIntegers &n) {
            struct Derived
            {
                double ipc, fetchRate, mispredictRate;
            };
            return Derived{ratioOf(n.instructions, n.cycles),
                           ratioOf(n.fetchedInsts, n.usefulFetches),
                           ratioOf(n.condMispredicts, n.condBranches)};
        };
        const auto s = stats_of(sampled);
        const auto f = stats_of(full);
        const double err_ipc = rel_err(s.ipc, f.ipc);
        const double err_fetch = rel_err(s.fetchRate, f.fetchRate);
        const double err_mispredict =
            rel_err(s.mispredictRate, f.mispredictRate);
        // The mispredict gate is ABSOLUTE (the rate is already a
        // fraction): per-region predictor warm-up bias shifts the
        // sampled rate by a few points regardless of the base rate,
        // so relative error diverges exactly when the full run's
        // rate gets small — at long budgets where prediction is best.
        const double abs_err_mispredict =
            std::abs(s.mispredictRate - f.mispredictRate);
        const bool within = err_ipc <= tolerance &&
                            err_fetch <= tolerance &&
                            abs_err_mispredict <= mispredict_tolerance;
        all_within = all_within && within;
        max_err_ipc = std::max(max_err_ipc, err_ipc);
        max_err_fetch = std::max(max_err_fetch, err_fetch);
        max_err_mispredict =
            std::max(max_err_mispredict, abs_err_mispredict);
        full_wall_total += full_wall;
        sampled_wall_total += sampled_wall;

        out += "    {\n";
        out += "      \"id\": \"" + jsonEscape(unit.id) + "\",\n";
        out += "      \"sampled\": {\"ipc\": " + formatDouble(s.ipc) +
               ", \"fetch_rate\": " + formatDouble(s.fetchRate) +
               ", \"mispredict_rate\": " + formatDouble(s.mispredictRate) +
               ", \"wall_seconds\": " + formatDouble(sampled_wall) +
               "},\n";
        out += "      \"full\": {\"ipc\": " + formatDouble(f.ipc) +
               ", \"fetch_rate\": " + formatDouble(f.fetchRate) +
               ", \"mispredict_rate\": " + formatDouble(f.mispredictRate) +
               ", \"wall_seconds\": " + formatDouble(full_wall) + "},\n";
        out += "      \"rel_err\": {\"ipc\": " + formatDouble(err_ipc) +
               ", \"fetch_rate\": " + formatDouble(err_fetch) +
               ", \"mispredict_rate\": " + formatDouble(err_mispredict) +
               "},\n";
        out += "      \"abs_err_mispredict_rate\": " +
               formatDouble(abs_err_mispredict) + ",\n";
        out += "      \"speedup\": " +
               formatDouble(sampled_wall > 0.0 ? full_wall / sampled_wall
                                               : 0.0) +
               ",\n";
        out += std::string("      \"within_tolerance\": ") +
               (within ? "true" : "false") + "\n";
        out += i + 1 < units.size() ? "    },\n" : "    }\n";
    }

    out += "  ],\n";
    out += "  \"aggregate\": {\n";
    out += "    \"max_rel_err_ipc\": " + formatDouble(max_err_ipc) + ",\n";
    out += "    \"max_rel_err_fetch_rate\": " + formatDouble(max_err_fetch) +
           ",\n";
    out += "    \"max_abs_err_mispredict_rate\": " +
           formatDouble(max_err_mispredict) + ",\n";
    out += "    \"full_wall_seconds\": " + formatDouble(full_wall_total) +
           ",\n";
    out += "    \"sampled_wall_seconds\": " +
           formatDouble(sampled_wall_total) + ",\n";
    out += "    \"speedup\": " +
           formatDouble(sampled_wall_total > 0.0
                            ? full_wall_total / sampled_wall_total
                            : 0.0) +
           "\n";
    out += "  },\n";
    out += std::string("  \"all_within_tolerance\": ") +
           (all_within ? "true" : "false") + "\n";
    out += "}\n";
    if (all_within_out != nullptr)
        *all_within_out = all_within;
    return out;
}

std::string
renderFragment(const WorkUnit &unit, const ResultIntegers &integers,
               const UnitTiming &timing)
{
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-bench-fragment-v1\",\n";
    out += "  \"unit\": {\n";
    out += "    \"index\": " + std::to_string(unit.index) + ",\n";
    out += "    \"id\": \"" + jsonEscape(unit.id) + "\",\n";
    out += "    \"hash\": \"" + unit.hash + "\",\n";
    out += "    \"benchmark\": \"" + jsonEscape(unit.benchmark) + "\",\n";
    out += "    \"config\": \"" + jsonEscape(unit.config.name) + "\",\n";
    out += "    \"insts\": " + std::to_string(unit.insts) + ",\n";
    out += "    \"warmup\": " + std::to_string(unit.warmup);
    if (unit.sampled.enabled) {
        out += ",\n    \"sampled_interval\": " +
               std::to_string(unit.sampled.interval);
        out += ",\n    \"sampled_max_k\": " +
               std::to_string(unit.sampled.maxK);
    }
    out += "\n  },\n";
    out += "  \"result\": ";
    appendResultRecord(out, unit, integers, "  ");
    out += ",\n";
    // Non-canonical section: never copied into the merged document.
    out += "  \"timing\": {\n";
    out += "    \"wall_seconds\": " + formatDouble(timing.wallSeconds) +
           ",\n";
    out += "    \"cache_hits\": " + std::to_string(timing.cacheHits) +
           ",\n";
    out += "    \"cache_misses\": " + std::to_string(timing.cacheMisses) +
           "\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

std::string
renderResultsDoc(const std::vector<WorkUnit> &units,
                 const std::vector<ResultIntegers> &integers)
{
    TCSIM_ASSERT(units.size() == integers.size());
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-bench-results-v1\",\n";
    out += "  \"matrix_hash\": \"" + matrixHash(units) + "\",\n";
    out += "  \"units\": " + std::to_string(units.size()) + ",\n";
    out += "  \"results\": [\n";
    for (std::size_t i = 0; i < units.size(); ++i) {
        out += "    ";
        appendResultRecord(out, units[i], integers[i], "    ");
        out += i + 1 < units.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::string
renderPartialDoc(const std::vector<WorkUnit> &units,
                 const std::vector<ResultIntegers> &integers,
                 const std::vector<bool> &filled)
{
    TCSIM_ASSERT(units.size() == integers.size() &&
                 units.size() == filled.size());
    std::size_t completed = 0;
    for (const bool f : filled)
        completed += f ? 1 : 0;
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-bench-partial-v1\",\n";
    out += "  \"matrix_hash\": \"" + matrixHash(units) + "\",\n";
    out += "  \"units\": " + std::to_string(units.size()) + ",\n";
    out += "  \"completed\": " + std::to_string(completed) + ",\n";
    out += "  \"results\": [\n";
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!filled[i])
            continue;
        out += "    ";
        appendResultRecord(out, units[i], integers[i], "    ");
        out += ++emitted < completed ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::string
fragmentPath(const std::string &dir, const WorkUnit &unit)
{
    return dir + "/" + unit.hash + ".json";
}

bool
writeFragment(const std::string &dir, const WorkUnit &unit,
              const ResultIntegers &integers, const UnitTiming &timing)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return false;
    const std::string path = fragmentPath(dir, unit);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        const std::string doc = renderFragment(unit, integers, timing);
        out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
        if (!out) {
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
parseFragmentBytes(const std::string &bytes, FragmentData &out)
{
    const std::optional<json::Value> doc = json::parse(bytes);
    if (!doc || !doc->isObject() ||
        doc->getString("schema") != "tcsim-bench-fragment-v1") {
        return false;
    }
    const json::Value *unit_obj = doc->find("unit");
    const json::Value *result_obj = doc->find("result");
    if (unit_obj == nullptr || !unit_obj->isObject() ||
        result_obj == nullptr || !result_obj->isObject()) {
        return false;
    }
    out.id = unit_obj->getString("id");
    out.hash = unit_obj->getString("hash");
    if (out.hash.size() != 16 || !parseResultRecord(*result_obj, out.integers))
        return false;
    out.timing = UnitTiming{};
    const json::Value *timing = doc->find("timing");
    if (timing != nullptr && timing->isObject()) {
        out.timing.wallSeconds = timing->getDouble("wall_seconds");
        out.timing.cacheHits = timing->getUint64("cache_hits");
        out.timing.cacheMisses = timing->getUint64("cache_misses");
    }
    return true;
}

namespace
{

/** @return whether a store object name is "<something>.json". */
bool
isJsonName(const std::string &name)
{
    return name.size() > 5 &&
           name.compare(name.size() - 5, 5, ".json") == 0;
}

} // namespace

std::optional<std::string>
mergeFragments(const SweepOptions &options, FragmentStore &store,
               MergeReport &report)
{
    const std::vector<WorkUnit> units = enumerateUnits(options);
    std::map<std::string, std::size_t> by_hash;
    for (std::size_t i = 0; i < units.size(); ++i)
        by_hash.emplace(units[i].hash, i);

    std::vector<ResultIntegers> integers(units.size());
    std::vector<bool> filled(units.size(), false);
    // list() is sorted by name — the same deterministic order as the
    // historical sorted directory scan, so reports are stable run to
    // run. Heartbeat objects are telemetry, not results: skipping
    // them is what keeps merges byte-identical with a monitor
    // attached.
    for (const StoreObject &object : store.list("")) {
        const std::string &name = object.name;
        if (!isJsonName(name) || obs::isHeartbeatFilename(name))
            continue;
        const std::string shown = store.describe() + "/" + name;
        const std::optional<std::string> bytes = store.get(name);
        const std::optional<json::Value> doc =
            bytes ? json::parse(*bytes) : std::nullopt;
        if (!doc || !doc->isObject() ||
            doc->getString("schema") != "tcsim-bench-fragment-v1") {
            report.corrupt.push_back(shown);
            continue;
        }
        const json::Value *unit_obj = doc->find("unit");
        const json::Value *result_obj = doc->find("result");
        if (unit_obj == nullptr || !unit_obj->isObject() ||
            result_obj == nullptr || !result_obj->isObject()) {
            report.corrupt.push_back(shown);
            continue;
        }
        const std::string hash = unit_obj->getString("hash");
        // The name stem is the claimed unit hash; a mismatch means
        // the object was renamed or half-written and cannot be
        // trusted.
        if (name.substr(0, name.size() - 5) != hash) {
            report.corrupt.push_back(shown);
            continue;
        }
        const auto wanted = by_hash.find(hash);
        if (wanted == by_hash.end()) {
            report.stale.push_back(shown);
            continue;
        }
        if (filled[wanted->second]) {
            report.duplicates.push_back(shown);
            continue;
        }
        ResultIntegers n;
        if (!parseResultRecord(*result_obj, n)) {
            report.corrupt.push_back(shown);
            continue;
        }
        integers[wanted->second] = n;
        filled[wanted->second] = true;
    }

    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!filled[i])
            report.missing.push_back(units[i].id);
    }
    if (!report.complete())
        return std::nullopt;
    return renderResultsDoc(units, integers);
}

std::optional<std::string>
mergeFragments(const SweepOptions &options,
               const std::string &fragments_dir, MergeReport &report)
{
    LocalDirStore store(fragments_dir);
    return mergeFragments(options, store, report);
}

FarmScan
scanFarm(const SweepOptions &options, FragmentStore &store)
{
    FarmScan scan;
    const std::vector<WorkUnit> units = enumerateUnits(options);
    scan.unitsTotal = units.size();
    std::map<std::string, const WorkUnit *> by_hash;
    for (const WorkUnit &unit : units)
        by_hash.emplace(unit.hash, &unit);

    for (const StoreObject &object : store.list("")) {
        const std::string &name = object.name;
        if (!isJsonName(name))
            continue;
        const std::optional<std::string> bytes = store.get(name);
        if (!bytes)
            continue;
        if (obs::isHeartbeatFilename(name)) {
            // A torn or half-renamed heartbeat is simply skipped; the
            // next beat replaces it within one interval.
            const std::optional<obs::Heartbeat> hb =
                obs::parseHeartbeat(*bytes);
            if (!hb)
                continue;
            obs::WorkerObservation observed;
            observed.hb = *hb;
            observed.ageSeconds = object.ageSeconds;
            scan.workers.push_back(std::move(observed));
            continue;
        }
        // Fragment: apply the SAME strict validity predicate the
        // merge layer uses (schema, unit object, full result record,
        // name stem == claimed hash). A truncated-mid-record fragment
        // can still be valid JSON; counting it completed here while
        // --check/--merge reject it would wedge a resumed scheduler
        // on a unit no worker is ever re-dispatched for.
        FragmentData data;
        if (!parseFragmentBytes(*bytes, data))
            continue;
        const auto wanted = by_hash.find(data.hash);
        if (wanted == by_hash.end() ||
            name.substr(0, name.size() - 5) != data.hash) {
            continue;
        }
        CompletedUnit completed;
        completed.id = wanted->second->id;
        completed.hash = data.hash;
        completed.wallSeconds = data.timing.wallSeconds;
        scan.completed.push_back(std::move(completed));
    }
    return scan;
}

FarmScan
scanFarm(const SweepOptions &options, const std::string &fragments_dir)
{
    LocalDirStore store(fragments_dir);
    return scanFarm(options, store);
}

} // namespace tcsim::bench
