#include "bench/store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/json.h"
#include "obs/http.h"

namespace tcsim::bench
{

namespace fs = std::filesystem;

bool
isValidStoreName(std::string_view name)
{
    if (name.empty() || name.size() > 512)
        return false;
    unsigned slashes = 0;
    for (const char c : name) {
        if (c == '/') {
            ++slashes;
            continue;
        }
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok)
            return false;
    }
    if (slashes > 1)
        return false;
    // No empty segments, no dot-only segments (".." traversal).
    std::size_t start = 0;
    while (start <= name.size()) {
        const std::size_t slash = name.find('/', start);
        const std::size_t end =
            slash == std::string_view::npos ? name.size() : slash;
        const std::string_view segment = name.substr(start, end - start);
        if (segment.empty() ||
            segment.find_first_not_of('.') == std::string_view::npos)
            return false;
        if (slash == std::string_view::npos)
            break;
        start = slash + 1;
    }
    return true;
}

// ---------------------------------------------------------------------
// LocalDirStore
// ---------------------------------------------------------------------

std::string
LocalDirStore::pathFor(const std::string &name) const
{
    return dir_ + "/" + name;
}

bool
LocalDirStore::put(const std::string &name, std::string_view bytes,
                   bool overwrite)
{
    if (!isValidStoreName(name))
        return false;
    const std::string path = pathFor(name);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return false;
    if (!overwrite && fs::exists(path, ec))
        return true; // first-wins: the racing duplicate is dropped

    // Unique temp name per process and store, then an atomic rename:
    // concurrent writers race benignly and a writer killed mid-store
    // leaves only a .tmp file that is never read back.
    static std::atomic<std::uint64_t> counter{0};
    std::string tmp = path;
    tmp += ".tmp.";
    tmp += std::to_string(::getpid());
    tmp += '.';
    tmp += std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<std::string>
LocalDirStore::get(const std::string &name)
{
    if (!isValidStoreName(name))
        return std::nullopt;
    std::ifstream in(pathFor(name), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return std::move(bytes).str();
}

bool
LocalDirStore::exists(const std::string &name)
{
    if (!isValidStoreName(name))
        return false;
    std::error_code ec;
    return fs::is_regular_file(pathFor(name), ec);
}

bool
LocalDirStore::remove(const std::string &name)
{
    if (!isValidStoreName(name))
        return false;
    std::error_code ec;
    fs::remove(pathFor(name), ec);
    return !fs::exists(pathFor(name), ec);
}

std::vector<StoreObject>
LocalDirStore::list(const std::string &prefix)
{
    std::vector<StoreObject> objects;
    // The prefix's directory part picks the scan root; in-flight .tmp
    // files are invisible (their names never validate).
    const std::size_t slash = prefix.find('/');
    const std::string subdir =
        slash == std::string::npos ? "" : prefix.substr(0, slash);
    const std::string root = subdir.empty() ? dir_ : dir_ + "/" + subdir;

    const auto now_fs = fs::file_time_type::clock::now();
    std::error_code ec;
    for (fs::directory_iterator it(root, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        std::string name = it->path().filename().string();
        if (!subdir.empty())
            name = subdir + "/" + name;
        if (!isValidStoreName(name) || name.rfind(prefix, 0) != 0)
            continue;
        StoreObject object;
        object.name = std::move(name);
        object.size = static_cast<std::uint64_t>(it->file_size(ec));
        const auto mtime = fs::last_write_time(it->path(), ec);
        if (!ec) {
            object.ageSeconds = std::max(
                0.0,
                std::chrono::duration<double>(now_fs - mtime).count());
        }
        objects.push_back(std::move(object));
    }
    std::sort(objects.begin(), objects.end(),
              [](const StoreObject &a, const StoreObject &b) {
                  return a.name < b.name;
              });
    return objects;
}

// ---------------------------------------------------------------------
// HttpStore
// ---------------------------------------------------------------------

std::string
HttpStore::describe() const
{
    return "http://" + host_ + ":" + std::to_string(port_);
}

bool
HttpStore::put(const std::string &name, std::string_view bytes,
               bool overwrite)
{
    if (!isValidStoreName(name))
        return false;
    std::string path = "/obj/" + name;
    if (overwrite)
        path += "?overwrite=1";
    const auto result =
        obs::httpRequest(host_, port_, "PUT", path, token_, bytes);
    return result && (result->status == 200 || result->status == 201);
}

std::optional<std::string>
HttpStore::get(const std::string &name)
{
    if (!isValidStoreName(name))
        return std::nullopt;
    const auto result =
        obs::httpRequest(host_, port_, "GET", "/obj/" + name, token_);
    if (!result || result->status != 200)
        return std::nullopt;
    return result->body;
}

bool
HttpStore::exists(const std::string &name)
{
    if (!isValidStoreName(name))
        return false;
    const auto result =
        obs::httpRequest(host_, port_, "HEAD", "/obj/" + name, token_);
    return result && result->status == 200;
}

bool
HttpStore::remove(const std::string &name)
{
    if (!isValidStoreName(name))
        return false;
    const auto result =
        obs::httpRequest(host_, port_, "DELETE", "/obj/" + name, token_);
    return result && (result->status == 200 || result->status == 404);
}

std::vector<StoreObject>
HttpStore::list(const std::string &prefix)
{
    std::vector<StoreObject> objects;
    const auto result = obs::httpRequest(
        host_, port_, "GET", "/manifest?prefix=" + prefix, token_);
    if (!result || result->status != 200)
        return objects;
    const std::optional<json::Value> doc = json::parse(result->body);
    if (!doc || !doc->isObject() ||
        doc->getString("schema") != "tcsim-store-manifest-v1") {
        return objects;
    }
    const json::Value *rows = doc->find("objects");
    if (rows == nullptr || !rows->isArray())
        return objects;
    for (const json::Value &row : rows->items()) {
        if (!row.isObject())
            continue;
        StoreObject object;
        object.name = row.getString("name");
        object.size = row.getUint64("size");
        object.ageSeconds = row.getDouble("age_seconds");
        if (isValidStoreName(object.name))
            objects.push_back(std::move(object));
    }
    std::sort(objects.begin(), objects.end(),
              [](const StoreObject &a, const StoreObject &b) {
                  return a.name < b.name;
              });
    return objects;
}

// ---------------------------------------------------------------------
// openStore
// ---------------------------------------------------------------------

std::string
farmToken()
{
    for (const char *var : {"TCSIM_FARM_TOKEN", "TCSIM_STATUS_TOKEN"}) {
        const char *value = std::getenv(var);
        if (value != nullptr && value[0] != '\0')
            return value;
    }
    return "";
}

std::unique_ptr<FragmentStore>
openStore(const std::string &spec)
{
    if (spec.rfind("http://", 0) == 0) {
        std::string host;
        std::uint16_t port = 0;
        if (!obs::parseHttpUrl(spec, host, port)) {
            std::fprintf(stderr,
                         "store: malformed spec '%s' (want "
                         "http://host:port)\n",
                         spec.c_str());
            return nullptr;
        }
        const std::string token = farmToken();
        if (token.empty()) {
            std::fprintf(stderr,
                         "store: %s needs a bearer token (set "
                         "TCSIM_FARM_TOKEN or TCSIM_STATUS_TOKEN)\n",
                         spec.c_str());
            return nullptr;
        }
        return std::make_unique<HttpStore>(host, port, token);
    }
    if (spec.empty()) {
        std::fprintf(stderr, "store: empty spec\n");
        return nullptr;
    }
    return std::make_unique<LocalDirStore>(spec);
}

} // namespace tcsim::bench
