/**
 * @file
 * Shared printer for the fetch-width breakdown exhibits (Figures 4
 * and 6): dynamic frequency of correct-path fetch sizes 0..16,
 * decomposed by termination reason.
 */

#ifndef TCSIM_BENCH_FETCH_HISTOGRAM_H
#define TCSIM_BENCH_FETCH_HISTOGRAM_H

#include <cstdio>

#include "sim/accounting.h"

namespace tcsim::bench
{

inline void
printFetchHistogram(const sim::SimResult &result)
{
    using sim::Accounting;
    using sim::FetchReason;

    std::uint64_t total = 0;
    for (unsigned r = 0;
         r < static_cast<unsigned>(FetchReason::NumReasons); ++r) {
        for (unsigned w = 0; w <= Accounting::kMaxFetchWidth; ++w)
            total += result.fetchHist[r][w];
    }
    if (total == 0) {
        std::printf("(no useful fetches)\n");
        return;
    }

    std::printf("%5s", "size");
    for (unsigned r = 0;
         r < static_cast<unsigned>(FetchReason::NumReasons); ++r) {
        std::printf("%15s",
                    sim::fetchReasonName(static_cast<FetchReason>(r)));
    }
    std::printf("%10s\n", "sum");

    double weighted = 0;
    for (unsigned w = 0; w <= Accounting::kMaxFetchWidth; ++w) {
        std::printf("%5u", w);
        std::uint64_t row = 0;
        for (unsigned r = 0;
             r < static_cast<unsigned>(FetchReason::NumReasons); ++r) {
            const double frac =
                static_cast<double>(result.fetchHist[r][w]) / total;
            std::printf("%15.4f", frac);
            row += result.fetchHist[r][w];
        }
        std::printf("%10.4f\n", static_cast<double>(row) / total);
        weighted += static_cast<double>(w) * row / total;
    }
    std::printf("Ave fetch size %.2f\n", weighted);
}

} // namespace tcsim::bench

#endif // TCSIM_BENCH_FETCH_HISTOGRAM_H
