/**
 * @file
 * Ablation: trace-cache size vs packing regulation. The paper's
 * section 5 argues that redundancy-regulation techniques become
 * crucial when the fetch mechanism is smaller than the modeled 128 KB:
 * unregulated packing's replication should hurt most at small sizes,
 * with cost regulation closing the gap.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation",
                "Trace-cache size vs packing regulation (paper section "
                "5's small-cache claim)");

    const std::vector<std::string> benchmarks = {"gcc", "go", "tex",
                                                 "vortex"};

    struct Variant
    {
        const char *label;
        sim::ProcessorConfig config;
    };
    const std::vector<Variant> variants = {
        {"promotion-only", sim::promotionConfig(64)},
        {"promo+unregulated",
         sim::promotionPackingConfig(64,
                                     trace::PackingPolicy::Unregulated)},
        {"promo+cost-reg",
         sim::promotionPackingConfig(
             64, trace::PackingPolicy::CostRegulated)},
    };

    const std::vector<std::uint32_t> sizes = {256, 512, 1024, 2048};
    std::vector<sim::ProcessorConfig> configs;
    for (const std::uint32_t segments : sizes) {
        for (const Variant &variant : variants) {
            sim::ProcessorConfig config = variant.config;
            config.traceCache.numSegments = segments;
            config.name += "+segs" + std::to_string(segments);
            configs.push_back(config);
        }
    }
    const auto matrix = sweepMatrix(benchmarks, configs);

    std::printf("%-10s", "segments");
    for (const Variant &v : variants)
        std::printf("%20s", v.label);
    std::printf("\n");

    for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::printf("%-10u", sizes[s]);
        for (std::size_t v = 0; v < variants.size(); ++v) {
            double rate = 0;
            for (const sim::SimResult &r :
                 matrix[s * variants.size() + v])
                rate += r.effectiveFetchRate;
            std::printf("%20.2f", rate / benchmarks.size());
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n(The paper predicts the unregulated column loses its "
                "edge at small sizes.)\n");
    return 0;
}
