/**
 * @file
 * Shared harness for the experiment binaries: one runner per
 * (benchmark, configuration) pair plus fixed-width table printing in
 * the paper's row/series shapes.
 *
 * Every binary accepts the TCSIM_INSTS environment variable to scale
 * the per-benchmark instruction budget (default: each profile's
 * defaultMaxInsts, 2M).
 */

#ifndef TCSIM_BENCH_HARNESS_H
#define TCSIM_BENCH_HARNESS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace tcsim::bench
{

/** @return the instruction budget for @p profile (env-overridable). */
std::uint64_t instBudget(const workload::BenchmarkProfile &profile);

/** Generate and cache the program for @p name (per-process cache). */
const workload::Program &programFor(const std::string &name);

/** Run one (benchmark, config) pair to its budget. */
sim::SimResult runOne(const std::string &benchmark,
                      const sim::ProcessorConfig &config);

/** Short column label for a benchmark (paper-style). */
std::string shortName(const std::string &benchmark);

/** All benchmark names in suite order. */
std::vector<std::string> allBenchmarks();

/** Print a table header: first column @p row_label then benchmarks. */
void printBenchmarkHeader(const std::string &row_label);

/** Print one row of per-benchmark values plus the arithmetic mean. */
void printBenchmarkRow(const std::string &label,
                       const std::vector<double> &values, int precision = 2);

/**
 * Run @p config across the whole suite, printing progress to stderr,
 * and return one value per benchmark via @p metric.
 */
std::vector<double>
sweepSuite(const sim::ProcessorConfig &config,
           const std::function<double(const sim::SimResult &)> &metric);

/** Banner identifying which paper exhibit a binary regenerates. */
void printBanner(const std::string &exhibit, const std::string &what);

} // namespace tcsim::bench

#endif // TCSIM_BENCH_HARNESS_H
