/**
 * @file
 * Shared harness for the experiment binaries: a parallel experiment
 * engine fanning independent (benchmark, configuration) simulations
 * across a shared thread pool, plus fixed-width table printing in the
 * paper's row/series shapes.
 *
 * Environment variables understood by every binary:
 *  - TCSIM_INSTS: per-benchmark instruction budget (default: each
 *    profile's defaultMaxInsts, 2M).
 *  - TCSIM_JOBS: worker threads for the experiment fan-out (default:
 *    hardware_concurrency). TCSIM_JOBS=1 reproduces the sequential
 *    engine; results are bit-identical at any job count because each
 *    simulation owns all of its mutable state.
 *  - TCSIM_RESULTS_DIR / TCSIM_RESULTS_JSON: when set, the binary
 *    writes a machine-readable JSON summary of every run (per-run
 *    IPC/fetch-rate, wall-clock, and simulated MIPS — retired
 *    instructions per wall microsecond) at exit — to
 *    "<dir>/<exhibit>.json" or the explicit path respectively.
 *    `run_benches.sh --long` sets TCSIM_INSTS=1000000 for
 *    statistically meaningful sweeps.
 *  - TCSIM_PROFILE: when set, every simulation attaches an
 *    obs::SelfProfiler; the per-phase host-time breakdown and the
 *    sim-MIPS timeline are embedded in each run's JSON record (under
 *    "profile") when a results file is being written.
 *  - TCSIM_VERIFY_WINDOW_INDEX: when set, the simulator runs the
 *    original O(window) reference scans beside every indexed lookup
 *    (store-order violations, load forwarding/disambiguation,
 *    promoted-fault checkpoints) and asserts agreement per event.
 */

#ifndef TCSIM_BENCH_HARNESS_H
#define TCSIM_BENCH_HARNESS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace tcsim::bench
{

/** @return the instruction budget for @p profile (env-overridable). */
std::uint64_t instBudget(const workload::BenchmarkProfile &profile);

/**
 * Generate and cache the program for @p name (per-process cache).
 * Thread-safe: concurrent callers generate each benchmark exactly once
 * and share the immutable cached Program. When TCSIM_CACHE_DIR is set,
 * the serialized image is additionally memoized on disk through the
 * content-addressed ArtifactCache, so later processes skip generation.
 */
const workload::Program &programFor(const std::string &name);

/**
 * @return the content key a benchmark's generated program image is
 * cached under: generator version + full profile fingerprint, so any
 * change to either regenerates instead of reusing a stale image.
 */
std::string programArtifactKey(const workload::BenchmarkProfile &profile);

/** One independent simulation job for the experiment engine. */
struct RunRequest
{
    std::string benchmark;
    sim::ProcessorConfig config;
    /** Instruction budget override; 0 = instBudget(profile). */
    std::uint64_t maxInsts = 0;
};

/**
 * Run every request, fanning out across worker threads, and return the
 * results in request order (deterministic regardless of job count).
 *
 * @param jobs 0 = the shared pool (TCSIM_JOBS workers); otherwise a
 *        private pool of exactly @p jobs threads (used by tests to pin
 *        the parallelism level).
 */
std::vector<sim::SimResult> runAll(const std::vector<RunRequest> &requests,
                                   unsigned jobs = 0);

/**
 * Run @p configs x @p benchmarks in one parallel fan-out.
 * @return results indexed [config][benchmark].
 */
std::vector<std::vector<sim::SimResult>>
sweepMatrix(const std::vector<std::string> &benchmarks,
            const std::vector<sim::ProcessorConfig> &configs);

/** Whole-suite convenience: results indexed [config][suite order]. */
std::vector<std::vector<sim::SimResult>>
sweepSuiteConfigs(const std::vector<sim::ProcessorConfig> &configs);

/** Extract one metric per result. */
std::vector<double>
metricsOf(const std::vector<sim::SimResult> &results,
          const std::function<double(const sim::SimResult &)> &metric);

/** Run one (benchmark, config) pair to its budget (recorded + timed). */
sim::SimResult runOne(const std::string &benchmark,
                      const sim::ProcessorConfig &config);

/** Short column label for a benchmark (paper-style). */
std::string shortName(const std::string &benchmark);

/** All benchmark names in suite order. */
std::vector<std::string> allBenchmarks();

/** Print a table header: first column @p row_label then benchmarks. */
void printBenchmarkHeader(const std::string &row_label);

/** Print one row of per-benchmark values plus the arithmetic mean. */
void printBenchmarkRow(const std::string &label,
                       const std::vector<double> &values, int precision = 2);

/**
 * Run @p config across the whole suite (in parallel on the shared
 * pool) and return one value per benchmark via @p metric.
 */
std::vector<double>
sweepSuite(const sim::ProcessorConfig &config,
           const std::function<double(const sim::SimResult &)> &metric);

/** Banner identifying which paper exhibit a binary regenerates. */
void printBanner(const std::string &exhibit, const std::string &what);

} // namespace tcsim::bench

#endif // TCSIM_BENCH_HARNESS_H
