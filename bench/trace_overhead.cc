/**
 * @file
 * BM_TraceOverhead: asserts that *disabled* trace points are free.
 *
 * Two builds of the same synthetic fetch-loop kernel run back to back:
 * one plain, one carrying four TCSIM_TPOINT sites with a null Tracer
 * (the macro's disabled path: a single predictable never-taken branch
 * per site). The contract in DESIGN.md is that instrumented components
 * cost < 1% when tracing is off; this binary measures the ratio with
 * min-of-R timing and exits non-zero if the contract is violated.
 *
 * Not registered with ctest: timing assertions are too flaky for the
 * tier-1 suite. CI runs it in the perf-smoke step instead.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.h"

namespace
{

using tcsim::obs::Tracer;

/** Launder a pointer so the compiler cannot prove it null. */
template <class T>
T *
opaque(T *pointer)
{
    asm volatile("" : "+r"(pointer));
    return pointer;
}

/** Keep @p value alive without storing it. */
void
escape(std::uint64_t value)
{
    asm volatile("" : : "r"(value) : "memory");
}

/**
 * A synthetic per-cycle simulator step: an LCG walk probing a small
 * direct-mapped tag array kProbes times with a bias counter update,
 * roughly the amount of work between two adjacent trace points in the
 * real fetch loop (a trace-cache lookup touches tag compares, LRU
 * state, and prediction bits before the next tpoint site).
 */
constexpr unsigned kTableSize = 1024;
constexpr unsigned kProbes = 96;

std::uint64_t
kernelPlain(std::uint64_t iters, std::uint64_t seed, std::uint64_t *tags,
            std::uint32_t *bias)
{
    std::uint64_t state = seed, hits = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        bool promoted = false;
        unsigned last_set = 0;
        for (unsigned p = 0; p < kProbes; ++p) {
            state = state * 6364136223846793005ULL +
                    1442695040888963407ULL;
            const std::uint64_t pc = (state >> 17) & 0xffffffu;
            const unsigned set = pc % kTableSize;
            last_set = set;
            if (tags[set] == pc >> 10) {
                ++hits;
            } else {
                tags[set] = pc >> 10;
            }
            bias[set] += static_cast<std::uint32_t>(state & 1);
            if (bias[set] > 64) {
                bias[set] = 0;
                promoted = true;
            }
        }
        if (promoted)
            hits += last_set & 1;
    }
    return hits;
}

std::uint64_t
kernelTraced(std::uint64_t iters, std::uint64_t seed, std::uint64_t *tags,
             std::uint32_t *bias, Tracer *tracer)
{
    std::uint64_t state = seed, hits = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        bool promoted = false;
        unsigned last_set = 0;
        for (unsigned p = 0; p < kProbes; ++p) {
            state = state * 6364136223846793005ULL +
                    1442695040888963407ULL;
            const std::uint64_t pc = (state >> 17) & 0xffffffu;
            const unsigned set = pc % kTableSize;
            last_set = set;
            if (tags[set] == pc >> 10) {
                ++hits;
            } else {
                tags[set] = pc >> 10;
            }
            bias[set] += static_cast<std::uint32_t>(state & 1);
            if (bias[set] > 64) {
                bias[set] = 0;
                promoted = true;
            }
        }
        TCSIM_TPOINT(tracer, TC, "lookup", "hits=%llu",
                     static_cast<unsigned long long>(hits));
        TCSIM_TPOINT(tracer, Fetch, "step", "i=%llu",
                     static_cast<unsigned long long>(i));
        TCSIM_TPOINT(tracer, Bpred, "resolve", "set=%u", last_set);
        if (promoted) {
            hits += last_set & 1;
            TCSIM_TPOINT(tracer, Promote, "promote", "set=%u", last_set);
        }
    }
    return hits;
}

double
secondsOf(std::uint64_t (*plain)(std::uint64_t, std::uint64_t,
                                 std::uint64_t *, std::uint32_t *),
          std::uint64_t iters, std::uint64_t *tags, std::uint32_t *bias)
{
    const auto start = std::chrono::steady_clock::now();
    escape(plain(iters, 12345, tags, bias));
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

double
secondsOfTraced(std::uint64_t iters, std::uint64_t *tags,
                std::uint32_t *bias, Tracer *tracer)
{
    const auto start = std::chrono::steady_clock::now();
    escape(kernelTraced(iters, 12345, tags, bias, tracer));
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    // --iters and --reps let CI trade runtime for stability.
    std::uint64_t iters = 1'000'000;
    unsigned reps = 9;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--iters" && i + 1 < argc)
            iters = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--reps" && i + 1 < argc)
            reps = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    }

    static std::uint64_t tags[kTableSize];
    static std::uint32_t bias[kTableSize];
    Tracer *tracer = opaque(static_cast<Tracer *>(nullptr));

    // Warm up both code paths, then interleave min-of-R measurements so
    // frequency drift hits both kernels equally.
    escape(kernelPlain(iters / 10, 1, tags, bias));
    escape(kernelTraced(iters / 10, 1, tags, bias, tracer));

    double plain_min = 1e30, traced_min = 1e30;
    for (unsigned r = 0; r < reps; ++r) {
        plain_min =
            std::min(plain_min, secondsOf(kernelPlain, iters, tags, bias));
        traced_min = std::min(traced_min,
                              secondsOfTraced(iters, tags, bias, tracer));
    }

    const double overhead = 100.0 * (traced_min - plain_min) / plain_min;
    std::printf("BM_TraceOverhead: %" PRIu64
                " iters, min of %u reps\n"
                "  plain   %.4f s  (%.2f ns/iter)\n"
                "  traced  %.4f s  (%.2f ns/iter, 4 disabled tpoints)\n"
                "  overhead %+.3f%%  (contract: < 1%%)\n",
                iters, reps, plain_min, 1e9 * plain_min / iters, traced_min,
                1e9 * traced_min / iters, overhead);
    if (overhead >= 1.0) {
        std::fprintf(stderr,
                     "FAIL: disabled trace points cost %.3f%% (>= 1%%)\n",
                     overhead);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
