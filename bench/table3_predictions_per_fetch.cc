/**
 * @file
 * Paper Table 3: the number of dynamic branch predictions required
 * each fetch cycle (0-or-1 / 2 / 3), averaged over all benchmarks,
 * for the baseline and for promotion at threshold 64.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Table 3", "Predictions required each fetch cycle");

    const auto results = sweepSuiteConfigs(
        {sim::baselineConfig(), sim::promotionConfig(64)});

    const auto row = [&](const std::vector<sim::SimResult> &sweep,
                         const char *label) {
        double c01 = 0, c2 = 0, c3 = 0;
        for (const sim::SimResult &r : sweep) {
            c01 += r.fetchesNeeding01;
            c2 += r.fetchesNeeding2;
            c3 += r.fetchesNeeding3;
        }
        const double n = static_cast<double>(sweep.size());
        std::printf("%-18s %14.0f%% %14.0f%% %14.0f%%\n", label,
                    100 * c01 / n, 100 * c2 / n, 100 * c3 / n);
        std::fflush(stdout);
    };

    std::printf("%-18s %15s %15s %15s\n", "Configuration",
                "0 or 1 preds", "2 preds", "3 preds");
    row(results[0], "baseline");
    row(results[1], "threshold = 64");
    return 0;
}
