/**
 * @file
 * Paper Table 1: the benchmark suite. Prints each synthetic
 * benchmark's static/dynamic characteristics in place of the paper's
 * instruction counts and input sets.
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/thread_pool.h"
#include "workload/characterize.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Table 1", "Benchmarks");
    std::printf("%-14s %10s %12s %8s %8s %8s %9s\n", "Benchmark",
                "static", "simulated", "condBr%", "blkSize", "biased%",
                "longrun%");
    const std::vector<std::string> names = allBenchmarks();
    std::vector<workload::WorkloadStats> stats(names.size());
    parallelFor(names.size(), [&](std::size_t i) {
        const workload::Program &program = programFor(names[i]);
        const std::uint64_t budget =
            instBudget(workload::findProfile(names[i]));
        stats[i] = workload::characterize(program, budget);
    });
    for (std::size_t i = 0; i < names.size(); ++i) {
        const workload::WorkloadStats &ws = stats[i];
        std::printf("%-14s %10zu %12llu %8.2f %8.2f %8.1f %9.1f\n",
                    names[i].c_str(), programFor(names[i]).codeSize(),
                    static_cast<unsigned long long>(ws.instCount),
                    100.0 * ws.condBranches / ws.instCount,
                    ws.avgFillBlockSize,
                    100.0 * ws.fracDynStronglyBiased,
                    100.0 * ws.fracDynLongRun);
    }
    return 0;
}
