/**
 * @file
 * Ablation: partial matching and inactive issue. The paper's baseline
 * adopts both from Friendly et al. [MICRO-30 1997], who report ~15%
 * combined benefit; this sweep removes each in turn.
 */

#include <cstdio>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation",
                "Partial matching / inactive issue (baseline fill)");

    const std::vector<std::string> benchmarks = {"gcc", "compress",
                                                 "go", "tex"};

    const auto row = [&](const char *label, bool partial, bool inactive) {
        sim::ProcessorConfig config = sim::baselineConfig();
        config.partialMatching = partial;
        config.inactiveIssue = inactive;
        double rate = 0, ipc = 0;
        for (const std::string &bench : benchmarks) {
            std::fprintf(stderr, "  running %-14s %s...\n", bench.c_str(),
                         label);
            const sim::SimResult r = runOne(bench, config);
            rate += r.effectiveFetchRate;
            ipc += r.ipc;
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-34s %14.2f %10.3f\n", label, rate / n, ipc / n);
        std::fflush(stdout);
    };

    std::printf("%-34s %14s %10s\n", "configuration", "avgEffFetch",
                "avgIPC");
    row("partial match + inactive issue", true, true);
    row("partial match only", true, false);
    row("neither", false, false);
    return 0;
}
