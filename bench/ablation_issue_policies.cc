/**
 * @file
 * Ablation: partial matching and inactive issue. The paper's baseline
 * adopts both from Friendly et al. [MICRO-30 1997], who report ~15%
 * combined benefit; this sweep removes each in turn.
 */

#include <cstdio>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation",
                "Partial matching / inactive issue (baseline fill)");

    const std::vector<std::string> benchmarks = {"gcc", "compress",
                                                 "go", "tex"};

    struct Policy
    {
        const char *label;
        bool partial;
        bool inactive;
    };
    const std::vector<Policy> policies = {
        {"partial match + inactive issue", true, true},
        {"partial match only", true, false},
        {"neither", false, false},
    };
    std::vector<sim::ProcessorConfig> configs;
    for (const Policy &policy : policies) {
        sim::ProcessorConfig config = sim::baselineConfig();
        config.partialMatching = policy.partial;
        config.inactiveIssue = policy.inactive;
        config.name += std::string("+pm") +
                       (policy.partial ? "1" : "0") + "ii" +
                       (policy.inactive ? "1" : "0");
        configs.push_back(config);
    }
    const auto matrix = sweepMatrix(benchmarks, configs);

    std::printf("%-34s %14s %10s\n", "configuration", "avgEffFetch",
                "avgIPC");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        double rate = 0, ipc = 0;
        for (const sim::SimResult &r : matrix[p]) {
            rate += r.effectiveFetchRate;
            ipc += r.ipc;
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-34s %14.2f %10.3f\n", policies[p].label, rate / n,
                    ipc / n);
    }
    std::fflush(stdout);
    return 0;
}
