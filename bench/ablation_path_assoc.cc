/**
 * @file
 * Ablation: trace-cache path associativity. The paper's configurations
 * store at most one segment per start address (section 3, citing
 * Patel et al. [CSE-TR-335-97] for the alternative); this sweep
 * enables multi-path storage with predictor-driven selection.
 */

#include <cstdio>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation", "Trace-cache path associativity");

    const std::vector<std::string> benchmarks = {"gcc", "go", "li",
                                                 "gnuchess"};

    const auto row = [&](const char *label, bool path_assoc,
                         bool packing) {
        sim::ProcessorConfig config =
            packing ? sim::promotionPackingConfig(64)
                    : sim::baselineConfig();
        config.traceCache.pathAssociativity = path_assoc;
        double rate = 0, hit = 0;
        for (const std::string &bench : benchmarks) {
            std::fprintf(stderr, "  running %-14s %s...\n", bench.c_str(),
                         label);
            const sim::SimResult r = runOne(bench, config);
            rate += r.effectiveFetchRate;
            hit += r.tcLookups
                       ? static_cast<double>(r.tcHits) / r.tcLookups
                       : 0.0;
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-34s %14.2f %12.1f%%\n", label, rate / n,
                    100 * hit / n);
        std::fflush(stdout);
    };

    std::printf("%-34s %14s %13s\n", "configuration", "avgEffFetch",
                "avgTcHit");
    row("baseline, no path assoc", false, false);
    row("baseline, path assoc", true, false);
    row("promo+pack, no path assoc", false, true);
    row("promo+pack, path assoc", true, true);
    return 0;
}
