/**
 * @file
 * Ablation: trace-cache path associativity. The paper's configurations
 * store at most one segment per start address (section 3, citing
 * Patel et al. [CSE-TR-335-97] for the alternative); this sweep
 * enables multi-path storage with predictor-driven selection.
 */

#include <cstdio>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation", "Trace-cache path associativity");

    const std::vector<std::string> benchmarks = {"gcc", "go", "li",
                                                 "gnuchess"};

    struct Variant
    {
        const char *label;
        bool pathAssoc;
        bool packing;
    };
    const std::vector<Variant> variants = {
        {"baseline, no path assoc", false, false},
        {"baseline, path assoc", true, false},
        {"promo+pack, no path assoc", false, true},
        {"promo+pack, path assoc", true, true},
    };
    std::vector<sim::ProcessorConfig> configs;
    for (const Variant &v : variants) {
        sim::ProcessorConfig config =
            v.packing ? sim::promotionPackingConfig(64)
                      : sim::baselineConfig();
        config.traceCache.pathAssociativity = v.pathAssoc;
        config.name += v.pathAssoc ? "+pathassoc" : "+nopath";
        configs.push_back(config);
    }
    const auto matrix = sweepMatrix(benchmarks, configs);

    std::printf("%-34s %14s %13s\n", "configuration", "avgEffFetch",
                "avgTcHit");
    for (std::size_t v = 0; v < variants.size(); ++v) {
        double rate = 0, hit = 0;
        for (const sim::SimResult &r : matrix[v]) {
            rate += r.effectiveFetchRate;
            hit += r.tcLookups
                       ? static_cast<double>(r.tcHits) / r.tcLookups
                       : 0.0;
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-34s %14.2f %12.1f%%\n", variants[v].label,
                    rate / n, 100 * hit / n);
    }
    std::fflush(stdout);
    return 0;
}
