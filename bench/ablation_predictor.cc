/**
 * @file
 * Ablation: multiple-branch-predictor organization. The paper pairs
 * promotion with a restructured split predictor (64K/16K/8K tables,
 * 24 KB) in place of the baseline 16K x 7-counter tree (32 KB). This
 * sweep runs both organizations under both fill policies.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation",
                "Tree vs split multiple branch predictor");

    const std::vector<std::string> benchmarks = {"gcc", "compress",
                                                 "m88ksim", "go"};

    sim::ProcessorConfig base_split = sim::baselineConfig();
    base_split.mbpKind = sim::MbpKind::Split;
    base_split.name += "+split";
    sim::ProcessorConfig promo_tree = sim::promotionConfig(64);
    promo_tree.mbpKind = sim::MbpKind::Tree;
    promo_tree.name += "+tree";

    const std::vector<const char *> labels = {
        "baseline + tree", "baseline + split", "promotion + tree",
        "promotion + split"};
    const auto matrix =
        sweepMatrix(benchmarks, {sim::baselineConfig(), base_split,
                                 promo_tree, sim::promotionConfig(64)});

    std::printf("%-24s %16s %16s\n", "configuration", "avgEffFetch",
                "avgMispredRate");
    for (std::size_t v = 0; v < labels.size(); ++v) {
        double rate = 0, mispred = 0;
        for (const sim::SimResult &r : matrix[v]) {
            rate += r.effectiveFetchRate;
            mispred += r.condMispredictRate;
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-24s %16.2f %15.2f%%\n", labels[v], rate / n,
                    100 * mispred / n);
    }
    std::fflush(stdout);
    return 0;
}
