/**
 * @file
 * Ablation: multiple-branch-predictor organization. The paper pairs
 * promotion with a restructured split predictor (64K/16K/8K tables,
 * 24 KB) in place of the baseline 16K x 7-counter tree (32 KB). This
 * sweep runs both organizations under both fill policies.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Ablation",
                "Tree vs split multiple branch predictor");

    const std::vector<std::string> benchmarks = {"gcc", "compress",
                                                 "m88ksim", "go"};

    const auto row = [&](const char *label, sim::ProcessorConfig config) {
        double rate = 0, mispred = 0;
        for (const std::string &bench : benchmarks) {
            std::fprintf(stderr, "  running %-14s %s...\n", bench.c_str(),
                         label);
            const sim::SimResult r = runOne(bench, config);
            rate += r.effectiveFetchRate;
            mispred += r.condMispredictRate;
        }
        const double n = static_cast<double>(benchmarks.size());
        std::printf("%-24s %16.2f %15.2f%%\n", label, rate / n,
                    100 * mispred / n);
        std::fflush(stdout);
    };

    std::printf("%-24s %16s %16s\n", "configuration", "avgEffFetch",
                "avgMispredRate");

    sim::ProcessorConfig base_tree = sim::baselineConfig();
    row("baseline + tree", base_tree);

    sim::ProcessorConfig base_split = sim::baselineConfig();
    base_split.mbpKind = sim::MbpKind::Split;
    row("baseline + split", base_split);

    sim::ProcessorConfig promo_tree = sim::promotionConfig(64);
    promo_tree.mbpKind = sim::MbpKind::Tree;
    row("promotion + tree", promo_tree);

    row("promotion + split", sim::promotionConfig(64));
    return 0;
}
