/**
 * @file
 * Paper Figure 16: overall performance (IPC) given an ideal,
 * aggressive execution engine — all load/store dependencies
 * speculated correctly (perfect memory disambiguation) — for the
 * icache front end, the baseline trace cache, and promotion +
 * cost-regulated packing. The paper reports +11% for the techniques
 * over the enhanced baseline.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 16", "IPC with perfect memory disambiguation");

    const auto metric = [](const sim::SimResult &r) { return r.ipc; };
    const auto perfect = [](sim::ProcessorConfig config) {
        config.disambiguation = sim::Disambiguation::Perfect;
        config.name += "+perfect";
        return config;
    };

    const auto results = sweepSuiteConfigs(
        {perfect(sim::icacheConfig()), perfect(sim::baselineConfig()),
         perfect(sim::promotionPackingConfig(
             64, trace::PackingPolicy::CostRegulated))});
    const std::vector<double> icache = metricsOf(results[0], metric);
    const std::vector<double> base = metricsOf(results[1], metric);
    const std::vector<double> both = metricsOf(results[2], metric);

    printBenchmarkHeader("config");
    printBenchmarkRow("icache", icache);
    printBenchmarkRow("baseline", base);
    printBenchmarkRow("promotion,packing", both);
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (both[i] - base[i]) / base[i]);
    printBenchmarkRow("both vs baseline %", change, 1);
    return 0;
}
