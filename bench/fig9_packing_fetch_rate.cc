/**
 * @file
 * Paper Figure 9: effective fetch rates with and without trace
 * packing (no promotion), per benchmark, with the percent increase.
 */

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Figure 9",
                "Effective fetch rate, baseline vs trace packing");

    const auto metric = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };
    const auto results =
        sweepSuiteConfigs({sim::baselineConfig(), sim::packingConfig()});
    const std::vector<double> base = metricsOf(results[0], metric);
    const std::vector<double> pack = metricsOf(results[1], metric);

    printBenchmarkHeader("config");
    printBenchmarkRow("baseline", base);
    printBenchmarkRow("packing", pack);
    std::vector<double> change;
    for (std::size_t i = 0; i < base.size(); ++i)
        change.push_back(100.0 * (pack[i] - base[i]) / base[i]);
    printBenchmarkRow("increase %", change, 1);
    return 0;
}
