/**
 * @file
 * The sharded sweep engine: a deterministic work-unit protocol over
 * the (benchmark, configuration) matrix, process-parallel execution
 * via shards or explicit worklists, and a merge layer that combines
 * per-unit result fragments into one canonical results document.
 *
 * Determinism contract:
 *
 *  - enumerateUnits() yields the matrix in a stable order
 *    (configuration-major, matching sweepMatrix), with each unit
 *    carrying a content hash over everything its result depends on:
 *    unit identity, config fingerprint, generator version, profile
 *    fingerprint and warm-up length. Any change to those regenerates
 *    the hash, so stale fragments are detected instead of merged.
 *
 *  - The canonical results document ("tcsim-bench-results-v1") stores
 *    only deterministic integers plus doubles *derived from those
 *    integers at write time* by the single shared renderer. Both the
 *    single-process path (simulate everything, render) and the
 *    sharded path (render from integers parsed back out of
 *    fragments) call the same renderer on the same integers, so the
 *    two documents are byte-identical. Wall-clock and cache-stat
 *    timing lives in fragments and the separate timing document,
 *    never in the canonical document.
 *
 *  - Fragments ("tcsim-bench-fragment-v1") are one file per unit,
 *    named "<hash>.json" and written atomically (temp file + rename),
 *    so a killed worker loses at most its in-flight unit and a rerun
 *    only needs the units check() reports missing.
 */

#ifndef TCSIM_BENCH_SWEEP_H
#define TCSIM_BENCH_SWEEP_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bench/store.h"
#include "obs/farm.h"
#include "sim/accounting.h"
#include "sim/config.h"

namespace tcsim::bench
{

/**
 * SimPoint-style sampled execution parameters (the `sampled` config
 * dimension). When enabled, a unit is not simulated end to end:
 * a cached functional BBV profile of the benchmark is clustered
 * (deterministic seeded k-means, k swept in [1, maxK]) and only the
 * representative region of each cluster runs on the detailed model,
 * warm-started from cached architectural checkpoints plus predictor
 * state exported by one shared functional-warming pass over the
 * region's whole prefix; when the unit has a warmup budget, a
 * detailed warm-up pass over the `warmup` instructions preceding the
 * region additionally re-warms what a predictor checkpoint cannot
 * carry (cache tags, trace-cache contents) before the stats window
 * opens. Region stats combine as exact integers weighted by cluster
 * population.
 */
struct SampledParams
{
    bool enabled = false;
    /** BBV interval length in instructions; must divide the unit's
     * instruction budget so cluster weights stay exact rationals. */
    std::uint64_t interval = 0;
    /** k-means sweeps k in [1, maxK] with a BIC-style score. */
    std::uint32_t maxK = 0;
};

/** One (benchmark, configuration) cell of the sweep matrix. */
struct WorkUnit
{
    std::uint32_t index = 0; ///< position in enumeration order
    std::string benchmark;
    sim::ProcessorConfig config;
    std::uint64_t insts = 0;  ///< resolved measurement budget
    std::uint64_t warmup = 0; ///< predictor warm-up instructions
    SampledParams sampled;    ///< sampled-execution dimension
    /** Replay the front end from a cached tcsim-btrace-v1 artifact
     * instead of cycle-simulating (timing stats stay zero). */
    bool replay = false;
    /** "<benchmark>@<config>@<insts>", plus
     * "@sampled-i<interval>-k<maxK>-w<warmup>" when sampled, plus
     * "@replay" when replaying from a btrace artifact. */
    std::string id;
    std::string hash; ///< 16-hex content hash (see file comment)
};

/** Matrix parameters shared by workers and the merger. */
struct SweepOptions
{
    /** Benchmarks to sweep; empty = the whole suite. */
    std::vector<std::string> benchmarks;
    /** Configurations to sweep; empty = defaultSweepConfigs(). */
    std::vector<sim::ProcessorConfig> configs;
    /** Per-unit instruction budget; 0 = each profile's default. */
    std::uint64_t insts = 0;
    /** Predictor warm-up instructions per unit (0 = cold start). */
    std::uint64_t warmup = 0;
    /** Sampled-execution dimension applied to every unit. */
    SampledParams sampled;
    /**
     * Replay dimension applied to every unit: drive the front end
     * (fetch engine, fill unit, predictors) from a recorded
     * tcsim-btrace-v1 control-flow trace instead of cycle simulation.
     * The trace is config-independent and flows through the artifact
     * cache ("btrace" kind, see btraceArtifactKey), so one recording
     * pass serves every configuration in the matrix. Mutually
     * exclusive with warmup and sampled execution.
     */
    bool replay = false;
    /**
     * Per-unit instruction-budget overrides: selector -> insts, where
     * a selector is "benchmark" (every config of that benchmark) or
     * "benchmark@config" (one cell; beats the benchmark-wide form).
     * Overrides feed the unit id, so hashes — and therefore fragment
     * validity — track them automatically. Used to build deliberately
     * skewed matrices for scheduler stress tests.
     */
    std::vector<std::pair<std::string, std::uint64_t>> instsFor;
};

/** The paper's headline configurations, used when none are named. */
std::vector<sim::ProcessorConfig> defaultSweepConfigs();

/**
 * Resolve a configuration preset by name: "icache", "baseline",
 * "promotion-t<N>", "packing-<policy>", "promo-pack-<policy>" with
 * policy one of atomic / unregulated / n-regulated / cost-regulated.
 * @return empty optional for an unknown name.
 */
std::optional<sim::ProcessorConfig> configByName(const std::string &name);

/** Enumerate the matrix in stable order with content hashes. */
std::vector<WorkUnit> enumerateUnits(const SweepOptions &options);

/** FNV-1a over all unit hashes in order, rendered as 16-hex. */
std::string matrixHash(const std::vector<WorkUnit> &units);

/**
 * The deterministic integer payload of one simulated unit — exactly
 * the fields a fragment carries and the canonical renderer consumes.
 */
struct ResultIntegers
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t promotedFaults = 0;
    std::uint64_t indirectMispredicts = 0;
    std::uint64_t usefulFetches = 0;
    std::uint64_t fetchedInsts = 0;
    std::uint64_t resolutionTimeSum = 0;
    std::uint64_t resolutionTimeCount = 0;
    std::uint64_t fetchesNeedingPreds[4] = {};
    std::uint64_t cycleCat[static_cast<unsigned>(
        sim::CycleCategory::NumCategories)] = {};
    std::uint64_t fetchHist[static_cast<unsigned>(
        sim::FetchReason::NumReasons)]
                           [sim::Accounting::kMaxFetchWidth + 1] = {};
    std::uint64_t tcLookups = 0;
    std::uint64_t tcHits = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t promotedRetired = 0;
};

/** Extract the integer payload of @p result. */
ResultIntegers integersOf(const sim::SimResult &result);

/** Non-canonical per-unit timing, carried by fragments only. */
struct UnitTiming
{
    double wallSeconds = 0.0;
    /** Program image / predictor checkpoint cache hits this unit. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
};

/**
 * Simulate one unit: program image via the artifact cache, then —
 * when unit.warmup > 0 — a predictor-state checkpoint (generated
 * once, cached, and imported into a fresh processor) followed by the
 * measurement run. Cache hits substitute only for re-running
 * deterministic producers, so results are identical hit or miss.
 */
sim::SimResult executeUnit(const WorkUnit &unit);

/**
 * @return the content key a benchmark's BBV profile artifact is
 * cached under (config-independent: generator version + profile
 * fingerprint + budget + interval). Shared by the sweep engine and
 * the tcsim_simpoints CLI so both hit the same cache entry.
 */
std::string bbvArtifactKey(const std::string &benchmark,
                           std::uint64_t insts, std::uint64_t interval);

/**
 * @return the content key a benchmark's recorded btrace artifact is
 * cached under (config-independent: btrace format version + generator
 * version + profile fingerprint + budget — the oracle control-flow
 * stream does not depend on the processor configuration, so one
 * recording serves every config in a replay matrix).
 */
std::string btraceArtifactKey(const std::string &benchmark,
                              std::uint64_t insts);

/**
 * Simulate one unit — full or sampled — and return the canonical
 * integer payload. Full units delegate to executeUnit(). Sampled
 * units run the BBV -> k-means -> warm-started representative-region
 * pipeline (the intermediate artifacts flow through the artifact
 * cache: "bbv" profiles and "archckpt" architectural checkpoints are
 * configuration-independent and shared by every config in the
 * matrix; "warmstate" functional-warming checkpoints are per-config)
 * and combine region integers as sum(weight_num * stat).
 * Every stage is a deterministic pure function, so sampled results
 * keep the byte-identical merge guarantee.
 */
ResultIntegers executeUnitIntegers(const WorkUnit &unit);

/**
 * Run @p options' matrix both sampled and full, compare derived
 * stats, and render the `tcsim-sampling-error-v1` report (per-unit
 * and aggregate relative error for IPC / effective fetch rate /
 * mispredict rate, wall-clock for both paths, and the speedup).
 * options.sampled must be enabled. When @p all_within_out is
 * non-null it receives whether every unit passed the gate: IPC and
 * fetch-rate relative errors <= @p tolerance AND mispredict-rate
 * ABSOLUTE error <= @p mispredict_tolerance. The mispredict bound is
 * absolute (the rate is already a fraction) because per-region
 * predictor warm-up bias shifts the sampled rate by a few points
 * independent of the base rate, so relative error diverges exactly
 * when the full run predicts well.
 */
std::string samplingErrorReport(const SweepOptions &options,
                                double tolerance,
                                double mispredict_tolerance,
                                bool *all_within_out);

/** Render one fragment document (canonical integers + timing). */
std::string renderFragment(const WorkUnit &unit,
                           const ResultIntegers &integers,
                           const UnitTiming &timing);

/**
 * Render the canonical results document for the full matrix. @p
 * integers must parallel @p units. This is the ONLY producer of
 * "tcsim-bench-results-v1" bytes; byte-identity of the sharded and
 * single-process paths rests on both funneling through it.
 */
std::string renderResultsDoc(const std::vector<WorkUnit> &units,
                             const std::vector<ResultIntegers> &integers);

/**
 * Render the rolling partial document ("tcsim-bench-partial-v1") for
 * a matrix that is still filling in: the units of @p units whose
 * @p filled flag is set, in enumeration order. Each included record
 * is rendered by the same shared renderer as the canonical document,
 * so a partial row is byte-identical to the corresponding row of the
 * final document.
 */
std::string renderPartialDoc(const std::vector<WorkUnit> &units,
                             const std::vector<ResultIntegers> &integers,
                             const std::vector<bool> &filled);

/** @return "<dir>/<hash>.json", the fragment path for @p unit. */
std::string fragmentPath(const std::string &dir, const WorkUnit &unit);

/** Write @p unit's fragment atomically. @return false on I/O error. */
bool writeFragment(const std::string &dir, const WorkUnit &unit,
                   const ResultIntegers &integers,
                   const UnitTiming &timing);

/** Everything parsed out of one fragment document. */
struct FragmentData
{
    std::string id;
    std::string hash;
    ResultIntegers integers;
    UnitTiming timing; ///< zeros when the timing section is absent
};

/**
 * Strictly parse one fragment document: schema, unit identity and the
 * full canonical integer record must all be present and well-formed.
 * This is the scheduler's streaming-merge entry point — a fragment
 * rejected here is treated as never delivered (the unit stays
 * dispatchable), which is what makes a torn or corrupted upload safe.
 */
bool parseFragmentBytes(const std::string &bytes, FragmentData &out);

/** What the merge (or check) pass found in a fragments directory. */
struct MergeReport
{
    /** Unit ids present in the matrix but with no valid fragment. */
    std::vector<std::string> missing;
    /** Fragment files whose unit hash is not in the matrix. */
    std::vector<std::string> stale;
    /** Extra valid fragments for an already-filled unit. */
    std::vector<std::string> duplicates;
    /** Unreadable / unparseable / internally inconsistent files. */
    std::vector<std::string> corrupt;

    bool complete() const { return missing.empty() && corrupt.empty(); }
};

/**
 * Scan @p fragments_dir and assemble the canonical results document
 * for @p options' matrix. Worker heartbeat files ("heartbeat-*",
 * telemetry only) are ignored, so a monitored sweep merges to exactly
 * the same bytes as an unmonitored one.
 * @return the document when every unit was found (report still lists
 * stale/duplicate files); empty optional otherwise, with the holes in
 * @p report.
 */
std::optional<std::string> mergeFragments(const SweepOptions &options,
                                          const std::string &fragments_dir,
                                          MergeReport &report);

/**
 * Same merge over any FragmentStore backend. For a LocalDirStore this
 * is byte-for-byte the directory merge above (same scan order, same
 * report strings); for an HttpStore it merges what workers uploaded
 * to the shim without needing filesystem access to the backing dir.
 */
std::optional<std::string> mergeFragments(const SweepOptions &options,
                                          FragmentStore &store,
                                          MergeReport &report);

/** One completed unit as observed in a fragments directory. */
struct CompletedUnit
{
    std::string id;
    std::string hash;
    double wallSeconds = 0.0;
};

/** What one telemetry poll of a fragments directory found. */
struct FarmScan
{
    /** Parsed worker heartbeats with their file-mtime ages. */
    std::vector<obs::WorkerObservation> workers;
    /** Valid fragments whose hash is in @p options' matrix. */
    std::vector<CompletedUnit> completed;
    std::uint64_t unitsTotal = 0;
};

/**
 * Scan @p fragments_dir for the monitor: parse every heartbeat file
 * (measuring staleness from its mtime) and every fragment belonging
 * to @p options' matrix (unit id, hash, wall-clock from the timing
 * section). Read-only, tolerant of torn in-flight files — this runs
 * concurrently with live workers by design.
 */
FarmScan scanFarm(const SweepOptions &options,
                  const std::string &fragments_dir);

/** Same telemetry poll over any FragmentStore backend (heartbeat
 * staleness comes from the store's per-object age metadata). */
FarmScan scanFarm(const SweepOptions &options, FragmentStore &store);

} // namespace tcsim::bench

#endif // TCSIM_BENCH_SWEEP_H
