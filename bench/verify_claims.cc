/**
 * @file
 * Automated reproduction check: runs the paper's five configurations
 * across the whole suite and verifies the direction (and rough
 * magnitude) of every headline claim, printing one PASS/WEAK/FAIL
 * line per claim. Exit status is the number of failed claims, so this
 * doubles as a CI gate for the reproduction.
 *
 * Claims that need a larger instruction budget than the current run's
 * (claim 6: bias-table training) are re-measured at representative
 * scale through the sampled-execution pipeline instead of being
 * waved off as expected deviations: the verdict line is then labeled
 * "(sampled @4M)". The DEVIATION verdict remains for any future claim
 * with a documented, expected artifact that cannot be re-measured.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/harness.h"
#include "bench/sweep.h"

namespace
{

using namespace tcsim;
using namespace tcsim::bench;

double
mean(const std::vector<double> &values)
{
    return values.empty()
               ? 0.0
               : std::accumulate(values.begin(), values.end(), 0.0) /
                     values.size();
}

int failures = 0;
int deviations = 0;

void
claim(const char *text, bool pass, bool strong, double measured,
      const char *unit, const char *expected_deviation = nullptr)
{
    const char *verdict = pass ? (strong ? "PASS" : "WEAK") : "FAIL";
    if (!pass) {
        if (expected_deviation != nullptr) {
            verdict = "DEVIATION";
            ++deviations;
        } else {
            ++failures;
        }
    }
    std::printf("[%s] %-64s (measured %.2f%s)\n", verdict, text, measured,
                unit);
    if (!pass && expected_deviation != nullptr)
        std::printf("            expected deviation: %s\n",
                    expected_deviation);
    std::fflush(stdout);
}

} // namespace

int
main()
{
    printBanner("Verification",
                "Automated trend checks for every headline claim");

    struct Sweep
    {
        std::vector<double> effRate, ipc, mispredicts, faults, preds01;
        std::vector<double> branches;
    };
    const auto sweep = [](const std::vector<sim::SimResult> &results) {
        Sweep s;
        for (const sim::SimResult &r : results) {
            s.effRate.push_back(r.effectiveFetchRate);
            s.ipc.push_back(r.ipc);
            s.mispredicts.push_back(
                static_cast<double>(r.condMispredicts));
            s.faults.push_back(static_cast<double>(r.promotedFaults));
            s.preds01.push_back(r.fetchesNeeding01);
            s.branches.push_back(static_cast<double>(r.condBranches));
        }
        return s;
    };

    const auto results = sweepSuiteConfigs(
        {sim::icacheConfig(), sim::baselineConfig(),
         sim::promotionConfig(64), sim::packingConfig(),
         sim::promotionPackingConfig(64)});
    const Sweep icache = sweep(results[0]);
    const Sweep base = sweep(results[1]);
    const Sweep promo = sweep(results[2]);
    const Sweep pack = sweep(results[3]);
    const Sweep both = sweep(results[4]);

    // --- Claim 1: the trace cache transforms fetch bandwidth.
    {
        const double ratio = mean(base.effRate) / mean(icache.effRate);
        claim("baseline trace cache fetches >1.5x the icache front end "
              "(paper: 2.1x)",
              ratio > 1.5, ratio > 1.7, ratio, "x");
    }
    // --- Claim 2: promotion raises the fetch rate (paper +7%).
    {
        const double gain =
            100 * (mean(promo.effRate) / mean(base.effRate) - 1);
        claim("promotion raises the effective fetch rate (paper +7%)",
              gain > 2, gain > 4, gain, "%");
    }
    // --- Claim 3: packing raises the fetch rate (paper +7%).
    {
        const double gain =
            100 * (mean(pack.effRate) / mean(base.effRate) - 1);
        claim("packing raises the effective fetch rate (paper +7%)",
              gain > 2, gain > 4, gain, "%");
    }
    // --- Claim 4: both together beat either alone (paper +17%).
    {
        const double gain =
            100 * (mean(both.effRate) / mean(base.effRate) - 1);
        const bool beats_each =
            mean(both.effRate) > mean(promo.effRate) &&
            mean(both.effRate) > mean(pack.effRate);
        claim("promotion+packing beats either alone and gains >10% "
              "(paper +17%)",
              beats_each && gain > 10, beats_each && gain > 14, gain,
              "%");
    }
    // --- Claim 5: superadditivity on at least a few benchmarks.
    {
        int superadditive = 0;
        for (std::size_t i = 0; i < base.effRate.size(); ++i) {
            const double dp = promo.effRate[i] - base.effRate[i];
            const double dk = pack.effRate[i] - base.effRate[i];
            const double db = both.effRate[i] - base.effRate[i];
            superadditive += db > dp + dk;
        }
        claim("gains exceed the sum of parts on some benchmarks "
              "(paper: gcc, chess, plot, ss)",
              superadditive >= 2, superadditive >= 4,
              static_cast<double>(superadditive), " benchmarks");
    }
    // --- Claim 6: promotion removes prediction-bandwidth pressure.
    {
        const double shift = 100 * (mean(promo.preds01) -
                                    mean(base.preds01));
        // Promotion needs the bias table to observe 64 consecutive
        // same-direction executions per branch before it fires, so
        // this claim only converges at millions of instructions
        // (measured +25pp at 4M); short training budgets undershoot.
        std::uint64_t min_budget = ~std::uint64_t{0};
        for (const auto &profile : workload::benchmarkSuite())
            min_budget = std::min(min_budget, instBudget(profile));
        if (shift > 15 || min_budget >= 4'000'000) {
            claim("promotion shifts fetches into the 0-or-1-prediction "
                  "class (paper 54%->85%)",
                  shift > 15, shift > 22, shift, "pp");
        } else {
            // Representative verdict at training scale: re-measure
            // base vs promotion at 4M instructions through the
            // sampled-execution pipeline (SimPoint regions,
            // warm-started), which converges where the short detailed
            // budget above cannot. Artifacts flow through
            // TCSIM_CACHE_DIR when set, so repeat runs are cheap.
            std::printf("    claim 6 under-trained at %.1fpp; "
                        "re-measuring sampled @4M...\n", shift);
            std::fflush(stdout);
            SweepOptions options;
            options.configs = {sim::baselineConfig(),
                               sim::promotionConfig(64)};
            options.insts = 4'000'000;
            options.warmup = 10'000;
            options.sampled.enabled = true;
            options.sampled.interval = 100'000;
            options.sampled.maxK = 4;
            std::vector<double> base01, promo01;
            for (const WorkUnit &unit : enumerateUnits(options)) {
                const ResultIntegers n = executeUnitIntegers(unit);
                std::uint64_t total = 0;
                for (const std::uint64_t count : n.fetchesNeedingPreds)
                    total += count;
                const double frac01 =
                    total == 0 ? 0.0
                               : static_cast<double>(
                                     n.fetchesNeedingPreds[0] +
                                     n.fetchesNeedingPreds[1]) /
                                     static_cast<double>(total);
                (unit.config.name == "baseline" ? base01 : promo01)
                    .push_back(frac01);
            }
            const double sampled_shift =
                100 * (mean(promo01) - mean(base01));
            claim("promotion shifts fetches into the 0-or-1-prediction "
                  "class (sampled @4M; paper 54%->85%)",
                  sampled_shift > 15, sampled_shift > 22, sampled_shift,
                  "pp");
        }
    }
    // --- Claim 7: promoted-branch faults are rare at threshold 64.
    {
        const double fault_rate =
            100 * mean(promo.faults) / mean(promo.branches);
        claim("promoted-branch faults stay below 1% of branches at "
              "threshold 64",
              fault_rate < 1.0, fault_rate < 0.3, fault_rate, "%");
    }
    // --- Claim 8: the paper's own caveat — fetch gains do not
    //     translate proportionally into IPC on the realistic core.
    {
        const double fetch_gain =
            100 * (mean(both.effRate) / mean(base.effRate) - 1);
        const double ipc_gain =
            100 * (mean(both.ipc) / mean(base.ipc) - 1);
        claim("IPC gain is far below the fetch-rate gain on the "
              "realistic core (paper: +4% vs +17%)",
              ipc_gain < fetch_gain / 2 && ipc_gain > -5,
              ipc_gain < fetch_gain / 3 && ipc_gain > -3,
              ipc_gain, "% IPC");
    }

    std::printf("\n%d claim(s) failed, %d expected deviation(s)\n",
                failures, deviations);
    return failures;
}
