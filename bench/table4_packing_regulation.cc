/**
 * @file
 * Paper Table 4: the cost of trace packing's redundancy — percent
 * increase in instruction-cache miss cycles of each packing variant
 * (unregulated, cost-regulated, n=2, n=4; all with promotion at 64)
 * over the promotion-only configuration, for the six benchmarks that
 * suffer significant cache misses, plus the suite-average effective
 * fetch rate of each variant.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Table 4",
                "Percent increase in cache miss cycles of packing over "
                "promotion-only");

    const std::vector<std::string> miss_heavy = {
        "gcc", "go", "vortex", "ghostscript", "python", "tex"};

    const auto miss_cycles = [](const sim::SimResult &r) {
        return static_cast<double>(r.cycleCat[static_cast<unsigned>(
            sim::CycleCategory::CacheMisses)]);
    };

    struct Variant
    {
        const char *label;
        sim::ProcessorConfig config;
    };
    const std::vector<Variant> variants = {
        {"unreg", sim::promotionPackingConfig(
                      64, trace::PackingPolicy::Unregulated)},
        {"cost-reg", sim::promotionPackingConfig(
                         64, trace::PackingPolicy::CostRegulated)},
        {"n=2", sim::promotionPackingConfig(
                    64, trace::PackingPolicy::NRegulated, 2)},
        {"n=4", sim::promotionPackingConfig(
                    64, trace::PackingPolicy::NRegulated, 4)},
    };

    // One fan-out for promotion-only (reference) plus every variant on
    // the miss-heavy benchmarks.
    std::vector<sim::ProcessorConfig> configs = {sim::promotionConfig(64)};
    for (const Variant &v : variants)
        configs.push_back(v.config);
    const auto matrix = sweepMatrix(miss_heavy, configs);
    const std::vector<double> ref = metricsOf(matrix[0], miss_cycles);

    std::printf("%-14s", "Benchmark");
    for (const Variant &v : variants)
        std::printf("%10s", v.label);
    std::printf("\n");

    std::vector<std::vector<double>> increases(variants.size());
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const std::vector<double> cycles =
            metricsOf(matrix[vi + 1], miss_cycles);
        for (std::size_t bi = 0; bi < miss_heavy.size(); ++bi) {
            increases[vi].push_back(
                ref[bi] == 0
                    ? 0.0
                    : 100.0 * (cycles[bi] - ref[bi]) / ref[bi]);
        }
    }
    for (std::size_t bi = 0; bi < miss_heavy.size(); ++bi) {
        std::printf("%-14s", shortName(miss_heavy[bi]).c_str());
        for (std::size_t vi = 0; vi < variants.size(); ++vi)
            std::printf("%9.1f%%", increases[vi][bi]);
        std::printf("\n");
    }
    std::fflush(stdout);

    // Suite-average effective fetch rate per variant.
    const auto fetch_rate = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };
    std::vector<sim::ProcessorConfig> variant_configs;
    for (const Variant &v : variants)
        variant_configs.push_back(v.config);
    const auto suite = sweepSuiteConfigs(variant_configs);
    std::printf("%-14s", "AveEffFetch");
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const std::vector<double> rates = metricsOf(suite[vi], fetch_rate);
        std::printf("%10.2f",
                    std::accumulate(rates.begin(), rates.end(), 0.0) /
                        rates.size());
    }
    std::printf("\n");
    std::fflush(stdout);
    return 0;
}
