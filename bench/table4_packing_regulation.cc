/**
 * @file
 * Paper Table 4: the cost of trace packing's redundancy — percent
 * increase in instruction-cache miss cycles of each packing variant
 * (unregulated, cost-regulated, n=2, n=4; all with promotion at 64)
 * over the promotion-only configuration, for the six benchmarks that
 * suffer significant cache misses, plus the suite-average effective
 * fetch rate of each variant.
 */

#include <cstdio>
#include <numeric>

#include "bench/harness.h"

int
main()
{
    using namespace tcsim;
    using namespace tcsim::bench;

    printBanner("Table 4",
                "Percent increase in cache miss cycles of packing over "
                "promotion-only");

    const std::vector<std::string> miss_heavy = {
        "gcc", "go", "vortex", "ghostscript", "python", "tex"};

    const auto miss_cycles = [](const sim::SimResult &r) {
        return static_cast<double>(r.cycleCat[static_cast<unsigned>(
            sim::CycleCategory::CacheMisses)]);
    };

    struct Variant
    {
        const char *label;
        sim::ProcessorConfig config;
    };
    const std::vector<Variant> variants = {
        {"unreg", sim::promotionPackingConfig(
                      64, trace::PackingPolicy::Unregulated)},
        {"cost-reg", sim::promotionPackingConfig(
                         64, trace::PackingPolicy::CostRegulated)},
        {"n=2", sim::promotionPackingConfig(
                    64, trace::PackingPolicy::NRegulated, 2)},
        {"n=4", sim::promotionPackingConfig(
                    64, trace::PackingPolicy::NRegulated, 4)},
    };

    // Reference: promotion only.
    std::vector<double> ref;
    for (const std::string &bench : miss_heavy) {
        std::fprintf(stderr, "  running %-14s promotion-only...\n",
                     bench.c_str());
        ref.push_back(miss_cycles(runOne(bench, sim::promotionConfig(64))));
    }

    std::printf("%-14s", "Benchmark");
    for (const Variant &v : variants)
        std::printf("%10s", v.label);
    std::printf("\n");

    std::vector<std::vector<double>> increases(variants.size());
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        for (std::size_t bi = 0; bi < miss_heavy.size(); ++bi) {
            std::fprintf(stderr, "  running %-14s %s...\n",
                         miss_heavy[bi].c_str(),
                         variants[vi].config.name.c_str());
            const double cycles =
                miss_cycles(runOne(miss_heavy[bi], variants[vi].config));
            increases[vi].push_back(
                ref[bi] == 0 ? 0.0
                             : 100.0 * (cycles - ref[bi]) / ref[bi]);
        }
    }
    for (std::size_t bi = 0; bi < miss_heavy.size(); ++bi) {
        std::printf("%-14s", shortName(miss_heavy[bi]).c_str());
        for (std::size_t vi = 0; vi < variants.size(); ++vi)
            std::printf("%9.1f%%", increases[vi][bi]);
        std::printf("\n");
    }
    std::fflush(stdout);

    // Suite-average effective fetch rate per variant.
    const auto fetch_rate = [](const sim::SimResult &r) {
        return r.effectiveFetchRate;
    };
    std::printf("%-14s", "AveEffFetch");
    for (const Variant &v : variants) {
        const std::vector<double> rates = sweepSuite(v.config, fetch_rate);
        std::printf("%10.2f",
                    std::accumulate(rates.begin(), rates.end(), 0.0) /
                        rates.size());
        std::fflush(stdout);
    }
    std::printf("\n");
    return 0;
}
