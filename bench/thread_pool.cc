#include "bench/thread_pool.h"

#include <cstdlib>

namespace tcsim::bench
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    taskCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this] { return tasks_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskCv_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
            ++running_;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --running_;
            if (tasks_.empty() && running_ == 0)
                idleCv_.notify_all();
        }
    }
}

unsigned
defaultJobCount()
{
    if (const char *env = std::getenv("TCSIM_JOBS")) {
        const unsigned long requested = std::strtoul(env, nullptr, 10);
        if (requested >= 1)
            return static_cast<unsigned>(requested);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool &
sharedPool()
{
    static ThreadPool pool(defaultJobCount());
    return pool;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // Completion is tracked locally (not with ThreadPool::wait) so
    // concurrent parallelFor calls sharing the pool cannot observe
    // each other's tasks. Must not be called from a pool worker: the
    // caller blocks on a worker-executed task.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    ThreadPool &pool = sharedPool();
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
            fn(i);
            std::unique_lock<std::mutex> lock(done_mutex);
            if (++done == n)
                done_cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done == n; });
}

} // namespace tcsim::bench
