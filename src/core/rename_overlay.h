/**
 * @file
 * A copy-on-write overlay over a fixed-size rename table.
 *
 * Forking a shadow rename context used to copy the whole RAT (32
 * entries, ~768 bytes) even though an inactive-issue tail typically
 * touches only a handful of registers. The overlay makes the fork
 * O(1): it records a pointer to the base table and a dirty bitmask,
 * reads fall through to the base until a slot is written, and writes
 * land in a sparse local array. Nothing is copied until (and unless)
 * a slot is actually overwritten, and then only that slot.
 */

#ifndef TCSIM_CORE_RENAME_OVERLAY_H
#define TCSIM_CORE_RENAME_OVERLAY_H

#include <array>
#include <cstdint>

#include "common/log.h"

namespace tcsim::core
{

/** Copy-on-write view over a std::array<Entry, N> (N <= 64). */
template <typename Entry, unsigned N>
class RenameOverlay
{
    static_assert(N >= 1 && N <= 64,
                  "dirty mask is one 64-bit word");

  public:
    /** Start a fork of @p base. O(1): no entries are copied. */
    void
    fork(const std::array<Entry, N> &base)
    {
        base_ = &base;
        dirty_ = 0;
    }

    /** @return whether a fork is active. */
    bool active() const { return base_ != nullptr; }

    /** Drop the fork (the next use must fork() again). */
    void
    reset()
    {
        base_ = nullptr;
        dirty_ = 0;
    }

    /** Read slot @p index: local copy if written, else the base. */
    const Entry &
    get(unsigned index) const
    {
        TCSIM_ASSERT(base_ != nullptr && index < N);
        return (dirty_ >> index) & 1u ? local_[index]
                                      : (*base_)[index];
    }

    /** Write slot @p index in the overlay (the base is untouched). */
    void
    set(unsigned index, const Entry &entry)
    {
        TCSIM_ASSERT(base_ != nullptr && index < N);
        local_[index] = entry;
        dirty_ |= std::uint64_t{1} << index;
    }

  private:
    const std::array<Entry, N> *base_ = nullptr;
    std::uint64_t dirty_ = 0;
    std::array<Entry, N> local_; // only dirty slots meaningful
};

} // namespace tcsim::core

#endif // TCSIM_CORE_RENAME_OVERLAY_H
