/**
 * @file
 * DynInst: the record of one in-flight dynamic instruction, carried
 * from fetch through retire. The processor allocates these in a fixed
 * circular buffer; stale references (in ready queues or waiter lists)
 * are detected by sequence-number mismatch after reuse.
 */

#ifndef TCSIM_CORE_DYNINST_H
#define TCSIM_CORE_DYNINST_H

#include <cstdint>
#include <vector>

#include "bpred/hybrid.h"
#include "bpred/multi.h"
#include "common/types.h"
#include "fetch/fetch_types.h"
#include "isa/instruction.h"

namespace tcsim::core
{

/** One in-flight instruction. */
struct DynInst
{
    // ------------------------------------------------------------------
    // Identity.
    // ------------------------------------------------------------------
    InstSeqNum seq = kInvalidSeqNum;
    isa::Instruction inst;
    Addr pc = 0;
    std::uint64_t fetchGroup = 0;
    /** Seq of the first instruction of this fetch group. Groups
     * dispatch atomically, so [groupStartSeq, ...] is contiguous;
     * recovery uses it to find fetch-block boundaries without
     * scanning the window. */
    InstSeqNum groupStartSeq = kInvalidSeqNum;
    Cycle fetchCycle = 0;
    fetch::FetchSource source = fetch::FetchSource::ICache;

    // ------------------------------------------------------------------
    // Fetch-time speculation state.
    // ------------------------------------------------------------------
    /** False for inactive-issued trace-segment instructions. */
    bool active = true;
    /** Inactive instruction whose path lost; retires as a no-op. */
    bool discarded = false;
    bool promoted = false;
    bool promotedDir = false;
    bool endsBlock = false;
    /** Direction the machine fetched along (see FetchedInst). */
    bool followedDir = false;
    bool embeddedTaken = false;
    bool predictionValid = false;
    bool usedHybrid = false;
    bpred::MbpCtx mbpCtx;
    bpred::HybridCtx hybridCtx;
    Addr followedNextPc = 0;

    // ------------------------------------------------------------------
    // Oracle (statistics + perfect disambiguation) state.
    // ------------------------------------------------------------------
    bool onCorrectPath = false;
    std::uint64_t oracleIdx = 0;
    Addr oracleMemAddr = kInvalidAddr;

    // ------------------------------------------------------------------
    // Rename / execution state.
    // ------------------------------------------------------------------
    bool srcReady[2] = {true, true};
    RegVal srcVal[2] = {0, 0};
    InstSeqNum srcDep[2] = {kInvalidSeqNum, kInvalidSeqNum};
    /** Consumers waiting on this instruction's result. */
    std::vector<InstSeqNum> waiters;

    std::uint8_t rsTable = 0;
    bool inReadyQueue = false;
    bool fired = false;     ///< left its reservation station
    bool executed = false;  ///< result available
    Cycle readyCycle = 0;   ///< earliest schedule cycle
    Cycle completeCycle = 0;

    RegVal result = 0;
    Addr memAddr = kInvalidAddr;
    bool memAddrKnown = false;
    RegVal storeData = 0;

    // ------------------------------------------------------------------
    // Resolution state.
    // ------------------------------------------------------------------
    bool taken = false;
    Addr actualNextPc = 0;
    bool resolvedMispredict = false;
    bool resolvedFault = false;
    bool resolvedMisfetch = false;
    /** Set when a recovery originating here was actually applied
     * (recovery requests can lose arbitration to older ones whose
     * squash does not cover this instruction; the retire stage then
     * re-issues the request). */
    bool recoveryApplied = false;
    Cycle resolveCycle = 0;

    bool isLoad() const { return isa::isLoad(inst.op); }
    bool isStore() const { return isa::isStore(inst.op); }
    bool isCondBranch() const { return isa::isCondBranch(inst.op); }

    /**
     * Reinitialize a recycled storage slot for sequence number
     * @p new_seq, keeping the waiters allocation so slot reuse does
     * not reallocate on every dispatched instruction.
     */
    void
    reset(InstSeqNum new_seq)
    {
        std::vector<InstSeqNum> recycled = std::move(waiters);
        recycled.clear();
        *this = DynInst{};
        waiters = std::move(recycled);
        seq = new_seq;
    }
};

} // namespace tcsim::core

#endif // TCSIM_CORE_DYNINST_H
