/**
 * @file
 * Node tables (reservation stations) and functional-unit scheduling
 * bookkeeping for the HPS-style execution core: 16 universal
 * functional units, each fed by a 64-entry node table (paper
 * section 3). Instructions occupy an entry from dispatch until they
 * fire; each unit starts at most one operation per cycle.
 */

#ifndef TCSIM_CORE_NODE_TABLES_H
#define TCSIM_CORE_NODE_TABLES_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace tcsim::core
{

/** Configuration for the execution resources. */
struct NodeTableParams
{
    std::uint32_t numUnits = 16;
    std::uint32_t entriesPerUnit = 64;
};

/** Occupancy tracking plus per-unit ready queues. */
class NodeTables
{
  public:
    explicit NodeTables(const NodeTableParams &params = NodeTableParams{})
        : params_(params), occupancy_(params.numUnits, 0),
          readyQueues_(params.numUnits)
    {
        TCSIM_ASSERT(params_.numUnits >= 1);
        TCSIM_ASSERT(params_.entriesPerUnit >= 1);
    }

    std::uint32_t numUnits() const { return params_.numUnits; }

    /**
     * Reserve an entry in some unit's table (round-robin among units
     * with space).
     * @param[out] unit the chosen unit
     * @return false if every table is full
     */
    bool
    allocate(std::uint8_t &unit)
    {
        for (std::uint32_t i = 0; i < params_.numUnits; ++i) {
            const std::uint32_t u =
                (allocNext_ + i) % params_.numUnits;
            if (occupancy_[u] < params_.entriesPerUnit) {
                ++occupancy_[u];
                ++totalOccupied_;
                unit = static_cast<std::uint8_t>(u);
                allocNext_ = (u + 1) % params_.numUnits;
                return true;
            }
        }
        return false;
    }

    /** Release an entry (at fire or squash). */
    void
    release(std::uint8_t unit)
    {
        TCSIM_ASSERT(occupancy_[unit] > 0);
        TCSIM_ASSERT(totalOccupied_ > 0);
        --occupancy_[unit];
        --totalOccupied_;
    }

    /** Add a ready instruction to its unit's queue. */
    void
    markReady(std::uint8_t unit, InstSeqNum seq)
    {
        readyQueues_[unit].push_back(seq);
    }

    /** @return the ready queue for @p unit (oldest first). */
    std::deque<InstSeqNum> &readyQueue(std::uint8_t unit)
    {
        return readyQueues_[unit];
    }

    /** Total occupied entries across all tables (O(1): maintained
     * on allocate/release — dispatch checks this every cycle). */
    std::uint32_t totalOccupied() const { return totalOccupied_; }

    /** Drop all state (full squash helper for tests). */
    void
    clear()
    {
        for (auto &occ : occupancy_)
            occ = 0;
        for (auto &queue : readyQueues_)
            queue.clear();
        totalOccupied_ = 0;
    }

  private:
    NodeTableParams params_;
    std::vector<std::uint32_t> occupancy_;
    std::vector<std::deque<InstSeqNum>> readyQueues_;
    std::uint32_t allocNext_ = 0;
    std::uint32_t totalOccupied_ = 0;
};

} // namespace tcsim::core

#endif // TCSIM_CORE_NODE_TABLES_H
