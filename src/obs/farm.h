/**
 * @file
 * Farm-state aggregation for the sweep monitor: turn a set of worker
 * heartbeats plus the completed-unit record into one coherent view —
 * per-worker liveness, farm throughput (EWMA over poll-to-poll
 * completion rate), an ETA, and straggler flagging for in-flight
 * units whose wall-clock exceeds k× the running median of completed
 * units. Rendered as "tcsim-farm-status-v1" JSON.
 *
 * aggregateFarm() is a pure function of its inputs plus a small
 * carried EwmaState, so the math (stale detection, medians, EWMA) is
 * unit-testable without a live farm.
 */

#ifndef TCSIM_OBS_FARM_H
#define TCSIM_OBS_FARM_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/heartbeat.h"

namespace tcsim::obs
{

/** One worker's heartbeat as observed by the monitor: the parsed
 * document plus how long ago its file was last rewritten (measured on
 * the monitor's clock via the file mtime — worker monotonic
 * timestamps are process-local and not comparable across workers). */
struct WorkerObservation
{
    Heartbeat hb;
    double ageSeconds = 0.0;
};

/** Aggregation knobs. */
struct FarmParams
{
    /** A worker whose heartbeat file is older than this is stale
     * (crashed, wedged, or its writer thread starved). */
    double staleAfterSeconds = 15.0;
    /** An in-flight unit running longer than stragglerK × the median
     * completed-unit wall time is flagged a straggler. */
    double stragglerK = 4.0;
    /** EWMA smoothing factor for the farm completion rate. */
    double ewmaAlpha = 0.3;
    /** Units below this many completed samples use no straggler
     * flagging (the median is too noisy to trust). */
    std::size_t minCompletedForMedian = 3;
};

/** Carried between aggregateFarm() calls to smooth the rate. */
struct EwmaState
{
    bool valid = false;
    double ratePerSec = 0.0;      ///< smoothed units/second
    double lastSampleMono = 0.0;  ///< monitor clock, seconds
    std::uint64_t lastUnitsDone = 0;
};

/** Per-worker aggregated status. */
struct WorkerStatus
{
    Heartbeat hb;
    double ageSeconds = 0.0;
    bool stale = false;
    /** Wall-clock of the in-flight unit (0 when idle/done). */
    double currentUnitSeconds = 0.0;
    bool straggler = false;
};

/** The whole farm, one aggregation instant. */
struct FarmStatus
{
    std::uint64_t unitsTotal = 0;
    std::uint64_t unitsDone = 0;    ///< valid fragments on disk
    std::uint64_t unitsRunning = 0; ///< workers in phase "run"
    std::uint64_t workersStale = 0;
    double throughputUnitsPerSec = 0.0; ///< EWMA; 0 until measurable
    double etaSeconds = -1.0;           ///< -1 when rate unknown/zero
    double medianUnitSeconds = 0.0;     ///< 0 below the sample floor
    double stragglerThresholdSeconds = 0.0; ///< 0 when not flagging
    std::vector<WorkerStatus> workers;
    /** Unit ids currently flagged as stragglers. */
    std::vector<std::string> stragglers;
};

/** Exact median of @p values (mean of middle two when even); 0 when
 * empty. @p values is taken by value because it must be sorted. */
double medianOf(std::vector<double> values);

/**
 * Aggregate one monitor poll. @p completed_wall_seconds are the wall
 * times of every completed unit observed so far (from fragment
 * timing sections); @p units_done is the authoritative completed
 * count (valid fragments on disk); @p now_mono is the monitor's
 * monotonic clock in seconds. @p ewma (when non-null) carries the
 * smoothed completion rate across polls and is updated in place.
 */
FarmStatus aggregateFarm(const std::vector<WorkerObservation> &workers,
                         const std::vector<double> &completed_wall_seconds,
                         std::uint64_t units_total,
                         std::uint64_t units_done,
                         const FarmParams &params, EwmaState *ewma,
                         double now_mono);

/** Render @p status as a "tcsim-farm-status-v1" JSON document.
 * @p generated_unix is wall-clock (seconds since the epoch) purely
 * for human correlation — everything else is monotonic-derived. */
std::string renderFarmStatus(const FarmStatus &status,
                             std::int64_t generated_unix);

/** Render a compact terminal dashboard (multi-line, ANSI-free). */
std::string renderFarmDashboard(const FarmStatus &status);

} // namespace tcsim::obs

#endif // TCSIM_OBS_FARM_H
