#include "obs/status_server.h"

#include "obs/http.h"

namespace tcsim::obs
{

StatusServer::StatusServer() = default;

StatusServer::~StatusServer() { stop(); }

bool
StatusServer::start(const std::string &bind_addr, std::uint16_t port,
                    const std::string &token)
{
    if (running_.load())
        return false;
    if (token.empty()) {
        std::fprintf(stderr,
                     "status server: refusing to start without a "
                     "bearer token (set TCSIM_STATUS_TOKEN)\n");
        return false;
    }
    server_ = std::make_unique<HttpServer>();
    const bool ok = server_->start(
        bind_addr, port, token, [this](const HttpRequest &request) {
            HttpResponse resp;
            if (request.method != "GET") {
                resp.status = 405;
                resp.body = "{\"error\": \"method\"}\n";
                return resp;
            }
            if (request.path != "/" && request.path != "/status" &&
                request.path != "/status/") {
                resp.status = 404;
                resp.body = "{\"error\": \"not found\"}\n";
                return resp;
            }
            std::lock_guard<std::mutex> lock(snapshotMutex_);
            resp.body = snapshot_;
            return resp;
        });
    if (!ok) {
        server_.reset();
        return false;
    }
    port_ = server_->port();
    running_.store(true);
    return true;
}

void
StatusServer::publish(std::string json)
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    snapshot_ = std::move(json);
}

void
StatusServer::stop()
{
    if (!running_.load())
        return;
    server_->stop();
    server_.reset();
    running_.store(false);
    port_ = 0;
}

} // namespace tcsim::obs
