#include "obs/status_server.h"

#include <cctype>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tcsim::obs
{

namespace
{

void
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            send(fd, bytes.data() + sent, bytes.size() - sent,
                 MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

std::string
httpResponse(const char *status_line, const std::string &body)
{
    std::string out = "HTTP/1.0 ";
    out += status_line;
    out += "\r\nContent-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n";
    if (std::strncmp(status_line, "401", 3) == 0)
        out += "WWW-Authenticate: Bearer\r\n";
    out += "\r\n";
    out += body;
    return out;
}

/** Extract "METHOD PATH" plus the bearer token (if any) from a raw
 * request head. Tolerant of \r\n or \n line endings. */
struct RequestHead
{
    std::string method;
    std::string path;
    std::string bearer;
};

RequestHead
parseRequestHead(const std::string &raw)
{
    RequestHead head;
    std::size_t line_end = raw.find('\n');
    const std::string first =
        raw.substr(0, line_end == std::string::npos ? raw.size()
                                                    : line_end);
    {
        const std::size_t sp1 = first.find(' ');
        if (sp1 != std::string::npos) {
            head.method = first.substr(0, sp1);
            const std::size_t sp2 = first.find(' ', sp1 + 1);
            head.path = first.substr(
                sp1 + 1,
                sp2 == std::string::npos ? std::string::npos
                                         : sp2 - sp1 - 1);
        }
    }
    constexpr const char *kHeader = "authorization:";
    std::size_t pos = line_end;
    while (pos != std::string::npos && pos + 1 < raw.size()) {
        const std::size_t start = pos + 1;
        pos = raw.find('\n', start);
        std::string line = raw.substr(
            start,
            pos == std::string::npos ? std::string::npos : pos - start);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::string lower = line;
        for (char &c : lower)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (lower.rfind(kHeader, 0) != 0)
            continue;
        std::string value = line.substr(std::strlen(kHeader));
        while (!value.empty() && value.front() == ' ')
            value.erase(value.begin());
        constexpr const char *kBearer = "Bearer ";
        if (value.rfind(kBearer, 0) == 0)
            head.bearer = value.substr(std::strlen(kBearer));
        break;
    }
    return head;
}

} // namespace

bool
StatusServer::start(const std::string &bind_addr, std::uint16_t port,
                    const std::string &token)
{
    if (running_.load())
        return false;
    if (token.empty()) {
        std::fprintf(stderr,
                     "status server: refusing to start without a "
                     "bearer token (set TCSIM_STATUS_TOKEN)\n");
        return false;
    }
    listenFd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        std::perror("status server: socket");
        return false;
    }
    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
        std::fprintf(stderr, "status server: bad bind address '%s'\n",
                     bind_addr.c_str());
        close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(listenFd_, 16) != 0) {
        std::perror("status server: bind/listen");
        close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                    &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }
    token_ = token;
    stopping_.store(false);
    running_.store(true);
    thread_ = std::thread(&StatusServer::serveLoop, this);
    return true;
}

void
StatusServer::publish(std::string json)
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    snapshot_ = std::move(json);
}

void
StatusServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false);
    port_ = 0;
}

void
StatusServer::serveLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = poll(&pfd, 1, /*timeout_ms=*/200);
        if (ready <= 0)
            continue;
        const int fd = accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handleConnection(fd);
        close(fd);
    }
}

void
StatusServer::handleConnection(int fd)
{
    // One bounded read is enough: GET requests carry no body, and a
    // peer that dribbles headers slower than the timeout just gets
    // judged on what arrived.
    std::string raw;
    char buf[4096];
    for (int rounds = 0; rounds < 8; ++rounds) {
        pollfd pfd{fd, POLLIN, 0};
        if (poll(&pfd, 1, /*timeout_ms=*/500) <= 0)
            break;
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
        if (raw.find("\r\n\r\n") != std::string::npos ||
            raw.find("\n\n") != std::string::npos ||
            raw.size() > 64 * 1024) {
            break;
        }
    }
    const RequestHead head = parseRequestHead(raw);
    if (head.bearer != token_) {
        sendAll(fd, httpResponse("401 Unauthorized",
                                 "{\"error\": \"unauthorized\"}\n"));
        return;
    }
    if (head.method != "GET") {
        sendAll(fd, httpResponse("405 Method Not Allowed",
                                 "{\"error\": \"method\"}\n"));
        return;
    }
    if (head.path != "/" && head.path != "/status" &&
        head.path != "/status/") {
        sendAll(fd, httpResponse("404 Not Found",
                                 "{\"error\": \"not found\"}\n"));
        return;
    }
    std::string body;
    {
        std::lock_guard<std::mutex> lock(snapshotMutex_);
        body = snapshot_;
    }
    sendAll(fd, httpResponse("200 OK", body));
}

} // namespace tcsim::obs
