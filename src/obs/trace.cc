#include "obs/trace.h"

#include <cinttypes>
#include <cstring>

#include "common/log.h"

namespace tcsim::obs
{

namespace
{

constexpr const char *kCategoryNames[kNumCategories] = {
    "fetch", "tc", "fill", "promote", "bpred", "mem", "core",
};

/** Append @p s to @p out with JSON string escaping. */
void
appendJsonEscaped(std::string &out, const char *s)
{
    for (const char *p = s; *p != '\0'; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

/**
 * Base for file-writing sinks: owns the FILE* when opened from a path,
 * borrows it (no close) for stderr.
 */
class FileSink : public TraceSink
{
  public:
    ~FileSink() override
    {
        if (owned_ && file_ != nullptr)
            std::fclose(file_);
    }

    bool
    open(const std::string &path, std::string *error)
    {
        if (path.empty()) {
            file_ = stderr;
            owned_ = false;
            return true;
        }
        file_ = std::fopen(path.c_str(), "w");
        if (file_ == nullptr) {
            if (error != nullptr)
                *error = "cannot open trace output '" + path + "'";
            return false;
        }
        owned_ = true;
        return true;
    }

  protected:
    std::FILE *file_ = nullptr;
    bool owned_ = false;
};

class TextSink : public FileSink
{
  public:
    void
    write(const TraceRecord &rec) override
    {
        char line[640];
        const int n = std::snprintf(line, sizeof(line),
                                    "cyc %" PRIu64 " %s %s %s\n", rec.cycle,
                                    categoryName(rec.cat), rec.event,
                                    rec.detail);
        if (n > 0)
            logLineAtomic(file_, line,
                          n >= static_cast<int>(sizeof(line))
                              ? sizeof(line) - 1
                              : static_cast<std::size_t>(n));
    }

    void flush() override { std::fflush(file_); }
};

class JsonlSink : public FileSink
{
  public:
    void
    write(const TraceRecord &rec) override
    {
        line_.clear();
        line_ += "{\"t\":";
        line_ += std::to_string(rec.cycle);
        line_ += ",\"cat\":\"";
        line_ += categoryName(rec.cat);
        line_ += "\",\"ev\":\"";
        appendJsonEscaped(line_, rec.event);
        line_ += "\",\"detail\":\"";
        appendJsonEscaped(line_, rec.detail);
        line_ += "\"}\n";
        logLineAtomic(file_, line_.c_str(), line_.size());
    }

    void flush() override { std::fflush(file_); }

  private:
    std::string line_;
};

/**
 * Chrome trace_event JSON ("ts" carries the simulated cycle, viewers
 * display it as microseconds). The closing "]}" is written by flush();
 * the destructor flushes too, so an un-flushed file is still valid.
 */
class ChromeSink : public FileSink
{
  public:
    ~ChromeSink() override { finish(); }

    void
    write(const TraceRecord &rec) override
    {
        if (!headerWritten_) {
            std::fputs("{\"traceEvents\":[\n", file_);
            headerWritten_ = true;
        }
        line_.clear();
        if (anyRecord_)
            line_ += ",\n";
        line_ += "{\"name\":\"";
        appendJsonEscaped(line_, rec.event);
        line_ += "\",\"cat\":\"";
        line_ += categoryName(rec.cat);
        line_ += "\",\"ph\":\"i\",\"s\":\"g\",\"ts\":";
        line_ += std::to_string(rec.cycle);
        line_ += ",\"pid\":1,\"tid\":1,\"args\":{\"detail\":\"";
        appendJsonEscaped(line_, rec.detail);
        line_ += "\"}}";
        std::fwrite(line_.data(), 1, line_.size(), file_);
        anyRecord_ = true;
    }

    void
    flush() override
    {
        finish();
        std::fflush(file_);
    }

  private:
    void
    finish()
    {
        if (closed_ || file_ == nullptr)
            return;
        if (!headerWritten_)
            std::fputs("{\"traceEvents\":[\n", file_);
        std::fputs("\n]}\n", file_);
        closed_ = true;
    }

    std::string line_;
    bool headerWritten_ = false;
    bool anyRecord_ = false;
    bool closed_ = false;
};

} // namespace

const char *
categoryName(Category cat)
{
    const auto idx = static_cast<unsigned>(cat);
    TCSIM_ASSERT(idx < kNumCategories);
    return kCategoryNames[idx];
}

bool
categoryFromName(const std::string &name, Category &out)
{
    for (unsigned i = 0; i < kNumCategories; ++i) {
        if (name == kCategoryNames[i]) {
            out = static_cast<Category>(i);
            return true;
        }
    }
    return false;
}

bool
parseCategoryList(const std::string &list, std::uint32_t &mask,
                  std::string *error)
{
    mask = 0;
    if (list == "all") {
        mask = (1u << kNumCategories) - 1;
        return true;
    }
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(pos, comma - pos);
        if (!name.empty()) {
            Category cat;
            if (!categoryFromName(name, cat)) {
                if (error != nullptr) {
                    *error = "unknown trace category '" + name +
                             "' (valid: fetch,tc,fill,promote,bpred,mem,"
                             "core,all)";
                }
                return false;
            }
            mask |= 1u << static_cast<unsigned>(cat);
        }
        pos = comma + 1;
    }
    return true;
}

bool
sinkFormatFromName(const std::string &name, SinkFormat &out)
{
    if (name == "text") {
        out = SinkFormat::Text;
    } else if (name == "jsonl") {
        out = SinkFormat::Jsonl;
    } else if (name == "chrome") {
        out = SinkFormat::Chrome;
    } else {
        return false;
    }
    return true;
}

SinkFormat
inferSinkFormat(const std::string &path)
{
    const auto endsWith = [&path](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    if (endsWith(".jsonl"))
        return SinkFormat::Jsonl;
    if (endsWith(".json"))
        return SinkFormat::Chrome;
    return SinkFormat::Text;
}

std::unique_ptr<TraceSink>
makeSink(SinkFormat format, const std::string &path, std::string *error)
{
    std::unique_ptr<FileSink> sink;
    switch (format) {
      case SinkFormat::Text:
        sink = std::make_unique<TextSink>();
        break;
      case SinkFormat::Jsonl:
        sink = std::make_unique<JsonlSink>();
        break;
      case SinkFormat::Chrome:
        sink = std::make_unique<ChromeSink>();
        break;
    }
    if (!sink->open(path, error))
        return nullptr;
    return sink;
}

void
Tracer::flush()
{
    for (auto &sink : sinks_)
        sink->flush();
}

void
Tracer::emit(Category cat, const char *event, const char *fmt, ...)
{
    char detail[512];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(detail, sizeof(detail), fmt, args);
    va_end(args);
    if (n < 0)
        detail[0] = '\0';

    TraceRecord rec;
    rec.cycle = clock_ != nullptr ? *clock_ : 0;
    rec.cat = cat;
    rec.event = event;
    rec.detail = detail;
    ++emitted_;
    for (auto &sink : sinks_)
        sink->write(rec);
}

} // namespace tcsim::obs
