/**
 * @file
 * A minimal embedded HTTP status endpoint for the sweep monitor.
 *
 * Serves the latest published farm-status JSON snapshot over plain
 * HTTP/1.0 on a background thread. Every request must present the
 * bearer token the server was started with (`Authorization: Bearer
 * <token>`, sourced from TCSIM_STATUS_TOKEN by callers); requests
 * without it get 401 with no body content beyond an error object, so
 * an unauthenticated scraper learns nothing about the farm.
 *
 * Scope: one accept loop, one request per connection, GET only,
 * no TLS — this is a LAN/CI liveness endpoint, not a public API.
 * Built on the shared obs/http server (plain POSIX sockets; no
 * third-party dependency), which the object-store shim and the sweep
 * scheduler reuse.
 */

#ifndef TCSIM_OBS_STATUS_SERVER_H
#define TCSIM_OBS_STATUS_SERVER_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

namespace tcsim::obs
{

class HttpServer;

class StatusServer
{
  public:
    StatusServer();
    ~StatusServer();

    StatusServer(const StatusServer &) = delete;
    StatusServer &operator=(const StatusServer &) = delete;

    /**
     * Bind @p bind_addr:@p port (port 0 = ephemeral; see port()) and
     * start serving. @p token must be non-empty — an unauthenticated
     * status endpoint is refused by construction.
     * @return false (with a message on stderr) on bind failure or an
     * empty token.
     */
    bool start(const std::string &bind_addr, std::uint16_t port,
               const std::string &token);

    /** Replace the snapshot served to authorized GETs. */
    void publish(std::string json);

    /** The bound port (resolves port 0); 0 when not running. */
    std::uint16_t port() const { return port_; }

    bool running() const { return running_.load(); }

    /** Shut the accept loop down and join the thread (idempotent). */
    void stop();

  private:
    std::unique_ptr<HttpServer> server_;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};

    std::mutex snapshotMutex_;
    std::string snapshot_ = "{}\n";
};

} // namespace tcsim::obs

#endif // TCSIM_OBS_STATUS_SERVER_H
