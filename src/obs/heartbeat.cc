#include "obs/heartbeat.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "common/json.h"

namespace tcsim::obs
{

namespace
{

double
monoSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace

std::string
renderHeartbeat(const Heartbeat &hb)
{
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-heartbeat-v1\",\n";
    out += "  \"worker\": \"" + jsonEscape(hb.worker) + "\",\n";
    out += "  \"pid\": " + std::to_string(hb.pid) + ",\n";
    out += "  \"seq\": " + std::to_string(hb.seq) + ",\n";
    out += "  \"phase\": \"" + jsonEscape(hb.phase) + "\",\n";
    out += "  \"unit_id\": \"" + jsonEscape(hb.unitId) + "\",\n";
    out += "  \"unit_hash\": \"" + jsonEscape(hb.unitHash) + "\",\n";
    out += "  \"start_mono\": " + formatDouble(hb.startMono) + ",\n";
    out += "  \"now_mono\": " + formatDouble(hb.nowMono) + ",\n";
    out += "  \"unit_start_mono\": " + formatDouble(hb.unitStartMono) +
           ",\n";
    out += "  \"units_done\": " + std::to_string(hb.unitsDone) + ",\n";
    out += "  \"units_total\": " + std::to_string(hb.unitsTotal) + ",\n";
    out += "  \"retired_insts\": " + std::to_string(hb.retiredInsts) +
           ",\n";
    out += "  \"cache_hits\": " + std::to_string(hb.cacheHits) + ",\n";
    out += "  \"cache_misses\": " + std::to_string(hb.cacheMisses) + "\n";
    out += "}\n";
    return out;
}

std::optional<Heartbeat>
parseHeartbeat(const std::string &text)
{
    const std::optional<json::Value> doc = json::parse(text);
    if (!doc || !doc->isObject() ||
        doc->getString("schema") != "tcsim-heartbeat-v1") {
        return std::nullopt;
    }
    // Every field is required: a heartbeat is written whole or not at
    // all, so a missing member means the document is not ours.
    static const char *required[] = {
        "worker",        "pid",         "seq",
        "phase",         "unit_id",     "unit_hash",
        "start_mono",    "now_mono",    "unit_start_mono",
        "units_done",    "units_total", "retired_insts",
        "cache_hits",    "cache_misses",
    };
    for (const char *key : required) {
        if (doc->find(key) == nullptr)
            return std::nullopt;
    }
    Heartbeat hb;
    hb.worker = doc->getString("worker");
    hb.pid = doc->find("pid")->asInt64();
    hb.seq = doc->getUint64("seq");
    hb.phase = doc->getString("phase");
    hb.unitId = doc->getString("unit_id");
    hb.unitHash = doc->getString("unit_hash");
    hb.startMono = doc->getDouble("start_mono");
    hb.nowMono = doc->getDouble("now_mono");
    hb.unitStartMono = doc->getDouble("unit_start_mono");
    hb.unitsDone = doc->getUint64("units_done");
    hb.unitsTotal = doc->getUint64("units_total");
    hb.retiredInsts = doc->getUint64("retired_insts");
    hb.cacheHits = doc->getUint64("cache_hits");
    hb.cacheMisses = doc->getUint64("cache_misses");
    if (hb.worker.empty() || hb.phase.empty())
        return std::nullopt;
    return hb;
}

std::string
heartbeatPath(const std::string &dir, const std::string &worker)
{
    return dir + "/heartbeat-" + worker + ".json";
}

bool
isHeartbeatFilename(const std::string &filename)
{
    return filename.rfind("heartbeat-", 0) == 0;
}

bool
writeHeartbeat(const std::string &dir, const Heartbeat &hb)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return false;
    const std::string path = heartbeatPath(dir, hb.worker);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        const std::string doc = renderHeartbeat(hb);
        out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
        if (!out) {
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

HeartbeatEmitter::HeartbeatEmitter(std::string dir, std::string worker,
                                   double interval_seconds,
                                   std::uint64_t units_total)
    : dir_(std::move(dir)), interval_(interval_seconds)
{
    enabled_ = !dir_.empty() && interval_ > 0.0;
    if (enabled_)
        startThread(std::move(worker), units_total);
}

HeartbeatEmitter::HeartbeatEmitter(
    std::function<void(const Heartbeat &)> sink, std::string worker,
    double interval_seconds, std::uint64_t units_total)
    : sink_(std::move(sink)), interval_(interval_seconds)
{
    enabled_ = static_cast<bool>(sink_) && interval_ > 0.0;
    if (enabled_)
        startThread(std::move(worker), units_total);
}

void
HeartbeatEmitter::startThread(std::string worker,
                              std::uint64_t units_total)
{
    state_.worker = std::move(worker);
    state_.pid = static_cast<std::int64_t>(getpid());
    state_.startMono = monoSeconds();
    state_.unitsTotal = units_total;
    writeNow();
    thread_ = std::thread(&HeartbeatEmitter::threadMain, this);
}

HeartbeatEmitter::~HeartbeatEmitter()
{
    if (!enabled_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
HeartbeatEmitter::beginUnit(const std::string &unit_id,
                            const std::string &unit_hash)
{
    if (!enabled_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        state_.phase = "run";
        state_.unitId = unit_id;
        state_.unitHash = unit_hash;
        state_.unitStartMono = monoSeconds();
    }
    writeNow();
}

void
HeartbeatEmitter::completeUnit(std::uint64_t retired_insts,
                               std::uint64_t cache_hits,
                               std::uint64_t cache_misses)
{
    if (!enabled_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        state_.phase = "idle";
        state_.unitId.clear();
        state_.unitHash.clear();
        state_.unitStartMono = 0.0;
        state_.unitsDone += 1;
        state_.retiredInsts += retired_insts;
        state_.cacheHits += cache_hits;
        state_.cacheMisses += cache_misses;
    }
    writeNow();
}

void
HeartbeatEmitter::finish()
{
    if (!enabled_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        state_.phase = "done";
        state_.unitId.clear();
        state_.unitHash.clear();
        state_.unitStartMono = 0.0;
    }
    writeNow();
}

Heartbeat
HeartbeatEmitter::snapshotLocked()
{
    state_.seq += 1;
    state_.nowMono = monoSeconds();
    return state_;
}

void
HeartbeatEmitter::emit(const Heartbeat &hb)
{
    // Best-effort: a heartbeat that cannot be delivered must never
    // kill the worker — the simulation result is what matters.
    if (sink_)
        sink_(hb);
    else
        (void)writeHeartbeat(dir_, hb);
}

void
HeartbeatEmitter::writeNow()
{
    Heartbeat hb;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hb = snapshotLocked();
    }
    emit(hb);
}

void
HeartbeatEmitter::threadMain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        const auto interval = std::chrono::duration<double>(interval_);
        if (wake_.wait_for(lock, interval, [&] { return stop_; }))
            break;
        const Heartbeat hb = snapshotLocked();
        lock.unlock();
        emit(hb);
        lock.lock();
    }
}

} // namespace tcsim::obs
