#include "obs/bbv.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/json.h"
#include "common/log.h"

namespace tcsim::obs
{

namespace
{

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[128];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out.append(buf, static_cast<std::size_t>(n));
}

} // namespace

std::string
BbvDocument::toJson() const
{
    std::string out;
    out.reserve(1u << 16);
    out += "{\"schema\":\"tcsim-bbv-v1\",\"benchmark\":\"";
    out += benchmark;
    appendf(out, "\",\"interval_insts\":%" PRIu64 ",\"total_insts\":%" PRIu64
                 ",\"intervals\":[",
            intervalInsts, totalInsts);
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const BbvInterval &interval = intervals[i];
        appendf(out, "%s\n{\"end_insts\":%" PRIu64 ",\"blocks\":[",
                i == 0 ? "" : ",", interval.endInsts);
        for (std::size_t b = 0; b < interval.blocks.size(); ++b) {
            appendf(out, "%s[%" PRIu64 ",%" PRIu64 "]",
                    b == 0 ? "" : ",", interval.blocks[b].first,
                    interval.blocks[b].second);
        }
        out += "]}";
    }
    out += "\n]}\n";
    return out;
}

std::optional<BbvDocument>
BbvDocument::fromJson(const std::string &text)
{
    const auto root = json::parse(text);
    if (!root || !root->isObject() ||
        root->getString("schema") != "tcsim-bbv-v1") {
        return std::nullopt;
    }
    BbvDocument doc;
    doc.benchmark = root->getString("benchmark");
    doc.intervalInsts = root->getUint64("interval_insts");
    doc.totalInsts = root->getUint64("total_insts");
    const json::Value *intervals = root->find("intervals");
    if (doc.intervalInsts == 0 || intervals == nullptr ||
        !intervals->isArray()) {
        return std::nullopt;
    }
    for (const json::Value &item : intervals->items()) {
        if (!item.isObject())
            return std::nullopt;
        BbvInterval interval;
        interval.endInsts = item.getUint64("end_insts");
        const json::Value *blocks = item.find("blocks");
        if (blocks == nullptr || !blocks->isArray())
            return std::nullopt;
        for (const json::Value &pair : blocks->items()) {
            if (!pair.isArray() || pair.items().size() != 2 ||
                !pair.items()[0].isNumber() ||
                !pair.items()[1].isNumber()) {
                return std::nullopt;
            }
            interval.blocks.emplace_back(pair.items()[0].asUint64(),
                                         pair.items()[1].asUint64());
        }
        doc.intervals.push_back(std::move(interval));
    }
    return doc;
}

BbvRecorder::BbvRecorder(std::uint64_t interval_insts)
    : intervalInsts_(interval_insts)
{
    TCSIM_ASSERT(interval_insts > 0, "BBV interval must be positive");
}

void
BbvRecorder::boundary(std::uint64_t end_insts)
{
    BbvInterval interval;
    interval.endInsts = end_insts;
    interval.blocks.assign(counts_.begin(), counts_.end());
    std::sort(interval.blocks.begin(), interval.blocks.end());
    intervals_.push_back(std::move(interval));
    counts_.clear();
}

BbvDocument
BbvRecorder::finish(std::string benchmark, std::uint64_t total_insts)
{
    BbvDocument doc;
    doc.benchmark = std::move(benchmark);
    doc.intervalInsts = intervalInsts_;
    doc.totalInsts = total_insts;
    doc.intervals = std::move(intervals_);
    intervals_.clear();
    counts_.clear();
    return doc;
}

} // namespace tcsim::obs
