/**
 * @file
 * Worker heartbeats for the sweep farm ("tcsim-heartbeat-v1").
 *
 * Each sweep worker periodically writes one small JSON file into the
 * fragments directory describing what it is doing right now: its pid,
 * worker label, current work unit and phase, units done/total,
 * cumulative retired instructions, artifact-cache hits/misses and
 * host simulation throughput. The file is rewritten in place with the
 * same atomic temp-file + rename discipline fragments use, so readers
 * never observe a torn document and the merge layer (which skips
 * "heartbeat-*" files) stays byte-identical with or without a monitor
 * attached.
 *
 * Timestamps are MONOTONIC seconds (std::chrono::steady_clock) local
 * to the writing process: differences of two timestamps from the same
 * heartbeat are meaningful durations, but timestamps from different
 * workers are not comparable. Cross-process liveness therefore keys
 * off the heartbeat file's mtime age, which the monitor measures on
 * its own clock.
 */

#ifndef TCSIM_OBS_HEARTBEAT_H
#define TCSIM_OBS_HEARTBEAT_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace tcsim::obs
{

/** One parsed (or to-be-written) heartbeat document. */
struct Heartbeat
{
    std::string worker;      ///< stable worker label ("shard0", ...)
    std::int64_t pid = 0;
    std::uint64_t seq = 0;   ///< increments every write
    /** Worker phase: "idle", "run" (executing a unit) or "done". */
    std::string phase = "idle";
    std::string unitId;      ///< current unit; empty when idle/done
    std::string unitHash;
    double startMono = 0.0;     ///< worker start, monotonic seconds
    double nowMono = 0.0;       ///< write time, monotonic seconds
    double unitStartMono = 0.0; ///< current unit start; 0 when idle
    std::uint64_t unitsDone = 0;
    std::uint64_t unitsTotal = 0;
    /** Cumulative retired instructions across completed units. */
    std::uint64_t retiredInsts = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
};

/** Render @p hb as a "tcsim-heartbeat-v1" JSON document. */
std::string renderHeartbeat(const Heartbeat &hb);

/** Parse a heartbeat document; empty optional when @p text is not a
 * complete, well-formed tcsim-heartbeat-v1 document (e.g. a torn or
 * truncated read). */
std::optional<Heartbeat> parseHeartbeat(const std::string &text);

/** @return "<dir>/heartbeat-<worker>.json". */
std::string heartbeatPath(const std::string &dir,
                          const std::string &worker);

/** @return true iff @p filename (no directory) names a heartbeat
 * file — the merge layer uses this to skip them. */
bool isHeartbeatFilename(const std::string &filename);

/**
 * Write @p hb atomically to heartbeatPath(dir, hb.worker).
 * @return false on I/O error.
 */
bool writeHeartbeat(const std::string &dir, const Heartbeat &hb);

/**
 * Background heartbeat writer for a sweep worker: rewrites the
 * worker's heartbeat file every @p interval_seconds, plus immediately
 * on every state transition (unit start/completion, finish). All
 * methods are no-ops when constructed disabled (empty dir or
 * non-positive interval), so call sites need no branching.
 */
class HeartbeatEmitter
{
  public:
    HeartbeatEmitter(std::string dir, std::string worker,
                     double interval_seconds, std::uint64_t units_total);

    /**
     * Deliver heartbeats through @p sink instead of a directory —
     * e.g. a PUT of the rendered document to the shared object store
     * under heartbeat naming. A null sink disables the emitter. The
     * sink runs on the emitter thread and must be best-effort: its
     * failures are its own to swallow.
     */
    HeartbeatEmitter(std::function<void(const Heartbeat &)> sink,
                     std::string worker, double interval_seconds,
                     std::uint64_t units_total);
    ~HeartbeatEmitter();

    HeartbeatEmitter(const HeartbeatEmitter &) = delete;
    HeartbeatEmitter &operator=(const HeartbeatEmitter &) = delete;

    bool enabled() const { return enabled_; }

    /** The worker is starting to execute @p unit_id. */
    void beginUnit(const std::string &unit_id,
                   const std::string &unit_hash);

    /** The current unit retired and its fragment landed. */
    void completeUnit(std::uint64_t retired_insts,
                      std::uint64_t cache_hits,
                      std::uint64_t cache_misses);

    /** All assigned units done; writes a final "done" heartbeat. */
    void finish();

  private:
    Heartbeat snapshotLocked();
    void emit(const Heartbeat &hb);
    void writeNow();
    void threadMain();
    void startThread(std::string worker, std::uint64_t units_total);

    const std::string dir_;
    const std::function<void(const Heartbeat &)> sink_;
    const double interval_;
    bool enabled_ = false;

    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
    Heartbeat state_;
    std::thread thread_;
};

} // namespace tcsim::obs

#endif // TCSIM_OBS_HEARTBEAT_H
