#include "obs/regress.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/json.h"

namespace tcsim::obs
{

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

double
relDeltaOf(double baseline, double current)
{
    if (baseline == 0.0)
        return current == 0.0 ? 0.0 : (current > 0.0 ? 1.0 : -1.0);
    return (current - baseline) / std::abs(baseline);
}

/** One result record, keyed fields only. */
struct UnitRecord
{
    std::string id;
    std::string benchmark;
    std::string config;
    double ipc = 0.0;
    double fetchRate = 0.0;
    double mispredictRate = 0.0;
};

/** Reconstruct the unit id the sweep engine would assign. */
std::string
recordId(const json::Value &record)
{
    std::string id = record.getString("benchmark") + "@" +
                     record.getString("config") + "@" +
                     std::to_string(record.getUint64("insts"));
    if (record.find("sampled_interval") != nullptr) {
        id += "@sampled-i" +
              std::to_string(record.getUint64("sampled_interval")) +
              "-k" + std::to_string(record.getUint64("sampled_max_k")) +
              "-w" + std::to_string(record.getUint64("warmup"));
    }
    return id;
}

bool
parseResultsDoc(const json::Value &doc, const char *which,
                std::vector<UnitRecord> &out, std::string *error)
{
    if (!doc.isObject() ||
        doc.getString("schema") != "tcsim-bench-results-v1") {
        if (error != nullptr)
            *error = std::string(which) +
                     ": not a tcsim-bench-results-v1 document";
        return false;
    }
    const json::Value *results = doc.find("results");
    if (results == nullptr || !results->isArray()) {
        if (error != nullptr)
            *error = std::string(which) + ": missing results array";
        return false;
    }
    for (const json::Value &record : results->items()) {
        if (!record.isObject() ||
            record.find("benchmark") == nullptr ||
            record.find("config") == nullptr ||
            record.find("ipc") == nullptr) {
            if (error != nullptr)
                *error = std::string(which) + ": malformed result record";
            return false;
        }
        UnitRecord unit;
        unit.id = recordId(record);
        unit.benchmark = record.getString("benchmark");
        unit.config = record.getString("config");
        unit.ipc = record.getDouble("ipc");
        unit.fetchRate = record.getDouble("effective_fetch_rate");
        unit.mispredictRate = record.getDouble("cond_mispredict_rate");
        out.push_back(std::move(unit));
    }
    return true;
}

/** id -> wall_seconds from a tcsim-bench-timing-v1 document. */
std::map<std::string, double>
parseTimingDoc(const json::Value *doc)
{
    std::map<std::string, double> walls;
    if (doc == nullptr || !doc->isObject() ||
        doc->getString("schema") != "tcsim-bench-timing-v1") {
        return walls;
    }
    const json::Value *units = doc->find("units");
    if (units == nullptr || !units->isArray())
        return walls;
    for (const json::Value &unit : units->items()) {
        if (!unit.isObject() || unit.find("id") == nullptr ||
            unit.find("wall_seconds") == nullptr) {
            continue;
        }
        // Last write wins; retried units legitimately appear twice.
        walls[unit.getString("id")] = unit.getDouble("wall_seconds");
    }
    return walls;
}

MetricDelta
makeMetric(const char *name, double baseline, double current,
           double threshold, bool lower_is_better)
{
    MetricDelta metric;
    metric.name = name;
    metric.baseline = baseline;
    metric.current = current;
    metric.relDelta = relDeltaOf(baseline, current);
    metric.regressed = lower_is_better
                           ? metric.relDelta > threshold
                           : metric.relDelta < -threshold;
    return metric;
}

void
appendMetric(std::string &out, const MetricDelta &metric,
             const char *indent)
{
    out += indent;
    out += "{\"name\": \"" + metric.name + "\", ";
    out += "\"baseline\": " + formatDouble(metric.baseline) + ", ";
    out += "\"current\": " + formatDouble(metric.current) + ", ";
    out += "\"rel_delta\": " + formatDouble(metric.relDelta) + ", ";
    out += std::string("\"regressed\": ") +
           (metric.regressed ? "true" : "false") + "}";
}

} // namespace

double
robustSigma(const std::vector<double> &deltas)
{
    if (deltas.size() < 2)
        return 0.0;
    std::vector<double> sorted = deltas;
    std::sort(sorted.begin(), sorted.end());
    const auto median_of = [](std::vector<double> &values) {
        const std::size_t mid = values.size() / 2;
        if (values.size() % 2 == 1)
            return values[mid];
        return 0.5 * (values[mid - 1] + values[mid]);
    };
    const double median = median_of(sorted);
    std::vector<double> deviations;
    deviations.reserve(sorted.size());
    for (const double value : sorted)
        deviations.push_back(std::abs(value - median));
    std::sort(deviations.begin(), deviations.end());
    // 1.4826 scales the MAD to the standard deviation of a normal
    // distribution.
    return 1.4826 * median_of(deviations);
}

std::optional<RegressionReport>
compareResults(const json::Value &baseline, const json::Value &current,
               const json::Value *baseline_timing,
               const json::Value *current_timing,
               const RegressOptions &options, std::string *error)
{
    std::vector<UnitRecord> base_units, cur_units;
    if (!parseResultsDoc(baseline, "baseline", base_units, error) ||
        !parseResultsDoc(current, "current", cur_units, error)) {
        return std::nullopt;
    }
    std::map<std::string, const UnitRecord *> base_by_id;
    for (const UnitRecord &unit : base_units)
        base_by_id.emplace(unit.id, &unit);

    const std::map<std::string, double> base_walls =
        parseTimingDoc(baseline_timing);
    const std::map<std::string, double> cur_walls =
        parseTimingDoc(current_timing);

    RegressionReport report;

    // First pass: match and compute wall deltas so the noise band is
    // learned from the full sample before any unit is judged.
    struct Matched
    {
        const UnitRecord *base;
        const UnitRecord *cur;
        std::optional<double> wallBase, wallCur;
    };
    std::vector<Matched> matched;
    std::vector<double> wall_deltas;
    for (const UnitRecord &cur : cur_units) {
        const auto it = base_by_id.find(cur.id);
        if (it == base_by_id.end()) {
            report.missingInBaseline.push_back(cur.id);
            continue;
        }
        Matched pair{it->second, &cur, std::nullopt, std::nullopt};
        const auto wb = base_walls.find(cur.id);
        const auto wc = cur_walls.find(cur.id);
        if (wb != base_walls.end() && wc != cur_walls.end() &&
            wb->second > 0.0) {
            pair.wallBase = wb->second;
            pair.wallCur = wc->second;
            wall_deltas.push_back(relDeltaOf(wb->second, wc->second));
        }
        matched.push_back(pair);
        base_by_id.erase(it);
    }
    for (const auto &[id, unit] : base_by_id)
        report.missingInCurrent.push_back(id);
    std::sort(report.missingInCurrent.begin(),
              report.missingInCurrent.end());

    report.wallNoiseSigma = robustSigma(wall_deltas);
    report.wallBand = std::max(options.wallThreshold,
                               options.noiseK * report.wallNoiseSigma);

    for (const Matched &pair : matched) {
        UnitComparison unit;
        unit.id = pair.cur->id;
        unit.benchmark = pair.cur->benchmark;
        unit.config = pair.cur->config;
        unit.metrics.push_back(makeMetric("ipc", pair.base->ipc,
                                          pair.cur->ipc,
                                          options.relThreshold,
                                          /*lower_is_better=*/false));
        unit.metrics.push_back(
            makeMetric("effective_fetch_rate", pair.base->fetchRate,
                       pair.cur->fetchRate, options.relThreshold,
                       /*lower_is_better=*/false));
        unit.metrics.push_back(
            makeMetric("cond_mispredict_rate",
                       pair.base->mispredictRate,
                       pair.cur->mispredictRate, options.relThreshold,
                       /*lower_is_better=*/true));
        if (pair.wallBase && pair.wallCur) {
            unit.wall = makeMetric("wall_seconds", *pair.wallBase,
                                   *pair.wallCur, report.wallBand,
                                   /*lower_is_better=*/true);
        }
        for (const MetricDelta &metric : unit.metrics)
            unit.regressed = unit.regressed || metric.regressed;
        if (unit.wall)
            unit.regressed = unit.regressed || unit.wall->regressed;
        report.regressed = report.regressed || unit.regressed;
        report.units.push_back(std::move(unit));
    }
    report.regressed =
        report.regressed || !report.missingInCurrent.empty();
    return report;
}

std::string
renderRegressionReport(const RegressionReport &report,
                       const RegressOptions &options)
{
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-regression-v1\",\n";
    out += "  \"rel_threshold\": " + formatDouble(options.relThreshold) +
           ",\n";
    out += "  \"wall_threshold\": " +
           formatDouble(options.wallThreshold) + ",\n";
    out += "  \"noise_k\": " + formatDouble(options.noiseK) + ",\n";
    out += "  \"wall_noise_sigma\": " +
           formatDouble(report.wallNoiseSigma) + ",\n";
    out += "  \"wall_band\": " + formatDouble(report.wallBand) + ",\n";
    out += std::string("  \"regressed\": ") +
           (report.regressed ? "true" : "false") + ",\n";
    const auto appendIdArray = [&](const char *key,
                                   const std::vector<std::string> &ids,
                                   bool last) {
        out += "  \"";
        out += key;
        out += "\": [";
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += "\"" + jsonEscape(ids[i]) + "\"";
        }
        out += last ? "]\n" : "],\n";
    };
    appendIdArray("missing_in_baseline", report.missingInBaseline,
                  false);
    appendIdArray("missing_in_current", report.missingInCurrent, false);
    out += "  \"units\": [\n";
    for (std::size_t i = 0; i < report.units.size(); ++i) {
        const UnitComparison &unit = report.units[i];
        out += "    {\n";
        out += "      \"id\": \"" + jsonEscape(unit.id) + "\",\n";
        out += "      \"benchmark\": \"" + jsonEscape(unit.benchmark) +
               "\",\n";
        out += "      \"config\": \"" + jsonEscape(unit.config) +
               "\",\n";
        out += std::string("      \"regressed\": ") +
               (unit.regressed ? "true" : "false") + ",\n";
        out += "      \"metrics\": [\n";
        for (std::size_t m = 0; m < unit.metrics.size(); ++m) {
            appendMetric(out, unit.metrics[m], "        ");
            out += m + 1 < unit.metrics.size() ? ",\n" : "\n";
        }
        out += "      ]";
        if (unit.wall) {
            out += ",\n      \"wall\": ";
            appendMetric(out, *unit.wall, "");
            out += "\n";
        } else {
            out += "\n";
        }
        out += "    }";
        out += i + 1 < report.units.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace tcsim::obs
