/**
 * @file
 * Basic-block vector (BBV) collection for SimPoint-style sampled
 * simulation.
 *
 * A BBV is, per retired-instruction interval, the count of retired
 * instructions attributed to each basic block (keyed by the block
 * leader's pc / kInstBytes). Program phases show up as clusters in
 * BBV space, so k-means over these vectors picks a handful of
 * representative intervals whose weighted stats estimate the full
 * run (Sherwood et al., "Automatically Characterizing Large Scale
 * Program Behavior").
 *
 * The recorder piggy-backs on the interval engine's boundary scheme
 * (same nextBoundaryAfter contract as IntervalRecorder) and stores
 * raw sparse counts; dimension reduction (seeded random projection)
 * happens at clustering time, so the artifact stays exact and
 * projection parameters can change without re-profiling.
 *
 * Serialized as the `tcsim-bbv-v1` JSON schema:
 *
 *   {"schema":"tcsim-bbv-v1","benchmark":...,
 *    "interval_insts":N,"total_insts":M,
 *    "intervals":[{"end_insts":..,"blocks":[[block,count],...]},...]}
 *
 * with blocks ascending by key and counts summing to the interval
 * length.
 */

#ifndef TCSIM_OBS_BBV_H
#define TCSIM_OBS_BBV_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tcsim::obs
{

/** One interval's sparse block histogram. */
struct BbvInterval
{
    std::uint64_t endInsts = 0;
    /** (block key, retired-instruction count), ascending by key. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks;
};

/** A full profile: every interval of one benchmark run. */
struct BbvDocument
{
    std::string benchmark;
    std::uint64_t intervalInsts = 0;
    std::uint64_t totalInsts = 0;
    std::vector<BbvInterval> intervals;

    /** Render the `tcsim-bbv-v1` JSON document. */
    std::string toJson() const;

    /** Parse; empty optional on schema mismatch or malformed JSON. */
    static std::optional<BbvDocument> fromJson(const std::string &text);
};

/** Accumulates one interval at a time into a BbvDocument. */
class BbvRecorder
{
  public:
    explicit BbvRecorder(std::uint64_t interval_insts);

    std::uint64_t intervalInsts() const { return intervalInsts_; }

    /** @return the first boundary strictly above @p insts. */
    std::uint64_t
    nextBoundaryAfter(std::uint64_t insts) const
    {
        return (insts / intervalInsts_ + 1) * intervalInsts_;
    }

    /** Attribute one retired instruction to @p block_key. */
    void
    account(std::uint64_t block_key)
    {
        ++counts_[block_key];
    }

    /** Close the current interval at @p end_insts retired. */
    void boundary(std::uint64_t end_insts);

    /** Finalize (drops any open partial interval) and take the doc. */
    BbvDocument finish(std::string benchmark, std::uint64_t total_insts);

  private:
    std::uint64_t intervalInsts_;
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
    std::vector<BbvInterval> intervals_;
};

} // namespace tcsim::obs

#endif // TCSIM_OBS_BBV_H
