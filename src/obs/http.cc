#include "obs/http.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tcsim::obs
{

namespace
{

/** Hard cap on one request or response body: fragments are KBs, warm
 * artifacts are MBs — 256 MB is far beyond anything legitimate. */
constexpr std::size_t kMaxBodyBytes = 256u * 1024 * 1024;

void
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            send(fd, bytes.data() + sent, bytes.size() - sent,
                 MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

/** Fields scraped from a raw request head. */
struct RequestHead
{
    std::string method;
    std::string target; ///< path?query, still joined
    std::string bearer;
    std::size_t contentLength = 0;
    bool contentLengthValid = true;
};

RequestHead
parseRequestHead(const std::string &raw)
{
    RequestHead head;
    std::size_t line_end = raw.find('\n');
    const std::string first =
        raw.substr(0, line_end == std::string::npos ? raw.size()
                                                    : line_end);
    {
        const std::size_t sp1 = first.find(' ');
        if (sp1 != std::string::npos) {
            head.method = first.substr(0, sp1);
            const std::size_t sp2 = first.find(' ', sp1 + 1);
            head.target = first.substr(
                sp1 + 1,
                sp2 == std::string::npos ? std::string::npos
                                         : sp2 - sp1 - 1);
            while (!head.target.empty() &&
                   (head.target.back() == '\r' ||
                    head.target.back() == '\n'))
                head.target.pop_back();
        }
    }
    std::size_t pos = line_end;
    while (pos != std::string::npos && pos + 1 < raw.size()) {
        const std::size_t start = pos + 1;
        pos = raw.find('\n', start);
        std::string line = raw.substr(
            start,
            pos == std::string::npos ? std::string::npos : pos - start);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            break; // end of headers
        std::string lower = line;
        for (char &c : lower)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        const auto value_of = [&](const char *header) {
            std::string value = line.substr(std::strlen(header));
            while (!value.empty() && value.front() == ' ')
                value.erase(value.begin());
            return value;
        };
        if (lower.rfind("authorization:", 0) == 0) {
            const std::string value = value_of("authorization:");
            constexpr const char *kBearer = "Bearer ";
            if (value.rfind(kBearer, 0) == 0)
                head.bearer = value.substr(std::strlen(kBearer));
        } else if (lower.rfind("content-length:", 0) == 0) {
            const std::string value = value_of("content-length:");
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || n > kMaxBodyBytes)
                head.contentLengthValid = false;
            else
                head.contentLength = static_cast<std::size_t>(n);
        }
    }
    return head;
}

/** Offset of the first body byte, or npos while headers are
 * incomplete. */
std::size_t
headerEnd(const std::string &raw)
{
    const std::size_t crlf = raw.find("\r\n\r\n");
    if (crlf != std::string::npos)
        return crlf + 4;
    const std::size_t lf = raw.find("\n\n");
    if (lf != std::string::npos)
        return lf + 2;
    return std::string::npos;
}

} // namespace

const char *
httpStatusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 201:
        return "Created";
    case 204:
        return "No Content";
    case 400:
        return "Bad Request";
    case 401:
        return "Unauthorized";
    case 403:
        return "Forbidden";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 409:
        return "Conflict";
    case 413:
        return "Payload Too Large";
    case 503:
        return "Service Unavailable";
    default:
        return status >= 500 ? "Internal Server Error" : "Error";
    }
}

std::string
renderHttpResponse(const HttpResponse &resp)
{
    std::string out = "HTTP/1.0 ";
    out += std::to_string(resp.status);
    out += ' ';
    out += httpStatusText(resp.status);
    out += "\r\nContent-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
    out += "Connection: close\r\n";
    if (resp.status == 401)
        out += "WWW-Authenticate: Bearer\r\n";
    out += "\r\n";
    out += resp.body;
    return out;
}

bool
parseHttpUrl(const std::string &url, std::string &host_out,
             std::uint16_t &port_out)
{
    constexpr const char *kScheme = "http://";
    if (url.rfind(kScheme, 0) != 0)
        return false;
    std::string rest = url.substr(std::strlen(kScheme));
    while (!rest.empty() && rest.back() == '/')
        rest.pop_back();
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size())
        return false;
    char *end = nullptr;
    const std::string port_text = rest.substr(colon + 1);
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port == 0 || port > 65535)
        return false;
    host_out = rest.substr(0, colon);
    port_out = static_cast<std::uint16_t>(port);
    return true;
}

bool
HttpServer::start(const std::string &bind_addr, std::uint16_t port,
                  const std::string &token, Handler handler)
{
    if (running_.load())
        return false;
    if (token.empty()) {
        std::fprintf(stderr,
                     "http server: refusing to start without a "
                     "bearer token\n");
        return false;
    }
    if (!handler) {
        std::fprintf(stderr, "http server: null handler\n");
        return false;
    }
    listenFd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        std::perror("http server: socket");
        return false;
    }
    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
        std::fprintf(stderr, "http server: bad bind address '%s'\n",
                     bind_addr.c_str());
        close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(listenFd_, 64) != 0) {
        std::perror("http server: bind/listen");
        close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                    &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }
    token_ = token;
    handler_ = std::move(handler);
    stopping_.store(false);
    running_.store(true);
    thread_ = std::thread(&HttpServer::serveLoop, this);
    return true;
}

void
HttpServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false);
    port_ = 0;
}

void
HttpServer::serveLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = poll(&pfd, 1, /*timeout_ms=*/200);
        if (ready <= 0)
            continue;
        const int fd = accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handleConnection(fd);
        close(fd);
    }
}

void
HttpServer::handleConnection(int fd)
{
    // Read the head, then exactly Content-Length body bytes. A peer
    // that dribbles slower than the poll timeout is judged on what
    // arrived; an oversized declaration is cut off at the cap.
    std::string raw;
    char buf[64 * 1024];
    std::size_t body_start = std::string::npos;
    RequestHead head;
    for (int rounds = 0; rounds < 4096; ++rounds) {
        if (body_start != std::string::npos &&
            raw.size() - body_start >= head.contentLength)
            break;
        pollfd pfd{fd, POLLIN, 0};
        if (poll(&pfd, 1, /*timeout_ms=*/2000) <= 0)
            break;
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
        if (body_start == std::string::npos) {
            body_start = headerEnd(raw);
            if (body_start != std::string::npos) {
                head = parseRequestHead(raw.substr(0, body_start));
                if (!head.contentLengthValid ||
                    head.contentLength > kMaxBodyBytes) {
                    sendAll(fd,
                            renderHttpResponse(
                                {413, "application/json",
                                 "{\"error\": \"too large\"}\n"}));
                    return;
                }
            }
        }
        if (raw.size() > kMaxBodyBytes + 64 * 1024)
            break;
    }
    if (body_start == std::string::npos)
        head = parseRequestHead(raw);

    if (head.bearer != token_) {
        sendAll(fd, renderHttpResponse(
                        {401, "application/json",
                         "{\"error\": \"unauthorized\"}\n"}));
        return;
    }

    HttpRequest request;
    request.method = head.method;
    const std::size_t qmark = head.target.find('?');
    request.path = head.target.substr(0, qmark);
    if (qmark != std::string::npos)
        request.query = head.target.substr(qmark + 1);
    if (body_start != std::string::npos)
        request.body = raw.substr(body_start);
    if (request.body.size() > head.contentLength)
        request.body.resize(head.contentLength);

    sendAll(fd, renderHttpResponse(handler_(request)));
}

std::optional<HttpResult>
httpRequest(const std::string &host, std::uint16_t port,
            const std::string &method, const std::string &path,
            const std::string &token, std::string_view body,
            int timeout_ms)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *info = nullptr;
    if (getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &info) != 0 ||
        info == nullptr) {
        return std::nullopt;
    }
    const int fd = socket(info->ai_family, info->ai_socktype,
                          info->ai_protocol);
    if (fd < 0) {
        freeaddrinfo(info);
        return std::nullopt;
    }
    const int rc = connect(fd, info->ai_addr, info->ai_addrlen);
    freeaddrinfo(info);
    if (rc != 0) {
        close(fd);
        return std::nullopt;
    }

    std::string request = method + " " + path + " HTTP/1.0\r\n";
    request += "Host: " + host + "\r\n";
    request += "Authorization: Bearer " + token + "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "Connection: close\r\n\r\n";
    request.append(body.data(), body.size());
    sendAll(fd, request);

    std::string raw;
    char buf[64 * 1024];
    const int per_poll = timeout_ms > 0 ? timeout_ms : 30000;
    while (raw.size() < kMaxBodyBytes + 64 * 1024) {
        pollfd pfd{fd, POLLIN, 0};
        if (poll(&pfd, 1, per_poll) <= 0)
            break;
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n < 0)
            break;
        if (n == 0)
            break; // orderly close: response complete
        raw.append(buf, static_cast<std::size_t>(n));
    }
    close(fd);

    // "HTTP/1.x NNN ..." status line, headers, blank line, body.
    if (raw.rfind("HTTP/", 0) != 0)
        return std::nullopt;
    const std::size_t sp = raw.find(' ');
    if (sp == std::string::npos || sp + 4 > raw.size())
        return std::nullopt;
    HttpResult result;
    result.status = std::atoi(raw.c_str() + sp + 1);
    if (result.status == 0)
        return std::nullopt;
    const std::size_t body_at = headerEnd(raw);
    if (body_at != std::string::npos)
        result.body = raw.substr(body_at);
    return result;
}

} // namespace tcsim::obs
