#include "obs/intervals.h"

#include <cinttypes>

#include "common/log.h"

namespace tcsim::obs
{

namespace
{

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) / den;
}

double
perKinst(std::uint64_t num, std::uint64_t insts)
{
    return insts == 0 ? 0.0 : 1000.0 * static_cast<double>(num) / insts;
}

} // namespace

IntervalRecorder::IntervalRecorder(std::uint64_t interval_insts)
    : intervalInsts_(interval_insts)
{
    TCSIM_ASSERT(interval_insts > 0, "interval size must be positive");
}

void
IntervalRecorder::snapshot(const IntervalCounters &cumulative)
{
    samples_.push_back(cumulative);
}

void
IntervalRecorder::finish(const IntervalCounters &cumulative)
{
    const std::uint64_t last =
        samples_.empty() ? base_.insts : samples_.back().insts;
    if (cumulative.insts > last)
        samples_.push_back(cumulative);
}

void
IntervalRecorder::writeJson(std::FILE *out, const std::string &benchmark,
                            const std::string &config) const
{
    std::fprintf(out,
                 "{\"schema\":\"tcsim-intervals-v1\","
                 "\"benchmark\":\"%s\",\"config\":\"%s\","
                 "\"interval_insts\":%" PRIu64 ",\"intervals\":[",
                 benchmark.c_str(), config.c_str(), intervalInsts_);
    IntervalCounters prev = base_; // first delta excludes warm-up
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const IntervalCounters &cur = samples_[i];
        const IntervalCounters d = {
            cur.cycles - prev.cycles,
            cur.insts - prev.insts,
            cur.usefulFetches - prev.usefulFetches,
            cur.fetchedInsts - prev.fetchedInsts,
            cur.condBranches - prev.condBranches,
            cur.condMispredicts - prev.condMispredicts,
            cur.promotedFaults - prev.promotedFaults,
            cur.promotions - prev.promotions,
            cur.demotions - prev.demotions,
            cur.promotedRetired - prev.promotedRetired,
            cur.tcLookups - prev.tcLookups,
            cur.tcHits - prev.tcHits,
            cur.segmentsBuilt - prev.segmentsBuilt,
            cur.icacheMisses - prev.icacheMisses,
            cur.predictionsUsed - prev.predictionsUsed,
            cur.memOrderViolations - prev.memOrderViolations,
            cur.l2Misses - prev.l2Misses,
            cur.writebacks - prev.writebacks,
            cur.dramBusWaitCycles - prev.dramBusWaitCycles,
            cur.dramMshrStallCycles - prev.dramMshrStallCycles,
        };
        std::fprintf(
            out,
            "%s\n{\"end_cycle\":%" PRIu64 ",\"end_insts\":%" PRIu64 ","
            "\"delta\":{\"cycles\":%" PRIu64 ",\"insts\":%" PRIu64 ","
            "\"useful_fetches\":%" PRIu64 ",\"fetched_insts\":%" PRIu64 ","
            "\"cond_branches\":%" PRIu64 ",\"cond_mispredicts\":%" PRIu64 ","
            "\"promoted_faults\":%" PRIu64 ",\"promotions\":%" PRIu64 ","
            "\"demotions\":%" PRIu64 ",\"promoted_retired\":%" PRIu64 ","
            "\"tc_lookups\":%" PRIu64 ",\"tc_hits\":%" PRIu64 ","
            "\"segments_built\":%" PRIu64 ",\"icache_misses\":%" PRIu64 ","
            "\"predictions_used\":%" PRIu64 ","
            "\"mem_order_violations\":%" PRIu64 ","
            "\"l2_misses\":%" PRIu64 ",\"writebacks\":%" PRIu64 ","
            "\"dram_bus_wait_cycles\":%" PRIu64 ","
            "\"dram_mshr_stall_cycles\":%" PRIu64 "},"
            "\"rates\":{\"ipc\":%.6f,\"fetch_rate\":%.6f,"
            "\"tc_hit_rate\":%.6f,\"mispredict_rate\":%.6f,"
            "\"preds_per_fetch\":%.6f,\"faults_per_kinst\":%.6f,"
            "\"promotions_per_kinst\":%.6f,\"demotions_per_kinst\":%.6f,"
            "\"l2_mpki\":%.6f,\"writebacks_per_kinst\":%.6f,"
            "\"bus_wait_frac\":%.6f}}",
            i == 0 ? "" : ",", cur.cycles, cur.insts, d.cycles, d.insts,
            d.usefulFetches, d.fetchedInsts, d.condBranches,
            d.condMispredicts, d.promotedFaults, d.promotions, d.demotions,
            d.promotedRetired, d.tcLookups, d.tcHits, d.segmentsBuilt,
            d.icacheMisses, d.predictionsUsed, d.memOrderViolations,
            d.l2Misses, d.writebacks, d.dramBusWaitCycles,
            d.dramMshrStallCycles,
            ratio(d.insts, d.cycles), ratio(d.fetchedInsts, d.usefulFetches),
            ratio(d.tcHits, d.tcLookups),
            ratio(d.condMispredicts, d.condBranches),
            ratio(d.predictionsUsed, d.usefulFetches),
            perKinst(d.promotedFaults, d.insts),
            perKinst(d.promotions, d.insts), perKinst(d.demotions, d.insts),
            perKinst(d.l2Misses, d.insts), perKinst(d.writebacks, d.insts),
            ratio(d.dramBusWaitCycles, d.cycles));
        prev = cur;
    }
    std::fprintf(out, "\n]}\n");
}

bool
IntervalRecorder::writeJsonFile(const std::string &path,
                                const std::string &benchmark,
                                const std::string &config) const
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        return false;
    writeJson(out, benchmark, config);
    std::fclose(out);
    return true;
}

} // namespace tcsim::obs
