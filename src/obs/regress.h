/**
 * @file
 * The perf-regression gate: compare two canonical
 * "tcsim-bench-results-v1" documents per (benchmark, config) unit and
 * emit a "tcsim-regression-v1" verdict for CI.
 *
 * Two kinds of comparison, with different noise models:
 *
 *  - Simulated metrics (IPC, effective fetch rate, conditional
 *    mispredict rate) are DETERMINISTIC: the same code on the same
 *    matrix reproduces them bit for bit, so any delta is a real
 *    behavioral change. They are gated by a plain configurable
 *    relative threshold, direction-aware (an IPC gain is reported but
 *    never fails the gate; an IPC loss beyond the threshold does).
 *
 *  - Host wall-clock per unit (optional, from the
 *    "tcsim-bench-timing-v1" documents) is NOISY: the gate learns a
 *    noise band from the spread of per-unit relative deltas (robust
 *    sigma via median absolute deviation) and flags only shifts that
 *    clear both the configured threshold and the learned band. A
 *    zero-variance sample (e.g. a self-compare) degenerates to the
 *    plain threshold.
 *
 * Units are matched by id ("<benchmark>@<config>@<insts>[@sampled-…]"),
 * not content hash — hashes fold in config/generator fingerprints and
 * legitimately change across commits, which is exactly when you want
 * to compare. A unit present in the baseline but missing from the
 * current run fails the gate (silent coverage loss); a unit new in
 * the current run is reported but passes.
 */

#ifndef TCSIM_OBS_REGRESS_H
#define TCSIM_OBS_REGRESS_H

#include <optional>
#include <string>
#include <vector>

namespace tcsim::json
{
class Value;
}

namespace tcsim::obs
{

struct RegressOptions
{
    /** Relative threshold for deterministic simulated metrics. */
    double relThreshold = 0.01;
    /** Relative threshold for per-unit wall-clock comparisons. */
    double wallThreshold = 0.20;
    /** Width of the learned noise band, in robust sigmas. */
    double noiseK = 3.0;
};

/** One metric compared across the two runs. */
struct MetricDelta
{
    std::string name;
    double baseline = 0.0;
    double current = 0.0;
    /** (current - baseline) / |baseline|; 0 when baseline is 0 and
     * current is 0, +/-1 when only the baseline is 0. */
    double relDelta = 0.0;
    bool regressed = false;
};

/** One (benchmark, config) unit matched across the two runs. */
struct UnitComparison
{
    std::string id;
    std::string benchmark;
    std::string config;
    std::vector<MetricDelta> metrics;
    /** Wall-clock delta; present only when both timing docs had the
     * unit. */
    std::optional<MetricDelta> wall;
    bool regressed = false;
};

struct RegressionReport
{
    std::vector<UnitComparison> units;
    /** Unit ids in the current run with no baseline counterpart
     * (new coverage; reported, does not fail the gate). */
    std::vector<std::string> missingInBaseline;
    /** Unit ids in the baseline absent from the current run
     * (coverage loss; fails the gate). */
    std::vector<std::string> missingInCurrent;
    /** Robust sigma of per-unit relative wall deltas (0 when no
     * timing was supplied or the sample had no spread). */
    double wallNoiseSigma = 0.0;
    /** Effective wall gate: max(wallThreshold, noiseK * sigma). */
    double wallBand = 0.0;
    bool regressed = false;
};

/**
 * Compare @p current against @p baseline (both parsed
 * tcsim-bench-results-v1 documents). @p baseline_timing /
 * @p current_timing optionally supply per-unit wall-clock
 * (tcsim-bench-timing-v1); pass nullptr to skip wall comparisons.
 * @return empty optional when either document is malformed, with
 * @p error set.
 */
std::optional<RegressionReport>
compareResults(const json::Value &baseline, const json::Value &current,
               const json::Value *baseline_timing,
               const json::Value *current_timing,
               const RegressOptions &options, std::string *error);

/** Render @p report as a "tcsim-regression-v1" JSON document. */
std::string renderRegressionReport(const RegressionReport &report,
                                   const RegressOptions &options);

/** Robust sigma of @p deltas: 1.4826 × median absolute deviation
 * from the median. 0 for fewer than 2 samples or no spread. */
double robustSigma(const std::vector<double> &deltas);

} // namespace tcsim::obs

#endif // TCSIM_OBS_REGRESS_H
