/**
 * @file
 * Interval metrics: time series of the simulator's core statistics
 * sampled every N retired instructions.
 *
 * The Processor snapshots a cumulative IntervalCounters record at each
 * N-instruction boundary (plus a final partial sample at end of run);
 * the recorder derives per-interval deltas and rates (IPC, fetch rate,
 * TC hit rate, promotion/fault/demotion rates, predictions-per-fetch)
 * when serializing to the `tcsim-intervals-v1` JSON schema:
 *
 *   {"schema":"tcsim-intervals-v1","benchmark":...,"config":...,
 *    "interval_insts":N,
 *    "intervals":[{"end_cycle":..,"end_insts":..,
 *                  "delta":{"cycles":..,...},
 *                  "rates":{"ipc":..,...}}, ...]}
 *
 * Because the retire stage drains up to retireWidth instructions per
 * cycle, a boundary sample lands in [kN, kN + retireWidth); consumers
 * must use end_insts, not k*N, as the sample position.
 */

#ifndef TCSIM_OBS_INTERVALS_H
#define TCSIM_OBS_INTERVALS_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tcsim::obs
{

/** Cumulative core counters captured at one sample point. */
struct IntervalCounters {
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;             ///< retired instructions
    std::uint64_t usefulFetches = 0;     ///< on-path fetch cycles
    std::uint64_t fetchedInsts = 0;      ///< on-path instructions supplied
    std::uint64_t condBranches = 0;      ///< retired conditional branches
    std::uint64_t condMispredicts = 0;   ///< mispredicts incl. faults
    std::uint64_t promotedFaults = 0;    ///< promoted-branch faults
    std::uint64_t promotions = 0;        ///< bias-table promotions
    std::uint64_t demotions = 0;         ///< bias-table fault demotions
    std::uint64_t promotedRetired = 0;   ///< retired promoted branches
    std::uint64_t tcLookups = 0;
    std::uint64_t tcHits = 0;
    std::uint64_t segmentsBuilt = 0;     ///< fill-unit finalized segments
    std::uint64_t icacheMisses = 0;
    std::uint64_t predictionsUsed = 0;   ///< MBP slots consumed by fetches
    std::uint64_t memOrderViolations = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t writebacks = 0;        ///< all cache levels combined
    std::uint64_t dramBusWaitCycles = 0; ///< contended model only
    std::uint64_t dramMshrStallCycles = 0; ///< contended model only
};

/**
 * Collects cumulative samples every `intervalInsts` retired
 * instructions and serializes the derived time series. One recorder
 * per Processor run; purely observational (never feeds back into the
 * simulation).
 */
class IntervalRecorder
{
  public:
    explicit IntervalRecorder(std::uint64_t interval_insts);

    std::uint64_t intervalInsts() const { return intervalInsts_; }

    /** @return the first boundary strictly above @p insts. */
    std::uint64_t
    nextBoundaryAfter(std::uint64_t insts) const
    {
        return (insts / intervalInsts_ + 1) * intervalInsts_;
    }

    /**
     * Set the baseline the first interval's deltas are computed from
     * (the cumulative counters at attach time, so a warm-up phase run
     * before attaching never pollutes the series).
     */
    void setBase(const IntervalCounters &base) { base_ = base; }

    /** Record one cumulative sample (Processor, at a boundary). */
    void snapshot(const IntervalCounters &cumulative);

    /**
     * Record the end-of-run sample unless the last boundary snapshot
     * already covers it (i.e. no instructions retired since).
     */
    void finish(const IntervalCounters &cumulative);

    const std::vector<IntervalCounters> &samples() const { return samples_; }

    /** Serialize the tcsim-intervals-v1 document to @p out. */
    void writeJson(std::FILE *out, const std::string &benchmark,
                   const std::string &config) const;

    /** writeJson() to @p path; @return false if the file cannot open. */
    bool writeJsonFile(const std::string &path, const std::string &benchmark,
                       const std::string &config) const;

  private:
    std::uint64_t intervalInsts_;
    IntervalCounters base_;
    std::vector<IntervalCounters> samples_;
};

} // namespace tcsim::obs

#endif // TCSIM_OBS_INTERVALS_H
