#include "obs/farm.h"

#include <algorithm>
#include <cstdio>

namespace tcsim::obs
{

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/** Host sim-MIPS over the worker's lifetime: retired instructions per
 * wall microsecond of worker uptime. */
double
workerSimMips(const Heartbeat &hb)
{
    const double up = hb.nowMono - hb.startMono;
    if (up <= 0.0 || hb.retiredInsts == 0)
        return 0.0;
    return static_cast<double>(hb.retiredInsts) / up / 1e6;
}

} // namespace

double
medianOf(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

FarmStatus
aggregateFarm(const std::vector<WorkerObservation> &workers,
              const std::vector<double> &completed_wall_seconds,
              std::uint64_t units_total, std::uint64_t units_done,
              const FarmParams &params, EwmaState *ewma, double now_mono)
{
    FarmStatus status;
    status.unitsTotal = units_total;
    status.unitsDone = units_done;

    // Straggler threshold from the running median of completed units.
    if (completed_wall_seconds.size() >= params.minCompletedForMedian) {
        status.medianUnitSeconds = medianOf(completed_wall_seconds);
        if (status.medianUnitSeconds > 0.0) {
            status.stragglerThresholdSeconds =
                params.stragglerK * status.medianUnitSeconds;
        }
    }

    for (const WorkerObservation &observed : workers) {
        WorkerStatus worker;
        worker.hb = observed.hb;
        worker.ageSeconds = observed.ageSeconds;
        // A worker that reported "done" stops writing by design; its
        // aging heartbeat is a record, not a liveness failure.
        worker.stale = observed.hb.phase != "done" &&
                       observed.ageSeconds > params.staleAfterSeconds;
        if (observed.hb.phase == "run") {
            status.unitsRunning += 1;
            // Elapsed = in-unit time the worker itself reported, plus
            // however long ago it reported it.
            worker.currentUnitSeconds =
                (observed.hb.nowMono - observed.hb.unitStartMono) +
                observed.ageSeconds;
            if (status.stragglerThresholdSeconds > 0.0 &&
                worker.currentUnitSeconds >
                    status.stragglerThresholdSeconds) {
                worker.straggler = true;
                status.stragglers.push_back(observed.hb.unitId);
            }
        }
        if (worker.stale)
            status.workersStale += 1;
        status.workers.push_back(std::move(worker));
    }

    // Throughput: EWMA over the completion rate between polls. The
    // first poll seeds the state without producing a rate (no time
    // base yet); a backwards poll (monitor restart) reseeds.
    if (ewma != nullptr) {
        if (!ewma->valid || now_mono < ewma->lastSampleMono ||
            units_done < ewma->lastUnitsDone) {
            ewma->valid = true;
            ewma->ratePerSec = 0.0;
            ewma->lastSampleMono = now_mono;
            ewma->lastUnitsDone = units_done;
        } else if (now_mono > ewma->lastSampleMono) {
            const double sample =
                static_cast<double>(units_done - ewma->lastUnitsDone) /
                (now_mono - ewma->lastSampleMono);
            ewma->ratePerSec =
                ewma->ratePerSec == 0.0
                    ? sample
                    : params.ewmaAlpha * sample +
                          (1.0 - params.ewmaAlpha) * ewma->ratePerSec;
            ewma->lastSampleMono = now_mono;
            ewma->lastUnitsDone = units_done;
        }
        status.throughputUnitsPerSec = ewma->ratePerSec;
    }
    // Single-shot fallback (no EWMA history): estimate the rate from
    // the busiest worker's uptime so --once / --status still get an
    // ETA after the first fragments land.
    if (status.throughputUnitsPerSec == 0.0 && units_done > 0) {
        double max_uptime = 0.0;
        for (const WorkerObservation &observed : workers) {
            max_uptime = std::max(
                max_uptime, observed.hb.nowMono - observed.hb.startMono +
                                observed.ageSeconds);
        }
        if (max_uptime > 0.0) {
            status.throughputUnitsPerSec =
                static_cast<double>(units_done) / max_uptime;
        }
    }
    if (status.throughputUnitsPerSec > 0.0 && units_total >= units_done) {
        status.etaSeconds =
            static_cast<double>(units_total - units_done) /
            status.throughputUnitsPerSec;
    }
    return status;
}

std::string
renderFarmStatus(const FarmStatus &status, std::int64_t generated_unix)
{
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-farm-status-v1\",\n";
    out += "  \"generated_unix\": " + std::to_string(generated_unix) +
           ",\n";
    out += "  \"units_total\": " + std::to_string(status.unitsTotal) +
           ",\n";
    out += "  \"units_done\": " + std::to_string(status.unitsDone) + ",\n";
    out +=
        "  \"units_running\": " + std::to_string(status.unitsRunning) +
        ",\n";
    out += "  \"workers_stale\": " + std::to_string(status.workersStale) +
           ",\n";
    out += "  \"throughput_units_per_sec\": " +
           formatDouble(status.throughputUnitsPerSec) + ",\n";
    out += "  \"eta_seconds\": " + formatDouble(status.etaSeconds) + ",\n";
    out += "  \"median_unit_seconds\": " +
           formatDouble(status.medianUnitSeconds) + ",\n";
    out += "  \"straggler_threshold_seconds\": " +
           formatDouble(status.stragglerThresholdSeconds) + ",\n";
    out += "  \"stragglers\": [";
    for (std::size_t i = 0; i < status.stragglers.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "\"" + jsonEscape(status.stragglers[i]) + "\"";
    }
    out += "],\n";
    out += "  \"workers\": [\n";
    for (std::size_t i = 0; i < status.workers.size(); ++i) {
        const WorkerStatus &worker = status.workers[i];
        out += "    {";
        out += "\"worker\": \"" + jsonEscape(worker.hb.worker) + "\", ";
        out += "\"pid\": " + std::to_string(worker.hb.pid) + ", ";
        out += "\"phase\": \"" + jsonEscape(worker.hb.phase) + "\", ";
        out += "\"unit_id\": \"" + jsonEscape(worker.hb.unitId) + "\", ";
        out += "\"units_done\": " + std::to_string(worker.hb.unitsDone) +
               ", ";
        out +=
            "\"units_total\": " + std::to_string(worker.hb.unitsTotal) +
            ", ";
        out += "\"retired_insts\": " +
               std::to_string(worker.hb.retiredInsts) + ", ";
        out += "\"cache_hits\": " + std::to_string(worker.hb.cacheHits) +
               ", ";
        out += "\"cache_misses\": " +
               std::to_string(worker.hb.cacheMisses) + ", ";
        out += "\"sim_mips\": " + formatDouble(workerSimMips(worker.hb)) +
               ", ";
        out += "\"age_seconds\": " + formatDouble(worker.ageSeconds) +
               ", ";
        out += "\"current_unit_seconds\": " +
               formatDouble(worker.currentUnitSeconds) + ", ";
        out += std::string("\"stale\": ") +
               (worker.stale ? "true" : "false") + ", ";
        out += std::string("\"straggler\": ") +
               (worker.straggler ? "true" : "false");
        out += "}";
        out += i + 1 < status.workers.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::string
renderFarmDashboard(const FarmStatus &status)
{
    char line[256];
    std::string out;
    const double done_pct =
        status.unitsTotal == 0
            ? 0.0
            : 100.0 * static_cast<double>(status.unitsDone) /
                  static_cast<double>(status.unitsTotal);
    std::snprintf(line, sizeof(line),
                  "farm: %llu/%llu units (%.1f%%)  running %llu  "
                  "rate %.3f u/s  ",
                  static_cast<unsigned long long>(status.unitsDone),
                  static_cast<unsigned long long>(status.unitsTotal),
                  done_pct,
                  static_cast<unsigned long long>(status.unitsRunning),
                  status.throughputUnitsPerSec);
    out += line;
    if (status.etaSeconds >= 0.0) {
        std::snprintf(line, sizeof(line), "eta %.0fs",
                      status.etaSeconds);
        out += line;
    } else {
        out += "eta --";
    }
    if (status.workersStale > 0) {
        std::snprintf(line, sizeof(line), "  STALE workers: %llu",
                      static_cast<unsigned long long>(
                          status.workersStale));
        out += line;
    }
    if (!status.stragglers.empty()) {
        std::snprintf(line, sizeof(line), "  stragglers: %zu",
                      status.stragglers.size());
        out += line;
    }
    out += '\n';
    std::snprintf(line, sizeof(line), "%-10s %7s %-5s %9s %8s %7s %6s  %s\n",
                  "worker", "pid", "phase", "done", "mips", "age",
                  "unit_s", "unit");
    out += line;
    for (const WorkerStatus &worker : status.workers) {
        char done[32];
        std::snprintf(done, sizeof(done), "%llu/%llu",
                      static_cast<unsigned long long>(
                          worker.hb.unitsDone),
                      static_cast<unsigned long long>(
                          worker.hb.unitsTotal));
        double mips = 0.0;
        const double up = worker.hb.nowMono - worker.hb.startMono;
        if (up > 0.0)
            mips = static_cast<double>(worker.hb.retiredInsts) / up / 1e6;
        std::string unit = worker.hb.unitId;
        if (worker.straggler)
            unit += "  [STRAGGLER]";
        std::snprintf(line, sizeof(line),
                      "%-10s %7lld %-5s%s %8s %8.2f %6.1fs %5.1fs  %s\n",
                      worker.hb.worker.c_str(),
                      static_cast<long long>(worker.hb.pid),
                      worker.hb.phase.c_str(),
                      worker.stale ? "!" : " ", done, mips,
                      worker.ageSeconds, worker.currentUnitSeconds,
                      unit.c_str());
        out += line;
    }
    return out;
}

} // namespace tcsim::obs
