/**
 * @file
 * Near-zero-overhead categorised trace points, in the spirit of gem5's
 * DPRINTF.
 *
 * Components hold a raw `Tracer *` (null by default). The
 * TCSIM_TPOINT macro compiles the disabled path down to a single
 * predictable branch (null-check fused with the category-mask test);
 * formatting, timestamping, and sink dispatch happen only when the
 * category is enabled. Timestamps come from a clock pointer attached
 * by the owning Processor, so leaf components (caches, bias table)
 * never need to know about simulated time.
 *
 * Sinks translate TraceRecords into one of three formats:
 *   - text:   "cyc 123 tc hit addr=0x40"         (human, greppable)
 *   - jsonl:  {"t":123,"cat":"tc","ev":"hit","detail":"addr=0x40"}
 *   - chrome: Chrome trace_event JSON ("ts" = simulated cycle), loadable
 *             in chrome://tracing / Perfetto.
 * Text and JSONL writes go through logLineAtomic() so thread-pool runs
 * never interleave mid-line.
 */

#ifndef TCSIM_OBS_TRACE_H
#define TCSIM_OBS_TRACE_H

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace tcsim::obs
{

/** Trace-point categories; one bit each in Tracer's enable mask. */
enum class Category : std::uint8_t {
    Fetch = 0, ///< fetch engine: TC vs icache supply, stalls
    TC,        ///< trace cache: lookups, inserts, replacements
    Fill,      ///< fill unit: segment finalization, resyncs
    Promote,   ///< bias table: promotions, demotions, embedded branches
    Bpred,     ///< branch outcomes: mispredicts, promoted faults
    Mem,       ///< cache hierarchy: misses, writebacks
    Core,      ///< pipeline core: recoveries, order violations
    NumCategories,
};

inline constexpr unsigned kNumCategories =
    static_cast<unsigned>(Category::NumCategories);

/** @return the lower-case CLI name for @p cat ("fetch", "tc", ...). */
const char *categoryName(Category cat);

/** Parse one category name; @return false if unknown. */
bool categoryFromName(const std::string &name, Category &out);

/**
 * Parse a comma-separated category list ("tc,promote") or "all" into an
 * enable mask. @return false and set @p error (if non-null) on an
 * unknown name.
 */
bool parseCategoryList(const std::string &list, std::uint32_t &mask,
                       std::string *error = nullptr);

/** One formatted trace event, valid only for the duration of write(). */
struct TraceRecord {
    std::uint64_t cycle = 0; ///< simulated cycle (0 if no clock attached)
    Category cat = Category::Core;
    const char *event = "";  ///< static event name, e.g. "hit"
    const char *detail = ""; ///< formatted payload, e.g. "addr=0x40"
};

/** Output backend for trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceRecord &rec) = 0;
    /** Flush buffered output (Chrome sink writes its footer here). */
    virtual void flush() {}
};

/** Wire formats a sink can produce. */
enum class SinkFormat { Text, Jsonl, Chrome };

/** Parse "text" / "jsonl" / "chrome"; @return false if unknown. */
bool sinkFormatFromName(const std::string &name, SinkFormat &out);

/** Infer a format from a path: .jsonl -> Jsonl, .json -> Chrome,
 * anything else -> Text. */
SinkFormat inferSinkFormat(const std::string &path);

/**
 * Open a sink of @p format writing to @p path; an empty path means
 * stderr (shared with warn()/inform() via the line guard). @return
 * null and set @p error if the file cannot be opened.
 */
std::unique_ptr<TraceSink> makeSink(SinkFormat format,
                                    const std::string &path,
                                    std::string *error = nullptr);

/** In-memory sink for tests: stores owned copies of every record. */
class VectorSink : public TraceSink
{
  public:
    struct Stored {
        std::uint64_t cycle;
        Category cat;
        std::string event;
        std::string detail;
    };

    void
    write(const TraceRecord &rec) override
    {
        records_.push_back(
            {rec.cycle, rec.cat, rec.event, rec.detail});
    }

    const std::vector<Stored> &records() const { return records_; }

  private:
    std::vector<Stored> records_;
};

/**
 * Category-filtered event dispatcher. One Tracer per Processor; not
 * thread-safe itself (each thread-pool worker owns its own), but its
 * text/JSONL sinks serialize whole lines through the global log guard.
 */
class Tracer
{
  public:
    void
    enable(Category cat)
    {
        mask_ |= 1u << static_cast<unsigned>(cat);
    }

    void enableAll() { mask_ = (1u << kNumCategories) - 1; }
    void setMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t mask() const { return mask_; }

    bool
    enabled(Category cat) const
    {
        return (mask_ >> static_cast<unsigned>(cat)) & 1u;
    }

    /** Attach the simulated-cycle counter used to stamp records. */
    void attachClock(const std::uint64_t *cycle) { clock_ = cycle; }

    void
    addSink(std::unique_ptr<TraceSink> sink)
    {
        sinks_.push_back(std::move(sink));
    }

    /** @return the number of records emitted (post-filter). */
    std::uint64_t emitted() const { return emitted_; }

    /** Flush all sinks (finalizes the Chrome footer). */
    void flush();

    /**
     * Format and dispatch one record to every sink. Call through
     * TCSIM_TPOINT, which performs the enabled() check; calling emit()
     * directly bypasses filtering on purpose (tests).
     */
    void emit(Category cat, const char *event, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

  private:
    std::uint32_t mask_ = 0;
    const std::uint64_t *clock_ = nullptr;
    std::uint64_t emitted_ = 0;
    std::vector<std::unique_ptr<TraceSink>> sinks_;
};

} // namespace tcsim::obs

/**
 * Emit a trace point. @p tracer is a (possibly null) Tracer*;
 * @p category is an unqualified Category enumerator (Fetch, TC, ...);
 * @p event is a static string; the rest is a printf format + args for
 * the detail payload.
 *
 * Disabled cost: the null-check and mask test fuse into one
 * predictable, never-taken branch; no arguments are evaluated.
 * Define TCSIM_DISABLE_TRACEPOINTS to compile trace points out
 * entirely (used to calibrate BM_TraceOverhead).
 */
#ifndef TCSIM_DISABLE_TRACEPOINTS
#define TCSIM_TPOINT(tracer, category, event, ...)                          \
    do {                                                                    \
        ::tcsim::obs::Tracer *tcsim_tp_ = (tracer);                         \
        if (__builtin_expect(tcsim_tp_ != nullptr &&                        \
                                 tcsim_tp_->enabled(                        \
                                     ::tcsim::obs::Category::category),     \
                             0)) {                                          \
            tcsim_tp_->emit(::tcsim::obs::Category::category, event,        \
                            __VA_ARGS__);                                   \
        }                                                                   \
    } while (0)
#else
#define TCSIM_TPOINT(tracer, category, event, ...)                          \
    do {                                                                    \
    } while (0)
#endif

#endif // TCSIM_OBS_TRACE_H
