/**
 * @file
 * Minimal shared HTTP plumbing for the farm's LAN/CI endpoints: the
 * status server, the object-store shim and the sweep scheduler all
 * speak the same tiny dialect through this module instead of each
 * owning a socket loop.
 *
 * Scope is deliberately small: HTTP/1.0, one request per connection,
 * plain POSIX sockets, no TLS, mandatory bearer-token auth on the
 * server side (a tokenless server is refused by construction, and an
 * unauthorized request learns nothing but "401"). Requests may carry
 * a Content-Length body (the object store PUTs fragment and artifact
 * payloads), capped server-side so a rogue peer cannot balloon the
 * process.
 */

#ifndef TCSIM_OBS_HTTP_H
#define TCSIM_OBS_HTTP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

namespace tcsim::obs
{

/** One parsed request as delivered to a server handler. */
struct HttpRequest
{
    std::string method; ///< "GET", "PUT", ...
    std::string path;   ///< decoded path, query string stripped
    std::string query;  ///< raw query string (no leading '?')
    std::string body;
};

/** One response as produced by a server handler. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

/** Render @p resp as HTTP/1.0 bytes (adds WWW-Authenticate on 401). */
std::string renderHttpResponse(const HttpResponse &resp);

/** The canonical reason phrase for @p status ("OK", "Not Found"...). */
const char *httpStatusText(int status);

/**
 * Split "http://host:port[/]" into host and port.
 * @return false when @p url is not of that shape.
 */
bool parseHttpUrl(const std::string &url, std::string &host_out,
                  std::uint16_t &port_out);

/**
 * A single-threaded accept loop serving one handler. Every request
 * must present `Authorization: Bearer <token>` or it is answered 401
 * before the handler ever sees it.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer() = default;
    ~HttpServer() { stop(); }

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind @p bind_addr:@p port (port 0 = ephemeral; see port()) and
     * serve @p handler on a background thread. @p token must be
     * non-empty. @return false (with a message on stderr) on bind
     * failure or an empty token.
     */
    bool start(const std::string &bind_addr, std::uint16_t port,
               const std::string &token, Handler handler);

    /** The bound port (resolves port 0); 0 when not running. */
    std::uint16_t port() const { return port_; }

    bool running() const { return running_.load(); }

    /** Shut the accept loop down and join the thread (idempotent). */
    void stop();

  private:
    void serveLoop();
    void handleConnection(int fd);

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::string token_;
    Handler handler_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

/** What an httpRequest() round trip produced. */
struct HttpResult
{
    int status = 0;
    std::string body;
};

/**
 * One blocking HTTP/1.0 exchange: connect to @p host:@p port, send
 * @p method @p path with the bearer @p token and optional @p body,
 * read the response until the server closes.
 * @return empty optional on connect/transport failure (a parsed
 * non-2xx response is still a result, not a failure).
 */
std::optional<HttpResult>
httpRequest(const std::string &host, std::uint16_t port,
            const std::string &method, const std::string &path,
            const std::string &token, std::string_view body = {},
            int timeout_ms = 30000);

} // namespace tcsim::obs

#endif // TCSIM_OBS_HTTP_H
