/**
 * @file
 * Self-profiling: host-time accounting per pipeline phase plus a
 * sim-MIPS timeline, for answering "where does wall-clock go" without
 * an external profiler.
 *
 * Opt-in: the Processor holds a null SelfProfiler* by default and the
 * hot loop pays one predictable branch per stage. When attached, each
 * stage of step() is bracketed with steady_clock reads; the fill unit's
 * time is accounted separately and subtracted from the retire phase at
 * reporting time (it runs inside retireStage()).
 */

#ifndef TCSIM_OBS_PROFILER_H
#define TCSIM_OBS_PROFILER_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace tcsim::obs
{

/** Host-time buckets; Fill nests inside Retire (subtracted in reports). */
enum class Phase : std::uint8_t {
    Fetch = 0,
    Dispatch,
    Schedule,
    Complete,
    Retire,
    Fill,
    Recovery,
    NumPhases,
};

inline constexpr unsigned kNumPhases =
    static_cast<unsigned>(Phase::NumPhases);

/** @return the report name for @p phase ("fetch", "dispatch", ...). */
const char *phaseName(Phase phase);

class SelfProfiler
{
  public:
    /** One sim-MIPS timeline point. */
    struct TimelinePoint {
        double hostSeconds;  ///< host time since beginRun()
        std::uint64_t insts; ///< retired instructions at the sample
        double mips;         ///< mean sim MIPS over the whole run so far
    };

    /** @param sample_insts timeline sampling period in retired insts. */
    explicit SelfProfiler(std::uint64_t sample_insts = 250000);

    /** Reset accounting and start the run clock. */
    void beginRun();

    /** Stop the run clock (totalSeconds() freezes). */
    void endRun(std::uint64_t retired_insts);

    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Charge [t0, now) to @p phase; @return now (chained bracketing). */
    std::uint64_t
    lap(Phase phase, std::uint64_t t0)
    {
        const std::uint64_t now = nowNs();
        phaseNs_[static_cast<unsigned>(phase)] += now - t0;
        return now;
    }

    void
    addPhase(Phase phase, std::uint64_t ns)
    {
        phaseNs_[static_cast<unsigned>(phase)] += ns;
    }

    /** Append a timeline point if @p retired_insts crossed the period. */
    void
    maybeSample(std::uint64_t retired_insts)
    {
        if (retired_insts >= nextSampleInsts_)
            takeSample(retired_insts);
    }

    /**
     * Host seconds charged to @p phase. Retire excludes the nested
     * Fill time; every other phase reports its raw bucket.
     */
    double phaseSeconds(Phase phase) const;

    /** Host seconds between beginRun() and endRun(). */
    double totalSeconds() const;

    /** Mean simulated MIPS over the whole run. */
    double simMips(std::uint64_t retired_insts) const;

    const std::vector<TimelinePoint> &timeline() const { return timeline_; }

    /**
     * Append this profile as a JSON object value (no trailing newline):
     * {"phases":{"fetch":s,...},"total_seconds":s,"mips_timeline":[...]}
     */
    void appendJson(std::string &out) const;

  private:
    void takeSample(std::uint64_t retired_insts);

    std::uint64_t sampleInsts_;
    std::uint64_t nextSampleInsts_;
    std::uint64_t phaseNs_[kNumPhases] = {};
    std::uint64_t runStartNs_ = 0;
    std::uint64_t runEndNs_ = 0;
    std::vector<TimelinePoint> timeline_;
};

} // namespace tcsim::obs

#endif // TCSIM_OBS_PROFILER_H
