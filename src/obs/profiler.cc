#include "obs/profiler.h"

#include <cstdio>

#include "common/log.h"

namespace tcsim::obs
{

namespace
{

constexpr const char *kPhaseNames[kNumPhases] = {
    "fetch", "dispatch", "schedule", "complete", "retire", "fill",
    "recovery",
};

} // namespace

const char *
phaseName(Phase phase)
{
    const auto idx = static_cast<unsigned>(phase);
    TCSIM_ASSERT(idx < kNumPhases);
    return kPhaseNames[idx];
}

SelfProfiler::SelfProfiler(std::uint64_t sample_insts)
    : sampleInsts_(sample_insts), nextSampleInsts_(sample_insts)
{
    TCSIM_ASSERT(sample_insts > 0, "sample period must be positive");
}

void
SelfProfiler::beginRun()
{
    for (auto &ns : phaseNs_)
        ns = 0;
    timeline_.clear();
    nextSampleInsts_ = sampleInsts_;
    runEndNs_ = 0;
    runStartNs_ = nowNs();
}

void
SelfProfiler::endRun(std::uint64_t retired_insts)
{
    runEndNs_ = nowNs();
    if (timeline_.empty() || timeline_.back().insts < retired_insts)
        takeSample(retired_insts);
}

void
SelfProfiler::takeSample(std::uint64_t retired_insts)
{
    const double seconds =
        static_cast<double>(nowNs() - runStartNs_) * 1e-9;
    TimelinePoint point;
    point.hostSeconds = seconds;
    point.insts = retired_insts;
    point.mips = seconds > 0.0
                     ? static_cast<double>(retired_insts) / seconds * 1e-6
                     : 0.0;
    timeline_.push_back(point);
    nextSampleInsts_ = (retired_insts / sampleInsts_ + 1) * sampleInsts_;
}

double
SelfProfiler::phaseSeconds(Phase phase) const
{
    std::uint64_t ns = phaseNs_[static_cast<unsigned>(phase)];
    if (phase == Phase::Retire) {
        const std::uint64_t fill =
            phaseNs_[static_cast<unsigned>(Phase::Fill)];
        ns = ns > fill ? ns - fill : 0;
    }
    return static_cast<double>(ns) * 1e-9;
}

double
SelfProfiler::totalSeconds() const
{
    const std::uint64_t end = runEndNs_ != 0 ? runEndNs_ : nowNs();
    return end > runStartNs_
               ? static_cast<double>(end - runStartNs_) * 1e-9
               : 0.0;
}

double
SelfProfiler::simMips(std::uint64_t retired_insts) const
{
    const double seconds = totalSeconds();
    return seconds > 0.0
               ? static_cast<double>(retired_insts) / seconds * 1e-6
               : 0.0;
}

void
SelfProfiler::appendJson(std::string &out) const
{
    char buf[96];
    out += "{\"phases\":{";
    for (unsigned i = 0; i < kNumPhases; ++i) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6f", i == 0 ? "" : ",",
                      kPhaseNames[i],
                      phaseSeconds(static_cast<Phase>(i)));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "},\"total_seconds\":%.6f",
                  totalSeconds());
    out += buf;
    out += ",\"mips_timeline\":[";
    for (std::size_t i = 0; i < timeline_.size(); ++i) {
        const TimelinePoint &p = timeline_[i];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"host_seconds\":%.6f,\"insts\":%llu,"
                      "\"mips\":%.4f}",
                      i == 0 ? "" : ",", p.hostSeconds,
                      static_cast<unsigned long long>(p.insts), p.mips);
        out += buf;
    }
    out += "]}";
}

} // namespace tcsim::obs
