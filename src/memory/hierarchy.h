/**
 * @file
 * The paper's memory hierarchy, assembled: a 4 KB 4-way L1 instruction
 * cache, a 64 KB 4-way L1 data cache, and a unified 1 MB second-level
 * cache with 6-cycle latency backed by >= 50-cycle memory.
 */

#ifndef TCSIM_MEMORY_HIERARCHY_H
#define TCSIM_MEMORY_HIERARCHY_H

#include <memory>

#include "memory/cache.h"

namespace tcsim::memory
{

/** Parameters for the full hierarchy (paper defaults). */
struct HierarchyParams
{
    CacheParams icache{"l1i", 4 * 1024, 4, 64, 0};
    CacheParams dcache{"l1d", 64 * 1024, 4, 64, 0};
    CacheParams l2{"l2", 1024 * 1024, 8, 64, 6};
    std::uint32_t memoryLatency = 50;
};

/** Owns the cache levels and wires them together. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = HierarchyParams{})
        : l2_(params.l2, nullptr, params.memoryLatency),
          icache_(params.icache, &l2_),
          dcache_(params.dcache, &l2_)
    {
    }

    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    Cache &l2() { return l2_; }
    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &l2() const { return l2_; }

    /** Append all levels' statistics to @p dump. */
    void
    dumpStats(StatDump &dump) const
    {
        icache_.dumpStats(dump);
        dcache_.dumpStats(dump);
        l2_.dumpStats(dump);
    }

  private:
    Cache l2_;
    Cache icache_;
    Cache dcache_;
};

} // namespace tcsim::memory

#endif // TCSIM_MEMORY_HIERARCHY_H
