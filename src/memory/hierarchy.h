/**
 * @file
 * The paper's memory hierarchy, assembled: a 4 KB 4-way L1 instruction
 * cache, a 64 KB 4-way L1 data cache, and a unified 1 MB second-level
 * cache with 6-cycle latency backed by >= 50-cycle memory. The backstop
 * is either the historical flat latency (default) or, when
 * `dram.contended` is set, a bus/bank-contended Dram model that the L2
 * queues its misses and writebacks on.
 */

#ifndef TCSIM_MEMORY_HIERARCHY_H
#define TCSIM_MEMORY_HIERARCHY_H

#include <memory>

#include "memory/cache.h"
#include "memory/dram.h"

namespace tcsim::memory
{

/** Parameters for the full hierarchy (paper defaults). */
struct HierarchyParams
{
    CacheParams icache{"l1i", 4 * 1024, 4, 64, 0};
    CacheParams dcache{"l1d", 64 * 1024, 4, 64, 0};
    CacheParams l2{"l2", 1024 * 1024, 8, 64, 6};
    std::uint32_t memoryLatency = 50;
    /** Main-memory model behind the L2; flat-latency unless
     * `dram.contended` (the DramParams default keeps `dram.latency`
     * in sync with memoryLatency via the Hierarchy ctor). */
    DramParams dram{};
};

/** Owns the cache levels and wires them together. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = HierarchyParams{})
        : dram_([&] {
              DramParams dp = params.dram;
              if (!dp.contended)
                  dp.latency = params.memoryLatency;
              return dp;
          }()),
          l2_(params.l2, nullptr, params.memoryLatency),
          icache_(params.icache, &l2_),
          dcache_(params.dcache, &l2_)
    {
        if (dram_.contended())
            l2_.setBackingDram(&dram_);
    }

    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    Cache &l2() { return l2_; }
    Dram &dram() { return dram_; }
    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &l2() const { return l2_; }
    const Dram &dram() const { return dram_; }

    /** Append all levels' statistics to @p dump. The DRAM device only
     * reports when the contended model is live, so default dumps are
     * unchanged from the flat-latency era. */
    void
    dumpStats(StatDump &dump) const
    {
        icache_.dumpStats(dump);
        dcache_.dumpStats(dump);
        l2_.dumpStats(dump);
        if (dram_.contended())
            dram_.dumpStats(dump);
    }

  private:
    Dram dram_;
    Cache l2_;
    Cache icache_;
    Cache dcache_;
};

} // namespace tcsim::memory

#endif // TCSIM_MEMORY_HIERARCHY_H
