/**
 * @file
 * A generic set-associative, write-back, LRU cache level, composable
 * into a hierarchy. Timing is modeled as a per-access latency returned
 * to the caller; caches are blocking (the era's simulators, including
 * the paper's SimpleScalar 2.0 baseline, modeled fetch stalls the same
 * way).
 */

#ifndef TCSIM_MEMORY_CACHE_H
#define TCSIM_MEMORY_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"

namespace tcsim::memory
{

/** Geometry and latency parameters for one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 4096;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 64;
    /** Extra cycles charged when this level must be consulted. */
    std::uint32_t accessLatency = 0;
};

/** One cache level; misses are forwarded to the next level. */
class Cache
{
  public:
    /**
     * @param params geometry/latency
     * @param next the next level, or nullptr if backed by memory
     * @param memory_latency cycles charged when next == nullptr misses
     *        here (i.e., this is the last level before DRAM)
     */
    Cache(const CacheParams &params, Cache *next,
          std::uint32_t memory_latency = 50);

    /**
     * Access the line containing @p addr, allocating it on miss.
     * @param write true for stores (sets the dirty bit)
     * @return total extra latency in cycles (0 for an L1 hit when
     *         accessLatency is 0)
     */
    std::uint32_t access(Addr addr, bool write);

    /** @return true if the line containing @p addr is resident. */
    bool probe(Addr addr) const;

    /** Invalidate all lines. */
    void flush();

    /** @return the line size in bytes. */
    std::uint32_t lineBytes() const { return params_.lineBytes; }

    /** @return the number of sets. */
    std::uint32_t numSets() const { return numSets_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /** Miss ratio over all accesses (0 when never accessed). */
    double
    missRatio() const
    {
        return accesses_ == 0
                   ? 0.0
                   : static_cast<double>(misses_) / accesses_;
    }

    /** Append this level's statistics to @p dump. */
    void dumpStats(StatDump &dump) const;

    void resetStats();

    /** Attach a tracer for `mem` trace points (null disables). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    const std::string &name() const { return params_.name; }

  private:
    struct Line
    {
        Addr tag = kInvalidAddr;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / params_.lineBytes; }
    std::uint32_t setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(lineAddr(addr) % numSets_);
    }
    Addr tagOf(Addr addr) const { return lineAddr(addr) / numSets_; }

    CacheParams params_;
    Cache *next_;
    std::uint32_t memoryLatency_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; // numSets_ * assoc, set-major
    std::uint64_t tick_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;

    obs::Tracer *tracer_ = nullptr;
};

} // namespace tcsim::memory

#endif // TCSIM_MEMORY_CACHE_H
