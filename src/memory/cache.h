/**
 * @file
 * A generic set-associative, write-back, LRU cache level, composable
 * into a hierarchy. Timing is modeled as a per-access latency returned
 * to the caller; caches are blocking (the era's simulators, including
 * the paper's SimpleScalar 2.0 baseline, modeled fetch stalls the same
 * way). The last level may be backed by a contended Dram model, in
 * which case the caller's current cycle (threaded through access())
 * determines queueing delay on the memory bus.
 */

#ifndef TCSIM_MEMORY_CACHE_H
#define TCSIM_MEMORY_CACHE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "common/types.h"
#include "memory/dram.h"
#include "obs/trace.h"

namespace tcsim::memory
{

/** Geometry and latency parameters for one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 4096;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 64;
    /** Extra cycles charged when this level must be consulted. */
    std::uint32_t accessLatency = 0;
    /**
     * Issue dirty-victim writebacks to the next level (or DRAM when
     * last-level) so eviction traffic is seen — and charged — below.
     * Defaults to the legacy zero-cost path (count only), which keeps
     * pre-existing golden stats byte-identical; contended-memory
     * configs switch it on.
     */
    bool writebackToNext = false;
};

/** One cache level; misses are forwarded to the next level. */
class Cache
{
  public:
    /**
     * @param params geometry/latency
     * @param next the next level, or nullptr if backed by memory
     * @param memory_latency cycles charged when next == nullptr misses
     *        here (i.e., this is the last level before DRAM) and no
     *        Dram model is attached
     */
    Cache(const CacheParams &params, Cache *next,
          std::uint32_t memory_latency = 50);

    /**
     * Back this (last-level) cache with a contended Dram model:
     * misses and issued writebacks queue on its bus instead of paying
     * the flat memory latency. Ignored while @p dram is null or when
     * this level has a next cache.
     */
    void setBackingDram(Dram *dram) { dram_ = dram; }

    /**
     * Access the line containing @p addr, allocating it on miss.
     * @param write true for stores (sets the dirty bit)
     * @param now current cycle; only consulted by a backing Dram model
     *        (flat-latency timing is cycle-independent)
     * @return total extra latency in cycles (0 for an L1 hit when
     *         accessLatency is 0)
     */
    std::uint32_t access(Addr addr, bool write, Cycle now = 0);

    /** @return true if the line containing @p addr is resident. */
    bool probe(Addr addr) const;

    /**
     * Invalidate all lines, counting (and tracing) a writeback for
     * every dirty valid line dropped. With writebackToNext set the
     * victims' data is actually issued below — to the next level, or
     * to the backing Dram at @p now so flush traffic queues on the
     * contended bus like any other writeback — and the cost lands in
     * writebackCycles() exactly once per dirty line (a line is clean
     * once flushed, so a second flush adds nothing).
     */
    void flush(Cycle now = 0);

    /** @return the line size in bytes. */
    std::uint32_t lineBytes() const { return params_.lineBytes; }

    /** @return the number of sets. */
    std::uint32_t numSets() const { return numSets_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    /** Cycles spent issuing writeback traffic below (0 on the legacy
     * zero-cost path). */
    std::uint64_t writebackCycles() const { return writebackCycles_; }

    /** Miss ratio over all accesses (0 when never accessed). */
    double
    missRatio() const
    {
        return accesses_ == 0
                   ? 0.0
                   : static_cast<double>(misses_) / accesses_;
    }

    /**
     * Append this level's statistics to @p dump. Canonical-document
     * policy: integer counters only — derived ratios (miss_ratio and
     * friends) are recomputed by the shared renderer at display time
     * (see printStatsWithDerivedRatios in sim/accounting).
     */
    void dumpStats(StatDump &dump) const;

    void resetStats();

    /**
     * Serialize / reload the tag array (tags, valid/dirty bits, LRU
     * state) for warm-start checkpoints. Statistics counters are NOT
     * part of the state — checkpoint consumers open their measurement
     * window with resetStats() anyway. restoreState() rejects a blob
     * from a different geometry.
     */
    void saveState(std::ostream &os) const;
    bool restoreState(std::istream &is);

    /** Attach a tracer for `mem` trace points (null disables). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    const std::string &name() const { return params_.name; }

  private:
    struct Line
    {
        Addr tag = kInvalidAddr;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / params_.lineBytes; }
    std::uint32_t setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(lineAddr(addr) % numSets_);
    }
    Addr tagOf(Addr addr) const { return lineAddr(addr) / numSets_; }
    /** Reconstruct the byte address of a resident line. */
    Addr
    addrOfLine(Addr tag, std::uint32_t set) const
    {
        return (tag * numSets_ + set) * params_.lineBytes;
    }

    CacheParams params_;
    Cache *next_;
    std::uint32_t memoryLatency_;
    Dram *dram_ = nullptr;
    std::uint32_t numSets_;
    std::vector<Line> lines_; // numSets_ * assoc, set-major
    std::uint64_t tick_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t writebackCycles_ = 0;

    obs::Tracer *tracer_ = nullptr;
};

} // namespace tcsim::memory

#endif // TCSIM_MEMORY_CACHE_H
