#include "memory/cache.h"
#include "common/binio.h"
#include "common/bitutils.h"


namespace tcsim::memory
{

Cache::Cache(const CacheParams &params, Cache *next,
             std::uint32_t memory_latency)
    : params_(params), next_(next), memoryLatency_(memory_latency)
{
    TCSIM_ASSERT(isPowerOf2(params_.lineBytes), "line size not pow2");
    TCSIM_ASSERT(params_.assoc >= 1);
    TCSIM_ASSERT(params_.sizeBytes % (params_.lineBytes * params_.assoc) ==
                     0,
                 "size not divisible by way size");
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    TCSIM_ASSERT(numSets_ >= 1);
    lines_.resize(static_cast<std::size_t>(numSets_) * params_.assoc);
}

std::uint32_t
Cache::access(Addr addr, bool write, Cycle now)
{
    ++accesses_;
    ++tick_;

    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *line_base = &lines_[static_cast<std::size_t>(set) * params_.assoc];

    // Hit?
    for (std::uint32_t way = 0; way < params_.assoc; ++way) {
        Line &line = line_base[way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = tick_;
            line.dirty = line.dirty || write;
            return params_.accessLatency;
        }
    }

    // Miss: fetch from below, then allocate over the LRU victim.
    ++misses_;
    TCSIM_TPOINT(tracer_, Mem, "miss", "%s addr=0x%llx write=%d",
                 params_.name.c_str(),
                 static_cast<unsigned long long>(addr), write ? 1 : 0);
    std::uint32_t below;
    if (next_ != nullptr)
        below = next_->access(addr, false, now);
    else if (dram_ != nullptr)
        below = dram_->access(addr, false, params_.lineBytes, now);
    else
        below = memoryLatency_;

    Line *victim = line_base;
    for (std::uint32_t way = 1; way < params_.assoc; ++way) {
        Line &line = line_base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        TCSIM_TPOINT(tracer_, Mem, "writeback", "%s victim_tag=0x%llx",
                     params_.name.c_str(),
                     static_cast<unsigned long long>(victim->tag));
        if (params_.writebackToNext) {
            // The victim's data must reach the next level (or memory):
            // charge the traffic where it lands. The store lands after
            // the demand fill, so it sees the post-miss cycle.
            const Addr victim_addr = addrOfLine(victim->tag, set);
            const Cycle wb_now = now + params_.accessLatency + below;
            std::uint32_t wb_cost = 0;
            if (next_ != nullptr)
                wb_cost = next_->access(victim_addr, true, wb_now);
            else if (dram_ != nullptr)
                wb_cost = dram_->access(victim_addr, true,
                                        params_.lineBytes, wb_now);
            writebackCycles_ += wb_cost;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lruStamp = tick_;

    return params_.accessLatency + below;
}

bool
Cache::probe(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *line_base =
        &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t way = 0; way < params_.assoc; ++way) {
        const Line &line = line_base[way];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush(Cycle now)
{
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        Line &line = lines_[i];
        if (line.valid && line.dirty) {
            ++writebacks_;
            TCSIM_TPOINT(tracer_, Mem, "flush_writeback",
                         "%s victim_tag=0x%llx", params_.name.c_str(),
                         static_cast<unsigned long long>(line.tag));
            if (params_.writebackToNext) {
                // Mirror the eviction path in access(): the victim's
                // data must reach the next level (or memory), and the
                // cost lands in writebackCycles_ exactly once — the
                // line is invalidated below, so a later flush cannot
                // charge it again.
                const std::uint32_t set =
                    static_cast<std::uint32_t>(i / params_.assoc);
                const Addr victim_addr = addrOfLine(line.tag, set);
                std::uint32_t wb_cost = 0;
                if (next_ != nullptr)
                    wb_cost = next_->access(victim_addr, true, now);
                else if (dram_ != nullptr)
                    wb_cost = dram_->access(victim_addr, true,
                                            params_.lineBytes, now);
                writebackCycles_ += wb_cost;
            }
        }
        line = Line{};
    }
}

void
Cache::dumpStats(StatDump &dump) const
{
    dump.add(params_.name + ".accesses", static_cast<double>(accesses_));
    dump.add(params_.name + ".misses", static_cast<double>(misses_));
    dump.add(params_.name + ".writebacks",
             static_cast<double>(writebacks_));
    if (params_.writebackToNext)
        dump.add(params_.name + ".writeback_cycles",
                 static_cast<double>(writebackCycles_));
}

void
Cache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
    writebacks_ = 0;
    writebackCycles_ = 0;
}

void
Cache::saveState(std::ostream &os) const
{
    binio::writeScalar(os, params_.sizeBytes);
    binio::writeScalar(os, params_.assoc);
    binio::writeScalar(os, params_.lineBytes);
    binio::writeScalar(os, tick_);
    for (const Line &line : lines_) {
        binio::writeScalar(os, line.tag);
        binio::writeScalar<std::uint8_t>(os, line.valid ? 1 : 0);
        binio::writeScalar<std::uint8_t>(os, line.dirty ? 1 : 0);
        binio::writeScalar(os, line.lruStamp);
    }
}

bool
Cache::restoreState(std::istream &is)
{
    std::uint32_t size_bytes = 0, assoc = 0, line_bytes = 0;
    if (!binio::readScalar(is, size_bytes) ||
        !binio::readScalar(is, assoc) ||
        !binio::readScalar(is, line_bytes) ||
        size_bytes != params_.sizeBytes || assoc != params_.assoc ||
        line_bytes != params_.lineBytes) {
        return false;
    }
    if (!binio::readScalar(is, tick_))
        return false;
    for (Line &line : lines_) {
        std::uint8_t valid = 0, dirty = 0;
        if (!binio::readScalar(is, line.tag) ||
            !binio::readScalar(is, valid) ||
            !binio::readScalar(is, dirty) ||
            !binio::readScalar(is, line.lruStamp)) {
            return false;
        }
        line.valid = valid != 0;
        line.dirty = dirty != 0;
    }
    return true;
}

} // namespace tcsim::memory
