/**
 * @file
 * A contended main-memory model: a finite-bandwidth bus (busy-until
 * occupancy) in front of N DRAM banks with open-row hit/miss
 * latencies, plus an outstanding-request (MSHR-style) limit so the
 * blocking-cache assumption of the surrounding hierarchy is an
 * explicit, configurable contract.
 *
 * The default configuration (`contended == false`) reproduces the
 * historical flat-latency backstop exactly: every access costs
 * `latency` cycles, no occupancy state is touched, and no stats are
 * emitted into dumps — so pre-existing golden results stay
 * byte-identical until a config opts in.
 *
 * Timing is request-at-a-time, matching the blocking caches above it:
 * each access is placed on the bus no earlier than the bus frees, then
 * on its bank no earlier than the bank frees, and the returned latency
 * is completion-minus-now. Overlap between requests therefore shows up
 * as queueing delay for the later request, which is the property the
 * paper-era literature (and the DRAMSim-style followups) identify as
 * the thing a flat latency cannot express: a wider fetch engine's
 * extra demand turns into bus/bank wait, not just more of the same
 * 50-cycle charges.
 */

#ifndef TCSIM_MEMORY_DRAM_H
#define TCSIM_MEMORY_DRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"

namespace tcsim::memory
{

/** Main-memory timing parameters. */
struct DramParams
{
    std::string name = "dram";
    /**
     * Master switch. false = the legacy flat model: every access costs
     * `latency` cycles regardless of load (the paper's ">= 50-cycle
     * memory"). true = bus + bank occupancy below.
     */
    bool contended = false;
    /** Flat-path latency; also the backstop when banks == 0. */
    std::uint32_t latency = 50;
    /**
     * Data-bus bandwidth in bytes per cycle; a line occupies the bus
     * for ceil(lineBytes / busBytesPerCycle) cycles. 0 = infinite
     * bandwidth (no bus occupancy), the degenerate setting used to
     * prove the contended path collapses to the flat one.
     */
    std::uint32_t busBytesPerCycle = 8;
    /** Number of independent banks; 0 = unbanked (flat `latency` core
     * access time, still behind the bus). */
    std::uint32_t banks = 8;
    /** Bytes per DRAM row (open page); addresses are striped across
     * banks at row granularity. */
    std::uint32_t rowBytes = 2048;
    /** Core access time when the open row matches. */
    std::uint32_t rowHitLatency = 20;
    /** Core access time on a row miss (precharge + activate + CAS). */
    std::uint32_t rowMissLatency = 50;
    /**
     * Outstanding-request limit (MSHR-style). A request arriving while
     * this many earlier requests are still in flight waits for the
     * oldest to complete before even reaching the bus. 0 = unlimited.
     */
    std::uint32_t maxOutstanding = 8;
};

/** The memory controller + DRAM device model. */
class Dram
{
  public:
    explicit Dram(const DramParams &params = DramParams{});

    /**
     * Perform one line-sized transfer starting no earlier than @p now.
     * @param write true for writeback traffic from the last cache level
     * @param bytes transfer size (the caller's line size)
     * @return total cycles until the transfer completes, measured from
     *         @p now (includes any MSHR/bus/bank queueing delay)
     */
    std::uint32_t access(Addr addr, bool write, std::uint32_t bytes,
                         Cycle now);

    bool contended() const { return params_.contended; }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t busWaitCycles() const { return busWaitCycles_; }
    std::uint64_t busBusyCycles() const { return busBusyCycles_; }
    std::uint64_t bankConflicts() const { return bankConflicts_; }
    std::uint64_t bankWaitCycles() const { return bankWaitCycles_; }
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t mshrStalls() const { return mshrStalls_; }
    std::uint64_t mshrStallCycles() const { return mshrStallCycles_; }

    /** Append this device's statistics (integer counters only). */
    void dumpStats(StatDump &dump) const;

    void resetStats();

    /** Attach a tracer for `mem` trace points (null disables). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    const std::string &name() const { return params_.name; }

  private:
    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    DramParams params_;

    // Occupancy state (contended mode only).
    Cycle busFreeAt_ = 0;
    std::vector<Cycle> bankFreeAt_;
    std::vector<std::uint64_t> openRow_; // per bank; ~0 = closed
    /** Completion times of in-flight requests, unordered; bounded by
     * maxOutstanding so the scan is a handful of elements. */
    std::vector<Cycle> inFlight_;

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t busWaitCycles_ = 0;
    std::uint64_t busBusyCycles_ = 0;
    std::uint64_t bankConflicts_ = 0;
    std::uint64_t bankWaitCycles_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
    std::uint64_t mshrStalls_ = 0;
    std::uint64_t mshrStallCycles_ = 0;

    obs::Tracer *tracer_ = nullptr;
};

} // namespace tcsim::memory

#endif // TCSIM_MEMORY_DRAM_H
