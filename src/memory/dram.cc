#include "memory/dram.h"

#include <algorithm>

#include "common/log.h"

namespace tcsim::memory
{

namespace
{

constexpr std::uint64_t kClosedRow = ~std::uint64_t{0};

} // namespace

Dram::Dram(const DramParams &params) : params_(params)
{
    if (params_.contended && params_.banks > 0) {
        TCSIM_ASSERT(params_.rowBytes > 0, "rowBytes must be positive");
        bankFreeAt_.assign(params_.banks, 0);
        openRow_.assign(params_.banks, kClosedRow);
    }
    if (params_.contended && params_.maxOutstanding > 0)
        inFlight_.reserve(params_.maxOutstanding);
}

std::uint32_t
Dram::bankOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / params_.rowBytes) %
                                      params_.banks);
}

std::uint64_t
Dram::rowOf(Addr addr) const
{
    return (addr / params_.rowBytes) / params_.banks;
}

std::uint32_t
Dram::access(Addr addr, bool write, std::uint32_t bytes, Cycle now)
{
    if (write)
        ++writes_;
    else
        ++reads_;

    if (!params_.contended)
        return params_.latency;

    // MSHR-style outstanding-request limit: a full miss file delays the
    // request until the oldest in-flight transfer completes.
    Cycle start = now;
    if (params_.maxOutstanding > 0) {
        // Drop completed entries (completion at or before `start`).
        inFlight_.erase(std::remove_if(inFlight_.begin(), inFlight_.end(),
                                       [&](Cycle c) { return c <= start; }),
                        inFlight_.end());
        if (inFlight_.size() >= params_.maxOutstanding) {
            const Cycle oldest =
                *std::min_element(inFlight_.begin(), inFlight_.end());
            ++mshrStalls_;
            mshrStallCycles_ += oldest - start;
            start = oldest;
            inFlight_.erase(std::remove_if(
                                inFlight_.begin(), inFlight_.end(),
                                [&](Cycle c) { return c <= start; }),
                            inFlight_.end());
        }
    }

    // Bus occupancy: the transfer holds the data bus for its full
    // serialization time; a busy bus queues the request.
    std::uint32_t transfer_cycles = 0;
    Cycle bus_start = start;
    if (params_.busBytesPerCycle > 0) {
        transfer_cycles =
            (bytes + params_.busBytesPerCycle - 1) / params_.busBytesPerCycle;
        bus_start = std::max(start, busFreeAt_);
        busWaitCycles_ += bus_start - start;
        busFreeAt_ = bus_start + transfer_cycles;
        busBusyCycles_ += transfer_cycles;
    }

    // Bank occupancy and open-row state.
    std::uint32_t core_latency = params_.latency;
    Cycle bank_start = bus_start;
    if (params_.banks > 0) {
        const std::uint32_t bank = bankOf(addr);
        const std::uint64_t row = rowOf(addr);
        if (bankFreeAt_[bank] > bank_start) {
            ++bankConflicts_;
            bankWaitCycles_ += bankFreeAt_[bank] - bank_start;
            bank_start = bankFreeAt_[bank];
        }
        if (openRow_[bank] == row) {
            ++rowHits_;
            core_latency = params_.rowHitLatency;
        } else {
            ++rowMisses_;
            core_latency = params_.rowMissLatency;
            openRow_[bank] = row;
        }
        bankFreeAt_[bank] = bank_start + core_latency;
    }

    const Cycle done = bank_start + core_latency + transfer_cycles;
    if (params_.maxOutstanding > 0)
        inFlight_.push_back(done);

    TCSIM_TPOINT(tracer_, Mem, write ? "dram_write" : "dram_read",
                 "addr=0x%llx wait=%llu lat=%llu",
                 static_cast<unsigned long long>(addr),
                 static_cast<unsigned long long>(bank_start - now),
                 static_cast<unsigned long long>(done - now));
    return static_cast<std::uint32_t>(done - now);
}

void
Dram::dumpStats(StatDump &dump) const
{
    dump.add(params_.name + ".reads", static_cast<double>(reads_));
    dump.add(params_.name + ".writes", static_cast<double>(writes_));
    dump.add(params_.name + ".bus_wait_cycles",
             static_cast<double>(busWaitCycles_));
    dump.add(params_.name + ".bus_busy_cycles",
             static_cast<double>(busBusyCycles_));
    dump.add(params_.name + ".bank_conflicts",
             static_cast<double>(bankConflicts_));
    dump.add(params_.name + ".bank_wait_cycles",
             static_cast<double>(bankWaitCycles_));
    dump.add(params_.name + ".row_hits", static_cast<double>(rowHits_));
    dump.add(params_.name + ".row_misses", static_cast<double>(rowMisses_));
    dump.add(params_.name + ".mshr_stalls",
             static_cast<double>(mshrStalls_));
    dump.add(params_.name + ".mshr_stall_cycles",
             static_cast<double>(mshrStallCycles_));
}

void
Dram::resetStats()
{
    reads_ = 0;
    writes_ = 0;
    busWaitCycles_ = 0;
    busBusyCycles_ = 0;
    bankConflicts_ = 0;
    bankWaitCycles_ = 0;
    rowHits_ = 0;
    rowMisses_ = 0;
    mshrStalls_ = 0;
    mshrStallCycles_ = 0;
}

} // namespace tcsim::memory
