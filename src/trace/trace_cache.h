/**
 * @file
 * Trace cache storage: 2K segments, 4-way set associative (~128 KB of
 * instruction storage), indexed by segment start address.
 *
 * No path associativity is modeled (paper section 3): at most one
 * segment with a given start address is resident, so inserting a
 * segment replaces any existing segment with the same start.
 */

#ifndef TCSIM_TRACE_TRACE_CACHE_H
#define TCSIM_TRACE_TRACE_CACHE_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"
#include "trace/segment.h"

namespace tcsim::trace
{

/** Geometry parameters for the trace cache. */
struct TraceCacheParams
{
    std::uint32_t numSegments = 2048;
    std::uint32_t assoc = 4;
    /**
     * Path associativity: allow several segments with the same start
     * address (differing in embedded path) to be resident at once.
     * The paper's configurations do not use it (section 3); it is
     * provided for the cited comparison.
     */
    bool pathAssociativity = false;
};

/** The trace cache proper. */
class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheParams &params = TraceCacheParams{});

    /**
     * @return the resident segment starting at @p addr, or nullptr.
     * Records hit/miss statistics.
     */
    const TraceSegment *lookup(Addr addr);

    /** @return the resident segment without touching statistics/LRU. */
    const TraceSegment *peek(Addr addr) const;

    /**
     * Collect every resident segment starting at @p addr (more than
     * one only under path associativity). Counts as one lookup; a hit
     * is recorded if any candidate exists.
     */
    void lookupAll(Addr addr,
                   std::vector<const TraceSegment *> &candidates);

    /**
     * Insert @p segment, replacing any same-start segment in its set,
     * else the LRU way. The argument is consumed by swapping with the
     * replaced way, handing its instruction buffer back to the caller:
     * a fill unit that resets and reuses the same segment object
     * recycles capacity instead of allocating per insert. The
     * segment's contents after the call are unspecified.
     */
    void insert(TraceSegment &&segment);

    /** Invalidate everything. */
    void flush();

    /** Visit every resident segment (inspection/debugging). */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (const Way &way : ways_) {
            if (way.valid)
                fn(way.segment);
        }
    }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t sameStartReplacements() const
    {
        return sameStartReplacements_;
    }

    double
    hitRatio() const
    {
        return lookups_ == 0 ? 0.0
                             : static_cast<double>(hits_) / lookups_;
    }

    void dumpStats(StatDump &dump) const;

    /** Attach a tracer for `tc` trace points (null disables). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Zero the statistics counters (contents untouched). */
    void
    resetStats()
    {
        lookups_ = hits_ = inserts_ = sameStartReplacements_ = 0;
    }

    /**
     * Serialize / reload the resident segments and LRU state for
     * warm-start checkpoints. Statistics counters are NOT part of the
     * state. restoreState() rejects a blob from a different geometry.
     */
    void saveState(std::ostream &os) const;
    bool restoreState(std::istream &is);

  private:
    struct Way
    {
        TraceSegment segment;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint32_t setOf(Addr addr) const;

    TraceCacheParams params_;
    std::uint32_t numSets_;
    std::uint32_t setMask_; ///< numSets_ - 1, hoisted off the lookup path
    std::vector<Way> ways_; // numSets_ * assoc, set-major
    std::uint64_t tick_ = 0;

    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t sameStartReplacements_ = 0;

    obs::Tracer *tracer_ = nullptr;
};

} // namespace tcsim::trace

#endif // TCSIM_TRACE_TRACE_CACHE_H
