#include "trace/segment.h"

#include <sstream>

namespace tcsim::trace
{

const char *
fillReasonName(FillReason reason)
{
    switch (reason) {
      case FillReason::MaxSize: return "MaxSize";
      case FillReason::MaxBranches: return "MaxBranches";
      case FillReason::AtomicBlock: return "AtomicBlock";
      case FillReason::RetIndirTrap: return "RetIndirTrap";
      case FillReason::Resync: return "Resync";
    }
    return "?";
}

void
TraceSegment::packBranchMeta()
{
    std::uint64_t dirs = 0;
    unsigned position = 0;
    for (const TraceInst &ti : insts) {
        if (!ti.endsBlock)
            continue;
        dirs |= static_cast<std::uint64_t>(ti.builtTaken) << position;
        ++position;
    }
    blockBranchDirs = dirs;
}

void
TraceSegment::resetForReuse()
{
    startAddr = kInvalidAddr;
    insts.clear();
    reason = FillReason::MaxSize;
    numBlockBranches = 0;
    hasTightBackwardBranch = false;
    blockBranchDirs = 0;
}

std::string
TraceSegment::toString() const
{
    std::ostringstream os;
    os << "segment@0x" << std::hex << startAddr << std::dec << " ["
       << insts.size() << " insts, " << numBlockBranches << " branches, "
       << fillReasonName(reason) << "]";
    return os.str();
}

} // namespace tcsim::trace
