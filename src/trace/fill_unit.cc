#include "trace/fill_unit.h"

#include <algorithm>

#include "common/log.h"

namespace tcsim::trace
{

const char *
packingPolicyName(PackingPolicy policy)
{
    switch (policy) {
      case PackingPolicy::Atomic: return "atomic";
      case PackingPolicy::Unregulated: return "unregulated";
      case PackingPolicy::NRegulated: return "n-regulated";
      case PackingPolicy::CostRegulated: return "cost-regulated";
    }
    return "?";
}

FillUnit::FillUnit(const FillUnitParams &params, TraceCache &cache)
    : params_(params), cache_(cache), biasTable_(params.biasTable)
{
    TCSIM_ASSERT(params_.packingGranule >= 1);
    // Segment assembly runs on every retired instruction; size the
    // scratch buffers once so the steady state never reallocates.
    pending_.insts.reserve(kMaxSegmentInsts);
    curBlock_.reserve(2 * kMaxSegmentInsts);
}

void
FillUnit::noteFetchMiss(Addr pc)
{
    if (missSet_.size() > 65536)
        missSet_.clear();
    missSet_.insert(pc);
}

void
FillUnit::retire(const RetiredInst &retired)
{
    // Resynchronize segment construction with the fetch stream: if the
    // front end missed at this address and we are at a block boundary,
    // close out the pending segment so the next one starts here.
    if (!pending_.empty() && curBlock_.empty() &&
        pending_.startAddr != retired.pc &&
        missSet_.erase(retired.pc) > 0) {
        ++resyncs_;
        TCSIM_TPOINT(tracer_, Fill, "resync", "pc=0x%llx pending=0x%llx",
                     static_cast<unsigned long long>(retired.pc),
                     static_cast<unsigned long long>(pending_.startAddr));
        finalize(FillReason::Resync);
    }

    TraceInst ti;
    ti.inst = retired.inst;
    ti.pc = retired.pc;

    bool block_end = false;
    bool segment_end = false;

    const isa::Opcode op = retired.inst.op;
    if (isa::isCondBranch(op)) {
        ti.builtTaken = retired.taken;
        if (params_.staticPromotion) {
            const auto it = params_.staticPromotions.find(retired.pc);
            if (it != params_.staticPromotions.end() &&
                it->second == retired.taken) {
                ti.promoted = true;
                ti.promotedDir = it->second;
            }
        }
        if (!ti.promoted && params_.promotion) {
            // The bias table is updated at retire; the freshly updated
            // state then advises the promotion decision.
            biasTable_.update(retired.pc, retired.taken);
            const bpred::PromotionAdvice advice =
                biasTable_.advice(retired.pc);
            // Promote only when the static direction matches this
            // retirement's actual direction; otherwise the segment
            // content (built from the retired stream) would contradict
            // the embedded static prediction.
            if (advice.promote && advice.direction == retired.taken) {
                ti.promoted = true;
                ti.promotedDir = advice.direction;
            }
        }
        if (!ti.promoted) {
            ti.endsBlock = true;
            block_end = true;
        }
    } else if (isa::isReturn(op) || isa::isIndirectJump(op) ||
               isa::isSerializing(op)) {
        block_end = true;
        segment_end = true;
    }

    curBlock_.push_back(ti);

    if (block_end)
        closeBlock(segment_end);
    else if (curBlock_.size() >= kMaxSegmentInsts)
        spillOversized();
}

unsigned
FillUnit::packAllowance(unsigned free) const
{
    switch (params_.packing) {
      case PackingPolicy::Atomic:
        return 0;
      case PackingPolicy::Unregulated:
        return free;
      case PackingPolicy::NRegulated:
        return free / params_.packingGranule * params_.packingGranule;
      case PackingPolicy::CostRegulated:
        if (2 * free >= pending_.size() ||
            pending_.hasTightBackwardBranch) {
            return free;
        }
        return 0;
    }
    return 0;
}

void
FillUnit::appendToPending(const TraceInst &ti)
{
    if (pending_.empty())
        pending_.startAddr = ti.pc;
    pending_.insts.push_back(ti);
    if (ti.promoted) {
        ++promotedEmbedded_;
        TCSIM_TPOINT(tracer_, Promote, "embed", "pc=0x%llx dir=%d",
                     static_cast<unsigned long long>(ti.pc),
                     ti.promotedDir ? 1 : 0);
    }
    if (ti.endsBlock)
        ++pending_.numBlockBranches;
    if (isa::isCondBranch(ti.inst.op) && ti.inst.imm < 0 &&
        -ti.inst.imm <= 32) {
        pending_.hasTightBackwardBranch = true;
    }
}

void
FillUnit::closeBlock(bool ends_segment)
{
    std::size_t consumed = 0;
    while (consumed < curBlock_.size()) {
        const unsigned remaining =
            static_cast<unsigned>(curBlock_.size() - consumed);
        const unsigned free = kMaxSegmentInsts - pending_.size();

        if (remaining <= free) {
            // The (rest of the) block fits entirely.
            for (std::size_t i = consumed; i < curBlock_.size(); ++i)
                appendToPending(curBlock_[i]);
            consumed = curBlock_.size();
            if (pending_.size() == kMaxSegmentInsts)
                finalize(FillReason::MaxSize);
            else if (pending_.numBlockBranches >= kMaxSegmentBranches)
                finalize(FillReason::MaxBranches);
            break;
        }

        // The block does not fit; the policy decides how much (if
        // anything) spills into the pending segment.
        const unsigned take = packAllowance(free);
        if (take == 0) {
            TCSIM_ASSERT(!pending_.empty(),
                         "empty pending cannot refuse a fitting block");
            finalize(FillReason::AtomicBlock);
            continue;
        }
        for (unsigned i = 0; i < take; ++i)
            appendToPending(curBlock_[consumed + i]);
        consumed += take;
        if (pending_.size() == kMaxSegmentInsts)
            finalize(FillReason::MaxSize);
        // Otherwise loop: a reduced allowance (e.g. an n-regulated
        // remainder) finalizes as AtomicBlock on the next round.
    }

    curBlock_.clear();
    if (ends_segment)
        finalize(FillReason::RetIndirTrap);
}

void
FillUnit::spillOversized()
{
    // The accumulating block reached line size without a terminator
    // (a long payload run or a promoted-branch-extended block). Every
    // policy must split such blocks.
    std::size_t consumed = 0;
    while (curBlock_.size() - consumed >= kMaxSegmentInsts) {
        const unsigned free = kMaxSegmentInsts - pending_.size();
        if (free == 0) {
            finalize(FillReason::MaxSize);
            continue;
        }
        unsigned take = free;
        if (!pending_.empty()) {
            take = packAllowance(free);
            if (take == 0) {
                finalize(FillReason::AtomicBlock);
                continue;
            }
        }
        for (unsigned i = 0; i < take; ++i)
            appendToPending(curBlock_[consumed + i]);
        consumed += take;
        if (pending_.size() == kMaxSegmentInsts)
            finalize(FillReason::MaxSize);
    }
    curBlock_.erase(curBlock_.begin(),
                    curBlock_.begin() + static_cast<long>(consumed));
}

void
FillUnit::finalize(FillReason reason)
{
    if (pending_.empty())
        return;
    pending_.reason = reason;
    ++segmentsBuilt_;
    instsFilled_ += pending_.size();
    TCSIM_TPOINT(tracer_, Fill, "finalize",
                 "start=0x%llx size=%u branches=%u reason=%s",
                 static_cast<unsigned long long>(pending_.startAddr),
                 pending_.size(), pending_.numBlockBranches,
                 fillReasonName(reason));
    ++reasonCounts_[static_cast<unsigned>(reason)];
    // insert() swaps the replaced way's segment back into pending_;
    // resetForReuse() keeps that buffer's capacity for the next
    // segment instead of allocating one per insert.
    cache_.insert(std::move(pending_));
    pending_.resetForReuse();
}

void
FillUnit::dumpStats(StatDump &dump) const
{
    dump.add("fill_unit.segments_built",
             static_cast<double>(segmentsBuilt_));
    dump.add("fill_unit.mean_segment_size", meanSegmentSize());
    dump.add("fill_unit.promoted_embedded",
             static_cast<double>(promotedEmbedded_));
    dump.add("fill_unit.resyncs", static_cast<double>(resyncs_));
    for (unsigned r = 0; r < 5; ++r) {
        dump.add(std::string("fill_unit.reason_") +
                     fillReasonName(static_cast<FillReason>(r)),
                 static_cast<double>(reasonCounts_[r]));
    }
    if (params_.promotion)
        biasTable_.dumpStats(dump);
}

} // namespace tcsim::trace
