#include "trace/trace_cache.h"

#include <utility>

#include "common/binio.h"
#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::trace
{

TraceCache::TraceCache(const TraceCacheParams &params) : params_(params)
{
    TCSIM_ASSERT(params_.assoc >= 1);
    TCSIM_ASSERT(params_.numSegments % params_.assoc == 0);
    numSets_ = params_.numSegments / params_.assoc;
    TCSIM_ASSERT(isPowerOf2(numSets_));
    setMask_ = numSets_ - 1;
    ways_.resize(params_.numSegments);
}

std::uint32_t
TraceCache::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>(addr / isa::kInstBytes) & setMask_;
}

const TraceSegment *
TraceCache::lookup(Addr addr)
{
    ++lookups_;
    ++tick_;
    Way *base = &ways_[static_cast<std::size_t>(setOf(addr)) *
                       params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.segment.startAddr == addr) {
            ++hits_;
            way.lruStamp = tick_;
            TCSIM_TPOINT(tracer_, TC, "hit", "addr=0x%llx size=%u",
                         static_cast<unsigned long long>(addr),
                         way.segment.size());
            return &way.segment;
        }
    }
    TCSIM_TPOINT(tracer_, TC, "miss", "addr=0x%llx",
                 static_cast<unsigned long long>(addr));
    return nullptr;
}

const TraceSegment *
TraceCache::peek(Addr addr) const
{
    const Way *base = &ways_[static_cast<std::size_t>(setOf(addr)) *
                             params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        const Way &way = base[w];
        if (way.valid && way.segment.startAddr == addr)
            return &way.segment;
    }
    return nullptr;
}

namespace
{

/** @return true if two segments embed the same branch path. */
bool
samePath(const TraceSegment &a, const TraceSegment &b)
{
    if (a.size() != b.size())
        return false;
    for (unsigned i = 0; i < a.size(); ++i) {
        if (a.insts[i].pc != b.insts[i].pc ||
            a.insts[i].builtTaken != b.insts[i].builtTaken)
            return false;
    }
    return true;
}

} // namespace

void
TraceCache::lookupAll(Addr addr,
                      std::vector<const TraceSegment *> &candidates)
{
    candidates.clear();
    ++lookups_;
    ++tick_;
    Way *base = &ways_[static_cast<std::size_t>(setOf(addr)) *
                       params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.segment.startAddr == addr) {
            way.lruStamp = tick_;
            candidates.push_back(&way.segment);
        }
    }
    if (!candidates.empty()) {
        ++hits_;
        TCSIM_TPOINT(tracer_, TC, "hit", "addr=0x%llx candidates=%zu",
                     static_cast<unsigned long long>(addr),
                     candidates.size());
    } else {
        TCSIM_TPOINT(tracer_, TC, "miss", "addr=0x%llx",
                     static_cast<unsigned long long>(addr));
    }
}

void
TraceCache::insert(TraceSegment &&segment)
{
    TCSIM_ASSERT(!segment.empty());
    TCSIM_ASSERT(segment.size() <= kMaxSegmentInsts);
    // Resident segments always carry packed branch metadata: the
    // fetch engine's path compare reads blockBranchDirs, not insts.
    segment.packBranchMeta();
    ++inserts_;
    ++tick_;

    Way *base = &ways_[static_cast<std::size_t>(setOf(segment.startAddr)) *
                       params_.assoc];

    // Without path associativity a same-start segment is always
    // replaced; with it, only an identical-path segment is.
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.segment.startAddr == segment.startAddr &&
            (!params_.pathAssociativity ||
             samePath(way.segment, segment))) {
            ++sameStartReplacements_;
            TCSIM_TPOINT(tracer_, TC, "insert",
                         "addr=0x%llx size=%u same_start=1",
                         static_cast<unsigned long long>(
                             segment.startAddr),
                         segment.size());
            std::swap(way.segment, segment);
            way.lruStamp = tick_;
            return;
        }
    }

    Way *victim = base;
    for (std::uint32_t w = 1; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lruStamp < victim->lruStamp)
            victim = &way;
    }
    TCSIM_TPOINT(tracer_, TC, "insert",
                 "addr=0x%llx size=%u same_start=0 evict=%d",
                 static_cast<unsigned long long>(segment.startAddr),
                 segment.size(), victim->valid ? 1 : 0);
    std::swap(victim->segment, segment);
    victim->valid = true;
    victim->lruStamp = tick_;
}

void
TraceCache::flush()
{
    for (Way &way : ways_)
        way.valid = false;
}

void
TraceCache::dumpStats(StatDump &dump) const
{
    dump.add("trace_cache.lookups", static_cast<double>(lookups_));
    dump.add("trace_cache.hits", static_cast<double>(hits_));
    dump.add("trace_cache.hit_ratio", hitRatio());
    dump.add("trace_cache.inserts", static_cast<double>(inserts_));
    dump.add("trace_cache.same_start_replacements",
             static_cast<double>(sameStartReplacements_));
}

namespace
{

void
saveSegment(std::ostream &os, const TraceSegment &seg)
{
    binio::writeScalar(os, seg.startAddr);
    binio::writeScalar<std::uint8_t>(os,
                                     static_cast<std::uint8_t>(seg.reason));
    binio::writeScalar<std::uint32_t>(os, seg.numBlockBranches);
    binio::writeScalar<std::uint8_t>(os,
                                     seg.hasTightBackwardBranch ? 1 : 0);
    binio::writeScalar<std::uint32_t>(
        os, static_cast<std::uint32_t>(seg.insts.size()));
    for (const TraceInst &ti : seg.insts) {
        binio::writeScalar(os, isa::encode(ti.inst));
        binio::writeScalar(os, ti.pc);
        std::uint8_t flags = 0;
        flags |= ti.promoted ? 1u : 0u;
        flags |= ti.promotedDir ? 2u : 0u;
        flags |= ti.endsBlock ? 4u : 0u;
        flags |= ti.builtTaken ? 8u : 0u;
        binio::writeScalar(os, flags);
    }
}

bool
restoreSegment(std::istream &is, TraceSegment &seg)
{
    std::uint8_t reason = 0, tight = 0;
    std::uint32_t branches = 0, count = 0;
    if (!binio::readScalar(is, seg.startAddr) ||
        !binio::readScalar(is, reason) ||
        !binio::readScalar(is, branches) ||
        !binio::readScalar(is, tight) || !binio::readScalar(is, count) ||
        count > kMaxSegmentInsts) {
        return false;
    }
    seg.reason = static_cast<FillReason>(reason);
    seg.numBlockBranches = branches;
    seg.hasTightBackwardBranch = tight != 0;
    seg.insts.clear();
    seg.insts.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t word = 0;
        TraceInst ti;
        std::uint8_t flags = 0;
        if (!binio::readScalar(is, word) ||
            !binio::readScalar(is, ti.pc) ||
            !binio::readScalar(is, flags)) {
            return false;
        }
        ti.inst = isa::decode(word);
        ti.promoted = (flags & 1u) != 0;
        ti.promotedDir = (flags & 2u) != 0;
        ti.endsBlock = (flags & 4u) != 0;
        ti.builtTaken = (flags & 8u) != 0;
        seg.insts.push_back(ti);
    }
    seg.packBranchMeta();
    return true;
}

} // namespace

void
TraceCache::saveState(std::ostream &os) const
{
    binio::writeScalar(os, params_.numSegments);
    binio::writeScalar(os, params_.assoc);
    binio::writeScalar<std::uint8_t>(os,
                                     params_.pathAssociativity ? 1 : 0);
    binio::writeScalar(os, tick_);
    for (const Way &way : ways_) {
        binio::writeScalar<std::uint8_t>(os, way.valid ? 1 : 0);
        binio::writeScalar(os, way.lruStamp);
        if (way.valid)
            saveSegment(os, way.segment);
    }
}

bool
TraceCache::restoreState(std::istream &is)
{
    std::uint32_t segments = 0, assoc = 0;
    std::uint8_t path_assoc = 0;
    if (!binio::readScalar(is, segments) ||
        !binio::readScalar(is, assoc) ||
        !binio::readScalar(is, path_assoc) ||
        segments != params_.numSegments || assoc != params_.assoc ||
        (path_assoc != 0) != params_.pathAssociativity) {
        return false;
    }
    if (!binio::readScalar(is, tick_))
        return false;
    for (Way &way : ways_) {
        std::uint8_t valid = 0;
        if (!binio::readScalar(is, valid) ||
            !binio::readScalar(is, way.lruStamp)) {
            return false;
        }
        way.valid = valid != 0;
        if (way.valid && !restoreSegment(is, way.segment))
            return false;
    }
    return true;
}

} // namespace tcsim::trace
