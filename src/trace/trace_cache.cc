#include "trace/trace_cache.h"

#include <utility>

#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::trace
{

TraceCache::TraceCache(const TraceCacheParams &params) : params_(params)
{
    TCSIM_ASSERT(params_.assoc >= 1);
    TCSIM_ASSERT(params_.numSegments % params_.assoc == 0);
    numSets_ = params_.numSegments / params_.assoc;
    TCSIM_ASSERT(isPowerOf2(numSets_));
    setMask_ = numSets_ - 1;
    ways_.resize(params_.numSegments);
}

std::uint32_t
TraceCache::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>(addr / isa::kInstBytes) & setMask_;
}

const TraceSegment *
TraceCache::lookup(Addr addr)
{
    ++lookups_;
    ++tick_;
    Way *base = &ways_[static_cast<std::size_t>(setOf(addr)) *
                       params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.segment.startAddr == addr) {
            ++hits_;
            way.lruStamp = tick_;
            TCSIM_TPOINT(tracer_, TC, "hit", "addr=0x%llx size=%u",
                         static_cast<unsigned long long>(addr),
                         way.segment.size());
            return &way.segment;
        }
    }
    TCSIM_TPOINT(tracer_, TC, "miss", "addr=0x%llx",
                 static_cast<unsigned long long>(addr));
    return nullptr;
}

const TraceSegment *
TraceCache::peek(Addr addr) const
{
    const Way *base = &ways_[static_cast<std::size_t>(setOf(addr)) *
                             params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        const Way &way = base[w];
        if (way.valid && way.segment.startAddr == addr)
            return &way.segment;
    }
    return nullptr;
}

namespace
{

/** @return true if two segments embed the same branch path. */
bool
samePath(const TraceSegment &a, const TraceSegment &b)
{
    if (a.size() != b.size())
        return false;
    for (unsigned i = 0; i < a.size(); ++i) {
        if (a.insts[i].pc != b.insts[i].pc ||
            a.insts[i].builtTaken != b.insts[i].builtTaken)
            return false;
    }
    return true;
}

} // namespace

void
TraceCache::lookupAll(Addr addr,
                      std::vector<const TraceSegment *> &candidates)
{
    candidates.clear();
    ++lookups_;
    ++tick_;
    Way *base = &ways_[static_cast<std::size_t>(setOf(addr)) *
                       params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.segment.startAddr == addr) {
            way.lruStamp = tick_;
            candidates.push_back(&way.segment);
        }
    }
    if (!candidates.empty()) {
        ++hits_;
        TCSIM_TPOINT(tracer_, TC, "hit", "addr=0x%llx candidates=%zu",
                     static_cast<unsigned long long>(addr),
                     candidates.size());
    } else {
        TCSIM_TPOINT(tracer_, TC, "miss", "addr=0x%llx",
                     static_cast<unsigned long long>(addr));
    }
}

void
TraceCache::insert(TraceSegment segment)
{
    TCSIM_ASSERT(!segment.empty());
    TCSIM_ASSERT(segment.size() <= kMaxSegmentInsts);
    // Resident segments always carry packed branch metadata: the
    // fetch engine's path compare reads blockBranchDirs, not insts.
    segment.packBranchMeta();
    ++inserts_;
    ++tick_;

    Way *base = &ways_[static_cast<std::size_t>(setOf(segment.startAddr)) *
                       params_.assoc];

    // Without path associativity a same-start segment is always
    // replaced; with it, only an identical-path segment is.
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.segment.startAddr == segment.startAddr &&
            (!params_.pathAssociativity ||
             samePath(way.segment, segment))) {
            ++sameStartReplacements_;
            TCSIM_TPOINT(tracer_, TC, "insert",
                         "addr=0x%llx size=%u same_start=1",
                         static_cast<unsigned long long>(
                             segment.startAddr),
                         segment.size());
            way.segment = std::move(segment);
            way.lruStamp = tick_;
            return;
        }
    }

    Way *victim = base;
    for (std::uint32_t w = 1; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lruStamp < victim->lruStamp)
            victim = &way;
    }
    TCSIM_TPOINT(tracer_, TC, "insert",
                 "addr=0x%llx size=%u same_start=0 evict=%d",
                 static_cast<unsigned long long>(segment.startAddr),
                 segment.size(), victim->valid ? 1 : 0);
    victim->segment = std::move(segment);
    victim->valid = true;
    victim->lruStamp = tick_;
}

void
TraceCache::flush()
{
    for (Way &way : ways_)
        way.valid = false;
}

void
TraceCache::dumpStats(StatDump &dump) const
{
    dump.add("trace_cache.lookups", static_cast<double>(lookups_));
    dump.add("trace_cache.hits", static_cast<double>(hits_));
    dump.add("trace_cache.hit_ratio", hitRatio());
    dump.add("trace_cache.inserts", static_cast<double>(inserts_));
    dump.add("trace_cache.same_start_replacements",
             static_cast<double>(sameStartReplacements_));
}

} // namespace tcsim::trace
