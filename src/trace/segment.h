/**
 * @file
 * Trace segments: the unit of storage and fetch in the trace cache.
 *
 * A segment holds up to 16 instructions comprising at most three fetch
 * blocks. Blocks end at non-promoted conditional branches; promoted
 * branches are embedded mid-block with a static direction. Returns,
 * indirect jumps and serializing instructions terminate a segment;
 * unconditional jumps and calls are embedded.
 */

#ifndef TCSIM_TRACE_SEGMENT_H
#define TCSIM_TRACE_SEGMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace tcsim::trace
{

/** Maximum instructions per trace segment (one fetch line). */
constexpr unsigned kMaxSegmentInsts = 16;

/** Maximum fetch blocks (non-promoted conditional branches). */
constexpr unsigned kMaxSegmentBranches = 3;

/** Why the fill unit finalized a segment. */
enum class FillReason : std::uint8_t
{
    MaxSize,     ///< reached 16 instructions
    MaxBranches, ///< reached 3 conditional branches
    AtomicBlock, ///< next block would not fit and policy refused a split
    RetIndirTrap, ///< return / indirect jump / serializing instruction
    Resync       ///< finalized early to restart at a trace-cache miss
};

/** @return a short printable name for @p reason. */
const char *fillReasonName(FillReason reason);

/** One instruction slot within a segment. */
struct TraceInst
{
    isa::Instruction inst;
    Addr pc = 0;
    /** Conditional branch embedded with a static prediction. */
    bool promoted = false;
    /** Static direction of a promoted branch (true = taken). */
    bool promotedDir = false;
    /** Non-promoted conditional branch: ends a fetch block. */
    bool endsBlock = false;
    /** Direction the branch took when the segment was built. */
    bool builtTaken = false;

    /** @return the successor PC along the segment's embedded path. */
    Addr
    embeddedNextPc() const
    {
        if (isa::isCondBranch(inst.op)) {
            const bool dir = promoted ? promotedDir : builtTaken;
            return dir ? isa::directTarget(inst, pc)
                       : pc + isa::kInstBytes;
        }
        if (isa::isUncondDirect(inst.op))
            return isa::directTarget(inst, pc);
        return pc + isa::kInstBytes;
    }
};

/** An immutable-after-build trace segment. */
struct TraceSegment
{
    Addr startAddr = kInvalidAddr;
    std::vector<TraceInst> insts;
    FillReason reason = FillReason::MaxSize;
    /** Number of block-ending (non-promoted conditional) branches. */
    unsigned numBlockBranches = 0;
    /** Any conditional branch with backward displacement <= 32. */
    bool hasTightBackwardBranch = false;
    /**
     * builtTaken directions of the block-ending branches, packed
     * LSB-first (bit i = i-th block branch), so the fetch engine's
     * predicted-path compare works on one word instead of re-scanning
     * every instruction slot. Valid after packBranchMeta(); the trace
     * cache packs every segment on insert.
     */
    std::uint64_t blockBranchDirs = 0;

    unsigned size() const { return static_cast<unsigned>(insts.size()); }
    bool empty() const { return insts.empty(); }

    /** Recompute blockBranchDirs from insts (idempotent). */
    void packBranchMeta();

    /**
     * Reset to the freshly-constructed state while keeping the insts
     * vector's capacity, so a builder reusing one segment object does
     * not allocate per segment.
     */
    void resetForReuse();

    /** @return a one-line summary for debugging. */
    std::string toString() const;
};

} // namespace tcsim::trace

#endif // TCSIM_TRACE_SEGMENT_H
