/**
 * @file
 * The fill unit: builds trace segments from the retired instruction
 * stream and writes them into the trace cache (paper sections 4-5).
 *
 * Both of the paper's techniques live here:
 *
 *  - Branch promotion: when a retiring conditional branch's bias-table
 *    entry says it is strongly biased, it is embedded in the segment
 *    as a promoted branch with a static direction. Promoted branches
 *    do not end fetch blocks and do not count against the 3-branch
 *    segment limit.
 *
 *  - Trace packing: policy for merging an incoming fetch block into
 *    the pending segment when the block does not fit entirely:
 *      Atomic        - never split (finalize pending, start fresh);
 *      Unregulated   - split anywhere, greedily fill to 16;
 *      NRegulated(n) - split only at multiples of n instructions;
 *      CostRegulated - split only when free slots >= half the pending
 *                      segment's size OR the pending segment contains
 *                      a backward branch with displacement <= 32.
 *    Blocks larger than 16 instructions are split in every policy.
 */

#ifndef TCSIM_TRACE_FILL_UNIT_H
#define TCSIM_TRACE_FILL_UNIT_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "bpred/bias_table.h"
#include "common/stats.h"
#include "obs/trace.h"
#include "trace/segment.h"
#include "trace/trace_cache.h"

namespace tcsim::trace
{

/** Trace packing policies (paper section 5). */
enum class PackingPolicy : std::uint8_t
{
    Atomic,
    Unregulated,
    NRegulated,
    CostRegulated,
};

/** @return a short printable name for @p policy. */
const char *packingPolicyName(PackingPolicy policy);

/** Fill unit configuration. */
struct FillUnitParams
{
    PackingPolicy packing = PackingPolicy::Atomic;
    /** Chunk granularity for NRegulated. */
    std::uint32_t packingGranule = 2;
    /** Enable dynamic branch promotion (the bias table). */
    bool promotion = false;
    /** Bias table geometry/threshold (used when promotion is on). */
    bpred::BiasTableParams biasTable;
    /**
     * Static promotion (paper section 4's alternative): promote the
     * branches in staticPromotions (pc -> direction) unconditionally,
     * with no warm-up and no demotion. May be combined with dynamic
     * promotion; the static set takes precedence.
     */
    bool staticPromotion = false;
    std::unordered_map<Addr, bool> staticPromotions;
};

/** A retired instruction, as seen by the fill unit. */
struct RetiredInst
{
    isa::Instruction inst;
    Addr pc = 0;
    /** Resolved direction for conditional branches. */
    bool taken = false;
};

/** The fill unit proper. */
class FillUnit
{
  public:
    /** @param cache destination for finalized segments. */
    FillUnit(const FillUnitParams &params, TraceCache &cache);

    /** Feed one retired instruction. */
    void retire(const RetiredInst &inst);

    /**
     * Record a trace-cache miss at fetch address @p pc. When the
     * retired stream next reaches @p pc at a block boundary, the
     * pending segment is finalized so a new segment starts exactly at
     * the address the front end will look up. Without this
     * resynchronization, packed segments can drift permanently out of
     * alignment with the fetch stream (e.g. a 12-instruction loop
     * packed into 16-instruction segments never yields a segment
     * starting at the loop head).
     */
    void noteFetchMiss(Addr pc);

    /** @return promotion advice for a branch (for fetch-side stats). */
    const bpred::BranchBiasTable &biasTable() const { return biasTable_; }

    /**
     * Serialize / reload the bias-table training state for warm-start
     * checkpoints (segment-assembly state is transient and excluded).
     */
    void
    saveTrainingState(std::ostream &os) const
    {
        biasTable_.saveState(os);
    }
    bool
    restoreTrainingState(std::istream &is)
    {
        return biasTable_.restoreState(is);
    }

    /**
     * Attach a tracer for `fill`/`promote` trace points; also forwards
     * to the embedded bias table (null disables).
     */
    void
    setTracer(obs::Tracer *tracer)
    {
        tracer_ = tracer;
        biasTable_.setTracer(tracer);
    }

    std::uint64_t segmentsBuilt() const { return segmentsBuilt_; }
    std::uint64_t promotedEmbedded() const { return promotedEmbedded_; }

    /** Count of segments finalized for @p reason. */
    std::uint64_t
    reasonCount(FillReason reason) const
    {
        return reasonCounts_[static_cast<unsigned>(reason)];
    }

    /** Mean instruction count of finalized segments. */
    double
    meanSegmentSize() const
    {
        return segmentsBuilt_ == 0
                   ? 0.0
                   : static_cast<double>(instsFilled_) / segmentsBuilt_;
    }

    void dumpStats(StatDump &dump) const;

    /** Zero the statistics counters (fill state untouched). */
    void
    resetStats()
    {
        segmentsBuilt_ = instsFilled_ = promotedEmbedded_ = 0;
        resyncs_ = 0;
        for (auto &count : reasonCounts_)
            count = 0;
    }

  private:
    /** Close the currently accumulating fetch block and merge it. */
    void closeBlock(bool ends_segment);

    /** Handle a block that reached line size without terminating. */
    void spillOversized();

    /**
     * @return how many instructions of a non-fitting block the policy
     * allows into the pending segment (given @p free slots).
     */
    unsigned packAllowance(unsigned free) const;

    /** Append one instruction to the pending segment. */
    void appendToPending(const TraceInst &inst);

    /** Finalize the pending segment (no-op when empty). */
    void finalize(FillReason reason);

    FillUnitParams params_;
    TraceCache &cache_;
    bpred::BranchBiasTable biasTable_;

    TraceSegment pending_;
    std::vector<TraceInst> curBlock_;

    std::unordered_set<Addr> missSet_;

    std::uint64_t segmentsBuilt_ = 0;
    std::uint64_t instsFilled_ = 0;
    std::uint64_t promotedEmbedded_ = 0;
    std::uint64_t resyncs_ = 0;
    std::uint64_t reasonCounts_[5] = {0, 0, 0, 0, 0};

    obs::Tracer *tracer_ = nullptr;
};

} // namespace tcsim::trace

#endif // TCSIM_TRACE_FILL_UNIT_H
