/**
 * @file
 * BenchmarkProfile: the statistical knobs that shape a synthetic
 * workload.
 *
 * The paper evaluated SPECint95 plus common UNIX applications. We do
 * not have those binaries (nor SimpleScalar to run them), so each
 * benchmark is modeled by a profile that controls the properties the
 * trace cache, branch predictor and memory system actually respond
 * to: static code footprint, basic-block sizes, the branch-bias
 * mixture, loop trip counts, call/indirect/trap frequency, and data
 * working-set size. See DESIGN.md section 2 for the substitution
 * rationale.
 */

#ifndef TCSIM_WORKLOAD_PROFILE_H
#define TCSIM_WORKLOAD_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace tcsim::workload
{

/** Generation parameters for one synthetic benchmark. */
struct BenchmarkProfile
{
    /** Benchmark name (paper benchmark it stands in for). */
    std::string name;

    /** Seed for all generation randomness. */
    std::uint64_t seed = 1;

    // ------------------------------------------------------------------
    // Static code shape.
    // ------------------------------------------------------------------

    /** Number of generated functions (beyond main). */
    unsigned numFunctions = 40;

    /** Mean number of statements (structures) per function body. */
    double avgStatementsPerFunction = 9.0;

    /** Mean payload (non-control) instructions per basic block. */
    double avgBlockSize = 4.0;

    /** Maximum loop nesting depth within a function. */
    unsigned maxLoopDepth = 2;

    // ------------------------------------------------------------------
    // Statement mix (probabilities; remainder is straight-line blocks).
    // ------------------------------------------------------------------

    double loopProb = 0.22;   ///< statement is a counted loop
    double ifProb = 0.34;     ///< statement is an if or if-else
    double callProb = 0.18;   ///< statement is a call site
    double switchProb = 0.01; ///< statement is an indirect switch
    double trapProb = 0.0005; ///< statement is a serializing trap

    // ------------------------------------------------------------------
    // Loop behaviour.
    // ------------------------------------------------------------------

    /** Mean trip count of ordinary loops. */
    double avgTripCount = 12.0;

    /** Fraction of loops with high trip counts (promotable latches). */
    double highTripFrac = 0.15;

    /** Mean trip count of high-trip loops. */
    double highTripCount = 300.0;

    // ------------------------------------------------------------------
    // If-branch bias mixture (fractions of if sites; must sum <= 1;
    // the remainder are ~50/50 unpredictable branches).
    // ------------------------------------------------------------------

    /** Structurally never-taken checks (assertions, error paths). */
    double fracNeverTaken = 0.30;

    /** ~1/128..1/1024 off-direction, data-driven. */
    double fracStronglyBiased = 0.25;

    /** ~10-25% off-direction. */
    double fracModeratelyBiased = 0.25;

    // ------------------------------------------------------------------
    // Memory behaviour.
    // ------------------------------------------------------------------

    /** Probability a payload instruction is a load. */
    double loadFrac = 0.22;

    /** Probability a payload instruction is a store. */
    double storeFrac = 0.10;

    /** Random-access data working set, in KB (vs the 64 KB L1D). */
    unsigned dataWorkingSetKB = 32;

    /** Fraction of loads that hit the random-access region. */
    double randomAccessFrac = 0.15;

    // ------------------------------------------------------------------
    // Experiment defaults.
    // ------------------------------------------------------------------

    /** Default dynamic instruction budget for experiments. */
    std::uint64_t defaultMaxInsts = 2'000'000;
};

/**
 * @return a stable FNV-1a fingerprint over every generation-relevant
 * field of @p profile (doubles hashed by bit pattern). Two profiles
 * with equal fingerprints generate identical programs for a given
 * generator version; the artifact cache and the sweep work-unit
 * protocol both fold this into their content keys.
 */
std::uint64_t profileFingerprint(const BenchmarkProfile &profile);

/** @return the 15-benchmark suite mirroring the paper's Table 1. */
const std::vector<BenchmarkProfile> &benchmarkSuite();

/** @return the suite profile with the given name; fatal if absent. */
const BenchmarkProfile &findProfile(const std::string &name);

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_PROFILE_H
