/**
 * @file
 * BenchmarkProfile: the statistical knobs that shape a synthetic
 * workload.
 *
 * The paper evaluated SPECint95 plus common UNIX applications. We do
 * not have those binaries (nor SimpleScalar to run them), so each
 * benchmark is modeled by a profile that controls the properties the
 * trace cache, branch predictor and memory system actually respond
 * to: static code footprint, basic-block sizes, the branch-bias
 * mixture, loop trip counts, call/indirect/trap frequency, and data
 * working-set size. See DESIGN.md section 2 for the substitution
 * rationale.
 */

#ifndef TCSIM_WORKLOAD_PROFILE_H
#define TCSIM_WORKLOAD_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace tcsim::workload
{

/** Generation parameters for one synthetic benchmark. */
struct BenchmarkProfile
{
    /** Benchmark name (paper benchmark it stands in for). */
    std::string name;

    /** Seed for all generation randomness. */
    std::uint64_t seed = 1;

    // ------------------------------------------------------------------
    // Static code shape.
    // ------------------------------------------------------------------

    /** Number of generated functions (beyond main). */
    unsigned numFunctions = 40;

    /** Mean number of statements (structures) per function body. */
    double avgStatementsPerFunction = 9.0;

    /** Mean payload (non-control) instructions per basic block. */
    double avgBlockSize = 4.0;

    /** Maximum loop nesting depth within a function. */
    unsigned maxLoopDepth = 2;

    // ------------------------------------------------------------------
    // Statement mix (probabilities; remainder is straight-line blocks).
    // ------------------------------------------------------------------

    double loopProb = 0.22;   ///< statement is a counted loop
    double ifProb = 0.34;     ///< statement is an if or if-else
    double callProb = 0.18;   ///< statement is a call site
    double switchProb = 0.01; ///< statement is an indirect switch
    double trapProb = 0.0005; ///< statement is a serializing trap

    // ------------------------------------------------------------------
    // Loop behaviour.
    // ------------------------------------------------------------------

    /** Mean trip count of ordinary loops. */
    double avgTripCount = 12.0;

    /** Fraction of loops with high trip counts (promotable latches). */
    double highTripFrac = 0.15;

    /** Mean trip count of high-trip loops. */
    double highTripCount = 300.0;

    // ------------------------------------------------------------------
    // If-branch bias mixture (fractions of if sites; must sum <= 1;
    // the remainder are ~50/50 unpredictable branches).
    // ------------------------------------------------------------------

    /** Structurally never-taken checks (assertions, error paths). */
    double fracNeverTaken = 0.30;

    /** ~1/128..1/1024 off-direction, data-driven. */
    double fracStronglyBiased = 0.25;

    /** ~10-25% off-direction. */
    double fracModeratelyBiased = 0.25;

    // ------------------------------------------------------------------
    // Memory behaviour.
    // ------------------------------------------------------------------

    /** Probability a payload instruction is a load. */
    double loadFrac = 0.22;

    /** Probability a payload instruction is a store. */
    double storeFrac = 0.10;

    /** Random-access data working set, in KB (vs the 64 KB L1D). */
    unsigned dataWorkingSetKB = 32;

    /** Fraction of loads that hit the random-access region. */
    double randomAccessFrac = 0.15;

    // ------------------------------------------------------------------
    // Server-class extensions (Micro BTB-style front ends). All-zero
    // means "classic profile": the generator takes exactly the legacy
    // code paths and profileFingerprint() hashes exactly the legacy
    // field list, so every pre-existing fingerprint, unit hash and
    // golden stays byte-identical. Any non-zero field switches the
    // server code paths on and appends a tagged "server-ext-v1" block
    // to the fingerprint.
    // ------------------------------------------------------------------

    /**
     * Depth of the per-band helper call chains (chain_0 calls chain_1
     * calls ... chain_{depth-1}); stresses the RAS and spreads live
     * code across many icache-unfriendly regions.
     */
    unsigned serverCallChainDepth = 0;

    /**
     * Cases in each band dispatcher's indirect (jr-through-table)
     * dispatch loop; models request-type demultiplexing.
     */
    unsigned serverDispatchCases = 0;

    /** Iterations of that dispatch loop per dispatcher invocation. */
    unsigned serverDispatchTrip = 0;

    /**
     * Dead tail-padding instructions appended after each function's
     * cold blocks; inflates the static footprint without changing the
     * dynamic instruction stream shape (multi-MB-footprint knob).
     */
    unsigned serverCodePaddingInsts = 0;

    // ------------------------------------------------------------------
    // Experiment defaults.
    // ------------------------------------------------------------------

    /** Default dynamic instruction budget for experiments. */
    std::uint64_t defaultMaxInsts = 2'000'000;
};

/** @return whether any server extension field of @p profile is set. */
inline bool
isServerProfile(const BenchmarkProfile &profile)
{
    return profile.serverCallChainDepth != 0 ||
           profile.serverDispatchCases != 0 ||
           profile.serverDispatchTrip != 0 ||
           profile.serverCodePaddingInsts != 0;
}

/**
 * @return a stable FNV-1a fingerprint over every generation-relevant
 * field of @p profile (doubles hashed by bit pattern). Two profiles
 * with equal fingerprints generate identical programs for a given
 * generator version; the artifact cache and the sweep work-unit
 * protocol both fold this into their content keys.
 */
std::uint64_t profileFingerprint(const BenchmarkProfile &profile);

/** @return the 15-benchmark suite mirroring the paper's Table 1. */
const std::vector<BenchmarkProfile> &benchmarkSuite();

/**
 * @return the server-class profile set (huge code footprints, deep
 * call chains, indirect-dispatch loops, elevated trap density). Kept
 * separate from benchmarkSuite() so default sweep matrices, goldens
 * and suite-size invariants are untouched; reachable by name through
 * findProfile() and explicit --benchmarks lists.
 */
const std::vector<BenchmarkProfile> &serverSuite();

/**
 * @return the profile with the given name, searching the classic
 * suite first and then the server suite; fatal if absent.
 */
const BenchmarkProfile &findProfile(const std::string &name);

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_PROFILE_H
