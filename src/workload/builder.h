/**
 * @file
 * ProgramBuilder: an in-memory assembler for µRISC programs.
 *
 * Supports forward references through labels with fixups, data
 * allocation, and data words that hold code addresses (for jump
 * tables). The CFG-based workload generator and all hand-written test
 * programs are built through this interface.
 */

#ifndef TCSIM_WORKLOAD_BUILDER_H
#define TCSIM_WORKLOAD_BUILDER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "workload/program.h"

namespace tcsim::workload
{

/** An opaque label handle; valid only for the builder that made it. */
class Label
{
  public:
    Label() = default;

  private:
    friend class ProgramBuilder;
    explicit Label(std::uint32_t id) : id_(id), valid_(true) {}
    std::uint32_t id_ = 0;
    bool valid_ = false;
};

/** Incrementally builds a Program. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name,
                            Addr code_base = kCodeBase,
                            Addr data_base = kDataBase);

    // ------------------------------------------------------------------
    // Labels.
    // ------------------------------------------------------------------

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the current code position. */
    void bind(Label label);

    /** Create a label already bound to the current position. */
    Label here();

    /** @return the address a bound label resolves to. */
    Addr addressOf(Label label) const;

    // ------------------------------------------------------------------
    // Raw emission.
    // ------------------------------------------------------------------

    /** Append a fully formed instruction. */
    void emit(const isa::Instruction &inst);

    /** @return the address the next emitted instruction will occupy. */
    Addr pc() const;

    /** @return the number of instructions emitted so far. */
    std::size_t size() const { return code_.size(); }

    // ------------------------------------------------------------------
    // ALU convenience emitters.
    // ------------------------------------------------------------------

    void add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void div(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sll(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void srl(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sra(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void slt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sltu(RegIndex rd, RegIndex rs1, RegIndex rs2);

    void addi(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void andi(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void ori(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void xori(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void slli(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void srli(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void slti(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void lui(RegIndex rd, std::int32_t imm);

    /** Load a full 64-bit constant with a short instruction sequence. */
    void loadImm64(RegIndex rd, std::uint64_t value);

    // ------------------------------------------------------------------
    // Memory.
    // ------------------------------------------------------------------

    void ld(RegIndex rd, std::int32_t imm, RegIndex rs1);
    void st(RegIndex rs2, std::int32_t imm, RegIndex rs1);

    // ------------------------------------------------------------------
    // Control flow.
    // ------------------------------------------------------------------

    void beq(RegIndex rs1, RegIndex rs2, Label target);
    void bne(RegIndex rs1, RegIndex rs2, Label target);
    void blt(RegIndex rs1, RegIndex rs2, Label target);
    void bge(RegIndex rs1, RegIndex rs2, Label target);
    void bltu(RegIndex rs1, RegIndex rs2, Label target);
    void bgeu(RegIndex rs1, RegIndex rs2, Label target);
    void j(Label target);
    void call(Label target);
    void jr(RegIndex rs1);
    void ret();
    void trap();
    void halt();
    void nop();

    // ------------------------------------------------------------------
    // Data segment.
    // ------------------------------------------------------------------

    /**
     * Reserve @p bytes of zero-initialized data, 8-byte aligned.
     * @return the allocation's base address.
     */
    Addr allocData(std::size_t bytes);

    /** Set the 64-bit word at @p addr in the initial data image. */
    void setData(Addr addr, std::uint64_t value);

    /**
     * Arrange for the data word at @p addr to hold the address of
     * @p label once it is bound (jump-table support).
     */
    void setDataLabel(Addr addr, Label label);

    // ------------------------------------------------------------------
    // Finalization.
    // ------------------------------------------------------------------

    /** Set the entry point (defaults to the code base). */
    void setEntry(Label label);

    /**
     * Resolve all fixups and produce the program. All referenced
     * labels must be bound. The builder must not be reused afterward.
     */
    Program build();

  private:
    struct Fixup
    {
        std::size_t instIndex;
        std::uint32_t labelId;
    };

    struct DataFixup
    {
        Addr addr;
        std::uint32_t labelId;
    };

    void emitBranch(isa::Opcode op, RegIndex rs1, RegIndex rs2,
                    Label target);
    std::uint32_t requireValid(Label label) const;

    std::string name_;
    Addr codeBase_;
    Addr dataBase_;
    Addr dataNext_;
    Addr entry_;
    bool entrySet_ = false;
    bool built_ = false;
    std::vector<isa::Instruction> code_;
    std::vector<Addr> labelAddrs_;
    std::vector<bool> labelBound_;
    std::vector<Fixup> fixups_;
    std::vector<DataFixup> dataFixups_;
    std::map<Addr, std::uint64_t> data_;
};

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_BUILDER_H
