/**
 * @file
 * Architectural checkpoints for sampled simulation.
 *
 * An ArchCheckpoint is a complete snapshot of program-visible state
 * after exactly N retired instructions: PC, registers, the sparse
 * memory image, plus the two pieces of front-end history that the
 * timing processor mirrors at retire time (the global conditional-
 * branch history and the committed call/return stack). It is a pure
 * function of (program, N) — configuration-independent — so one
 * cached checkpoint warm-starts every configuration in a sweep.
 *
 * The ArchStateWalker produces checkpoints by functional execution
 * (tens of millions of instructions per second, versus the timing
 * model's ~1M/s), which is what makes SimPoint-style sampling pay:
 * fast-forwarding to a representative region costs functional speed,
 * and only the region itself runs on the detailed model.
 *
 * Serialized blobs ("TCARCKP1") are stored in the content-addressed
 * artifact cache under kind "archckpt"; the cache layer adds its own
 * checksum, so deserialization here only validates structure.
 */

#ifndef TCSIM_WORKLOAD_ARCHSTATE_H
#define TCSIM_WORKLOAD_ARCHSTATE_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/executor.h"
#include "workload/program.h"

namespace tcsim::workload
{

/** Program-visible state after instIndex retired instructions. */
struct ArchCheckpoint
{
    std::uint64_t instIndex = 0;
    Addr pc = 0;
    bool halted = false;
    std::array<RegVal, isa::kNumArchRegs> regs{};
    /** Retired conditional-branch direction history (newest in bit 0). */
    std::uint64_t history = 0;
    /** Committed return-address stack (calls push, returns pop). */
    std::vector<Addr> ras;
    /** Memory image as (page index, 4 KB bytes), ascending by index. */
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> pages;

    /** Serialize to the "TCARCKP1" binary blob. */
    std::string serialize() const;

    /** Parse a blob; empty optional on any structural mismatch. */
    static std::optional<ArchCheckpoint> deserialize(const std::string &blob);
};

/**
 * Functional executor plus the retired-stream history/RAS mirror,
 * advanced monotonically; capture() snapshots an ArchCheckpoint at
 * the current position. One walker pass can emit checkpoints at many
 * positions (sorted ascending) without re-executing the prefix.
 */
class ArchStateWalker
{
  public:
    explicit ArchStateWalker(const Program &program);
    explicit ArchStateWalker(Program &&) = delete;

    /** Execute until @p inst_index instructions have retired (or the
     * program halts). @p inst_index must not be behind the walker. */
    void advanceTo(std::uint64_t inst_index);

    /** Snapshot the current architectural state. */
    ArchCheckpoint capture() const;

    std::uint64_t instCount() const { return exec_.instCount(); }
    bool halted() const { return exec_.halted(); }
    const FunctionalExecutor &executor() const { return exec_; }

  private:
    FunctionalExecutor exec_;
    std::vector<Addr> ras_;
    std::uint64_t history_ = 0;
};

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_ARCHSTATE_H
