/**
 * @file
 * A µRISC program image: code, initial data, and entry point.
 *
 * The image is the simulator's "executable": fetch engines read
 * instructions from it by address (including down wrong paths), and
 * both the functional executor and the timing processor initialize
 * simulated memory from its data segment.
 */

#ifndef TCSIM_WORKLOAD_PROGRAM_H
#define TCSIM_WORKLOAD_PROGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace tcsim::workload
{

/** Default base address of the code segment. */
constexpr Addr kCodeBase = 0x10000;

/** Default base address of the data segment. */
constexpr Addr kDataBase = 0x4000000;

/** Default initial stack pointer (stack grows down). */
constexpr Addr kStackTop = 0x8000000;

/** An immutable program image. */
class Program
{
  public:
    /**
     * @param name human-readable benchmark name
     * @param code_base address of the first instruction
     * @param code decoded instructions, contiguous from code_base
     * @param init_data initial data image, 64-bit words keyed by address
     * @param entry the entry-point address
     */
    Program(std::string name, Addr code_base,
            std::vector<isa::Instruction> code,
            std::map<Addr, std::uint64_t> init_data, Addr entry);

    /** @return the benchmark name. */
    const std::string &name() const { return name_; }

    /** @return the entry-point address. */
    Addr entry() const { return entry_; }

    /** @return the address of the first instruction. */
    Addr codeBase() const { return codeBase_; }

    /** @return one past the last instruction address. */
    Addr codeLimit() const
    {
        return codeBase_ + code_.size() * isa::kInstBytes;
    }

    /** @return the number of static instructions. */
    std::size_t codeSize() const { return code_.size(); }

    /** @return true if @p addr holds an instruction. */
    bool
    isCode(Addr addr) const
    {
        return addr >= codeBase_ && addr < codeLimit() &&
               (addr & (isa::kInstBytes - 1)) == 0;
    }

    /**
     * @return the instruction at @p addr. Fetches outside the code
     * segment (possible on wrong paths) return a Nop so the machine
     * can keep speculating harmlessly.
     */
    const isa::Instruction &
    fetch(Addr addr) const
    {
        if (!isCode(addr))
            return nopInst_;
        return code_[(addr - codeBase_) / isa::kInstBytes];
    }

    /** @return the initial data image (word-granular). */
    const std::map<Addr, std::uint64_t> &initData() const { return data_; }

  private:
    std::string name_;
    Addr codeBase_;
    Addr entry_;
    std::vector<isa::Instruction> code_;
    std::map<Addr, std::uint64_t> data_;
    isa::Instruction nopInst_;
};

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_PROGRAM_H
