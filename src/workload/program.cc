#include "workload/program.h"

#include <utility>

#include "common/log.h"

namespace tcsim::workload
{

Program::Program(std::string name, Addr code_base,
                 std::vector<isa::Instruction> code,
                 std::map<Addr, std::uint64_t> init_data, Addr entry)
    : name_(std::move(name)), codeBase_(code_base), entry_(entry),
      code_(std::move(code)), data_(std::move(init_data))
{
    TCSIM_ASSERT(!code_.empty(), "program has no code");
    TCSIM_ASSERT((codeBase_ & (isa::kInstBytes - 1)) == 0,
                 "misaligned code base");
    TCSIM_ASSERT(isCode(entry_), "entry point outside code segment");
}

} // namespace tcsim::workload
