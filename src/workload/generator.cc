#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.h"
#include "workload/builder.h"

namespace tcsim::workload
{

namespace
{

using isa::Opcode;

// ----------------------------------------------------------------------
// Register conventions for generated code.
// ----------------------------------------------------------------------
constexpr RegIndex kRa = isa::kRegRa; // r1: link register
constexpr RegIndex kSp = 2;           // stack pointer
constexpr RegIndex kRx = 3;           // global LCG state
constexpr RegIndex kT0 = 4;           // condition scratch
constexpr RegIndex kT1 = 5;           // condition scratch
constexpr RegIndex kPtr = 6;          // function data-array pointer
constexpr RegIndex kAddrTmp = 9;      // address computation scratch
constexpr RegIndex kAcc0 = 10;        // r10..r17: payload accumulators
constexpr unsigned kNumAcc = 8;
constexpr RegIndex kCnt0 = 18;        // r18..r23: loop counters by depth
constexpr RegIndex kLcgMul = 24;      // LCG multiplier constant
constexpr RegIndex kRndBase = 25;     // random-region base constant
constexpr RegIndex kSw0 = 26;         // switch scratch
constexpr RegIndex kSw1 = 27;         // switch scratch
constexpr RegIndex kOuter = 28;       // main outer-loop counter
constexpr RegIndex kArg = 30;         // call argument

/** Bytes of the per-function payload data array. */
constexpr unsigned kFuncArrayBytes = 2048;

/** Largest trip count that may use counter-indexed addressing. */
constexpr unsigned kIndexableTrip = kFuncArrayBytes / 8 - 2;

/** Work functions per dispatcher. */
constexpr unsigned kBandSize = 12;

/** Branch-bias categories for generated if sites. */
enum class BiasKind { NeverTaken, Strong, Moderate, Random };

/**
 * Whole-program generator.
 *
 * The call structure is a strict three-level hierarchy that guarantees
 * the entire code footprint is traversed once per outer iteration of
 * main, while keeping call depth bounded:
 *
 *   main -> dispatcher_d -> work functions in band d -> leaf helpers
 *
 * "Mid" work functions (every third index) may additionally call leaf
 * helpers a few indices ahead; leaves call nothing. Loop trip counts
 * shrink with nesting depth so no single nest captures the dynamic
 * stream.
 */
class Generator
{
  public:
    explicit Generator(const BenchmarkProfile &profile)
        : prof_(profile), server_(isServerProfile(profile)),
          rng_(profile.seed), builder_(profile.name)
    {
    }

    Program run();

  private:
    struct FuncInfo
    {
        Label entry;
        bool isMid = false;
        Addr arrayBase = 0;
    };

    struct Ctx
    {
        unsigned funcIdx = 0;
        unsigned loopDepth = 0;
        unsigned ifDepth = 0;
        /** Trip count of the innermost enclosing loop (0 if none). */
        unsigned innerTrip = 0;
        /** Product of enclosing trip counts; bounds nest work. */
        unsigned tripProduct = 1;
        /** Cold (never-executed) blocks to emit after the epilogue. */
        std::vector<std::pair<Label, Label>> *coldBlocks = nullptr;
        /** Set once the enclosing function has a high-trip kernel. */
        bool *highTripUsed = nullptr;
    };

    static bool isMidIndex(unsigned idx) { return idx % 3 == 0; }

    void emitMain();
    void emitDispatcher(unsigned band);
    void emitServerDispatchLoop(unsigned band, unsigned lo, unsigned hi);
    void emitChainFunctions(unsigned band);
    void emitServerPadding();
    void emitFunction(unsigned idx);
    void emitStatements(Ctx &ctx, unsigned count);
    void emitStatement(Ctx &ctx);
    void emitLoop(Ctx &ctx);
    void emitIf(Ctx &ctx);
    void emitSwitch(Ctx &ctx);
    void emitCall(Ctx &ctx);
    void emitBlock(Ctx &ctx);
    void emitPayloadInst(Ctx &ctx);
    void emitLcgUpdate();

    /** @return the index of a leaf helper callable from @p idx, or
     * numFunctions if none exists. */
    unsigned leafCalleeFor(unsigned idx);

    void emitBiasedBranch(BiasKind kind, bool prefer_taken, Label target);
    BiasKind pickBiasKind();

    const BenchmarkProfile &prof_;
    /**
     * Server-extension gate. Every rng_ draw determines all downstream
     * bytes, so server-only emission (and its draws) must be fully
     * gated: when this is false the generator takes exactly the legacy
     * paths and legacy programs stay byte-identical (kGeneratorVersion
     * does not move).
     */
    const bool server_;
    Rng rng_;
    ProgramBuilder builder_;
    std::vector<FuncInfo> funcs_;      // work functions
    std::vector<Label> dispatchers_;
    std::vector<std::vector<Label>> chainLabels_; // [band][chain depth]
    Addr rndRegionBase_ = 0;
    unsigned rndRegionMask_ = 0; // word-index mask
    unsigned accRoundRobin_ = 0;
    RegIndex lastAccWritten_ = kAcc0;
    unsigned blocksSinceLcg_ = 0;
    unsigned shiftRoundRobin_ = 0;
    /** Per-function LCG bit position; sites within a function test
     * correlated bits so global history stays compressible. */
    unsigned funcShift_ = 16;
};

Program
Generator::run()
{
    TCSIM_ASSERT(prof_.numFunctions >= 2);
    TCSIM_ASSERT(prof_.maxLoopDepth >= 1 && prof_.maxLoopDepth <= 6);

    // Random-access region (power-of-two word count, masked accesses).
    unsigned ws_bytes = std::max(1u, prof_.dataWorkingSetKB) * 1024;
    ws_bytes = std::min(ws_bytes, 256u * 1024); // mask fits andi imm
    unsigned words = 1;
    while (words * 2 * 8 <= ws_bytes)
        words *= 2;
    rndRegionMask_ = words - 1;
    rndRegionBase_ = builder_.allocData(words * 8);
    for (unsigned w = 0; w < words; w += 8)
        builder_.setData(rndRegionBase_ + Addr{w} * 8, rng_.next());

    // Pre-create all function labels and data arrays so call sites and
    // prologues can reference them before bodies exist.
    funcs_.resize(prof_.numFunctions);
    for (unsigned i = 0; i < prof_.numFunctions; ++i) {
        funcs_[i].entry = builder_.newLabel();
        funcs_[i].isMid = isMidIndex(i);
        funcs_[i].arrayBase = builder_.allocData(kFuncArrayBytes);
        for (unsigned w = 0; w < kFuncArrayBytes / 8; w += 4) {
            builder_.setData(funcs_[i].arrayBase + Addr{w} * 8,
                             rng_.next());
        }
    }
    const unsigned num_bands =
        (prof_.numFunctions + kBandSize - 1) / kBandSize;
    dispatchers_.reserve(num_bands);
    for (unsigned d = 0; d < num_bands; ++d)
        dispatchers_.push_back(builder_.newLabel());
    if (server_ && prof_.serverCallChainDepth > 0) {
        chainLabels_.resize(num_bands);
        for (unsigned d = 0; d < num_bands; ++d) {
            chainLabels_[d].resize(prof_.serverCallChainDepth);
            for (Label &label : chainLabels_[d])
                label = builder_.newLabel();
        }
    }

    emitMain();
    for (unsigned d = 0; d < num_bands; ++d)
        emitDispatcher(d);
    for (unsigned i = 0; i < prof_.numFunctions; ++i)
        emitFunction(i);
    if (server_ && prof_.serverCallChainDepth > 0) {
        for (unsigned d = 0; d < num_bands; ++d)
            emitChainFunctions(d);
    }

    return builder_.build();
}

void
Generator::emitMain()
{
    Label entry = builder_.here();
    builder_.setEntry(entry);

    builder_.loadImm64(kSp, kStackTop);
    builder_.loadImm64(kRx, static_cast<std::uint32_t>(prof_.seed) | 1u);
    builder_.loadImm64(kLcgMul, 1664525);
    builder_.loadImm64(kRndBase, rndRegionBase_);
    builder_.loadImm64(kPtr, funcs_[0].arrayBase);
    builder_.loadImm64(kOuter, 1'000'000'000);

    Label outer = builder_.here();
    for (Label dispatcher : dispatchers_) {
        builder_.addi(kArg, isa::kRegZero,
                      static_cast<std::int32_t>(rng_.below(256)));
        builder_.call(dispatcher);
    }
    emitLcgUpdate();
    builder_.addi(kOuter, kOuter, -1);
    builder_.bne(kOuter, isa::kRegZero, outer);
    builder_.halt();
}

void
Generator::emitDispatcher(unsigned band)
{
    builder_.bind(dispatchers_[band]);
    builder_.addi(kSp, kSp, -32);
    builder_.st(kRa, 0, kSp);
    builder_.st(kCnt0, 8, kSp);

    // Real programs have strong temporal skew: a fifth of the
    // functions are hot (called several times per pass), most are
    // warm, and a fraction are cold error/setup paths.
    const unsigned lo = band * kBandSize;
    const unsigned hi =
        std::min<unsigned>(lo + kBandSize, prof_.numFunctions);
    if (server_) {
        // Server request handling: walk the band's deep helper chain
        // (RAS pressure), then demultiplex "requests" through an
        // indirect dispatch loop before the per-function sweep.
        if (prof_.serverCallChainDepth > 0)
            builder_.call(chainLabels_[band][0]);
        if (prof_.serverDispatchCases > 0 && prof_.serverDispatchTrip > 0)
            emitServerDispatchLoop(band, lo, hi);
    }
    for (unsigned f = lo; f < hi; ++f) {
        Ctx glue;
        glue.funcIdx = f;
        const unsigned n = 1 + static_cast<unsigned>(rng_.below(3));
        for (unsigned i = 0; i < n; ++i)
            emitPayloadInst(glue);

        const unsigned role = f % 5;
        if (role == 1) {
            // Hot: call in a short loop.
            const auto reps =
                static_cast<std::int32_t>(3 + rng_.below(3));
            builder_.addi(kCnt0, isa::kRegZero, reps);
            Label top = builder_.here();
            builder_.call(funcs_[f].entry);
            builder_.addi(kCnt0, kCnt0, -1);
            builder_.bne(kCnt0, isa::kRegZero, top);
        } else if (role == 4) {
            // Cold: guarded by a strongly biased skip.
            Label skip = builder_.newLabel();
            emitBiasedBranch(BiasKind::Strong, true, skip);
            builder_.call(funcs_[f].entry);
            builder_.bind(skip);
        } else if (rng_.chance(0.25)) {
            // Warm with occasional skips, so behaviour varies.
            Label skip = builder_.newLabel();
            emitBiasedBranch(BiasKind::Moderate, false, skip);
            builder_.call(funcs_[f].entry);
            builder_.bind(skip);
        } else {
            builder_.call(funcs_[f].entry);
        }
    }

    builder_.ld(kRa, 0, kSp);
    builder_.ld(kCnt0, 8, kSp);
    builder_.addi(kSp, kSp, 32);
    builder_.ret();
}

void
Generator::emitServerDispatchLoop(unsigned band, unsigned lo, unsigned hi)
{
    // Round the case count down to a power of two so the selector is a
    // plain mask of LCG bits.
    unsigned cases = 2;
    while (cases * 2 <= prof_.serverDispatchCases && cases < 256)
        cases *= 2;
    const Addr table = builder_.allocData(cases * 8);

    // Unlike emitSwitch's skewed opcode tables, server request demux
    // has no hot case: targets are uniform, which is exactly what
    // defeats a last-target indirect predictor.
    std::vector<Label> case_labels(cases);
    for (unsigned c = 0; c < cases; ++c)
        case_labels[c] = builder_.newLabel();
    for (unsigned e = 0; e < cases; ++e)
        builder_.setDataLabel(table + Addr{e} * 8, case_labels[e]);

    const unsigned shift = 7 + (band % 5) * 3;
    builder_.addi(kCnt0, isa::kRegZero,
                  static_cast<std::int32_t>(prof_.serverDispatchTrip));
    Label latch = builder_.here();
    builder_.srli(kSw0, kRx, static_cast<std::int32_t>(shift));
    builder_.andi(kSw0, kSw0, static_cast<std::int32_t>(cases - 1));
    builder_.slli(kSw0, kSw0, 3);
    builder_.loadImm64(kSw1, table);
    builder_.add(kSw0, kSw0, kSw1);
    builder_.ld(kSw0, 0, kSw0);
    builder_.jr(kSw0);

    Label check = builder_.newLabel();
    Ctx glue;
    glue.funcIdx = lo;
    for (unsigned c = 0; c < cases; ++c) {
        builder_.bind(case_labels[c]);
        const unsigned n = 1 + static_cast<unsigned>(rng_.below(2));
        for (unsigned i = 0; i < n; ++i)
            emitPayloadInst(glue);
        const unsigned target = lo + c % std::max(1u, hi - lo);
        builder_.addi(kArg, isa::kRegZero,
                      static_cast<std::int32_t>(rng_.below(256)));
        builder_.call(funcs_[target].entry);
        builder_.j(check);
    }
    builder_.bind(check);
    // Fresh LCG state per iteration so successive jr targets differ.
    emitLcgUpdate();
    builder_.addi(kCnt0, kCnt0, -1);
    builder_.bne(kCnt0, isa::kRegZero, latch);
}

void
Generator::emitChainFunctions(unsigned band)
{
    const unsigned depth = prof_.serverCallChainDepth;
    Ctx glue;
    glue.funcIdx = band * kBandSize;
    for (unsigned k = 0; k < depth; ++k) {
        builder_.bind(chainLabels_[band][k]);
        builder_.addi(kSp, kSp, -16);
        builder_.st(kRa, 0, kSp);
        const unsigned n = 1 + static_cast<unsigned>(rng_.below(3));
        for (unsigned i = 0; i < n; ++i)
            emitPayloadInst(glue);
        if (k + 1 < depth)
            builder_.call(chainLabels_[band][k + 1]);
        builder_.ld(kRa, 0, kSp);
        builder_.addi(kSp, kSp, 16);
        builder_.ret();
        emitServerPadding();
    }
}

void
Generator::emitServerPadding()
{
    // Dead code past the tail: never reached (nothing branches here),
    // it only pushes the next live region further away so the live
    // footprint spans more icache-hostile address space.
    Ctx dead;
    for (unsigned i = 0; i < prof_.serverCodePaddingInsts; ++i)
        emitPayloadInst(dead);
}

unsigned
Generator::leafCalleeFor(unsigned idx)
{
    // Leaves are the non-mid indices; search a short span ahead.
    for (unsigned step = 1; step <= 8; ++step) {
        const unsigned candidate =
            idx + 1 + static_cast<unsigned>(rng_.below(8));
        if (candidate < prof_.numFunctions && !isMidIndex(candidate))
            return candidate;
    }
    return prof_.numFunctions;
}

void
Generator::emitFunction(unsigned idx)
{
    FuncInfo &fn = funcs_[idx];
    funcShift_ = 16 + (idx * 5) % 20;
    builder_.bind(fn.entry);

    // Frame: [0] ra (mid functions call helpers), [8] ptr,
    // [16..] loop counters.
    const unsigned slots = 2 + prof_.maxLoopDepth;
    const unsigned frame = (slots * 8 + 15) & ~15u;
    builder_.addi(kSp, kSp, -static_cast<std::int32_t>(frame));
    if (fn.isMid)
        builder_.st(kRa, 0, kSp);
    builder_.st(kPtr, 8, kSp);
    for (unsigned d = 0; d < prof_.maxLoopDepth; ++d)
        builder_.st(static_cast<RegIndex>(kCnt0 + d),
                    16 + 8 * static_cast<std::int32_t>(d), kSp);
    builder_.loadImm64(kPtr, fn.arrayBase);

    std::vector<std::pair<Label, Label>> cold_blocks;
    bool high_trip_used = false;
    Ctx ctx;
    ctx.funcIdx = idx;
    ctx.coldBlocks = &cold_blocks;
    ctx.highTripUsed = &high_trip_used;

    const unsigned num_stmts = std::max<unsigned>(
        3, rng_.geometric(prof_.avgStatementsPerFunction, 3));
    emitStatements(ctx, num_stmts);

    // Epilogue.
    if (fn.isMid)
        builder_.ld(kRa, 0, kSp);
    builder_.ld(kPtr, 8, kSp);
    for (unsigned d = 0; d < prof_.maxLoopDepth; ++d)
        builder_.ld(static_cast<RegIndex>(kCnt0 + d),
                    16 + 8 * static_cast<std::int32_t>(d), kSp);
    builder_.addi(kSp, kSp, static_cast<std::int32_t>(frame));
    builder_.ret();

    // Cold error paths referenced by never-taken branches. They only
    // execute on wrong paths; each returns to its join point in case
    // speculation wanders in.
    for (const auto &[cold_label, join_label] : cold_blocks) {
        builder_.bind(cold_label);
        const unsigned n = 2 + static_cast<unsigned>(rng_.below(4));
        for (unsigned i = 0; i < n; ++i)
            emitPayloadInst(ctx);
        builder_.j(join_label);
    }
    if (server_ && prof_.serverCodePaddingInsts > 0)
        emitServerPadding();
}

void
Generator::emitStatements(Ctx &ctx, unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        emitStatement(ctx);
}

void
Generator::emitStatement(Ctx &ctx)
{
    double roll = rng_.uniform();

    if (roll < prof_.loopProb) {
        if (ctx.loopDepth < prof_.maxLoopDepth) {
            emitLoop(ctx);
            return;
        }
        roll = 1.0; // fall through to a plain block
    } else {
        roll -= prof_.loopProb;
    }

    if (roll < prof_.ifProb && ctx.ifDepth < 3) {
        emitIf(ctx);
        return;
    }
    roll -= prof_.ifProb;

    if (roll < prof_.callProb && funcs_[ctx.funcIdx].isMid &&
        ctx.tripProduct <= 8) {
        emitCall(ctx);
        return;
    }
    roll -= prof_.callProb;

    if (roll < prof_.switchProb && ctx.ifDepth == 0 &&
        ctx.tripProduct <= 32) {
        emitSwitch(ctx);
        return;
    }
    roll -= prof_.switchProb;

    if (roll < prof_.trapProb && ctx.loopDepth == 0 && ctx.ifDepth == 0) {
        // Traps serialize the pipeline; real programs take them at a
        // low rate (system calls), never inside hot inner loops.
        builder_.trap();
        return;
    }

    emitBlock(ctx);
}

void
Generator::emitLoop(Ctx &ctx)
{
    const bool outermost = ctx.loopDepth == 0;
    unsigned trip;
    bool high_trip = false;
    if (outermost && ctx.highTripUsed != nullptr && !*ctx.highTripUsed &&
        rng_.chance(prof_.highTripFrac)) {
        *ctx.highTripUsed = true;
        // High-trip kernels sit well above the paper's promotion
        // thresholds, so their latches promote and fault only once
        // per loop visit (<1% of latch executions).
        trip = rng_.geometric(std::max(prof_.highTripCount, 150.0), 120);
        trip = std::min<unsigned>(
            trip, static_cast<unsigned>(4 * prof_.highTripCount));
        high_trip = true;
    } else if (outermost) {
        // Ordinary loops stay below the default promotion threshold
        // (64): their latches are strongly biased but not promotable
        // at threshold 64, exactly the population the paper's lower
        // thresholds (8-32) prematurely promote.
        trip = rng_.geometric(prof_.avgTripCount, 2);
        trip = std::min<unsigned>(
            trip,
            std::min<unsigned>(
                static_cast<unsigned>(4 * prof_.avgTripCount), 60u));
    } else {
        // Inner loops stay moderate (learnable by 15-bit local
        // history), and shrink under big outer trips so no single
        // nest captures the dynamic stream.
        const unsigned cap = std::clamp(1200 / ctx.tripProduct, 4u, 14u);
        trip = rng_.geometric(std::min(prof_.avgTripCount, 9.0), 4);
        trip = std::min(trip, cap);
    }
    trip = std::min(trip, 2000u);

    const auto cnt = static_cast<RegIndex>(kCnt0 + ctx.loopDepth);
    builder_.addi(cnt, isa::kRegZero, static_cast<std::int32_t>(trip));
    Label top = builder_.here();

    Ctx body = ctx;
    ++body.loopDepth;
    body.innerTrip = trip;
    body.tripProduct =
        std::min(1'000'000u, ctx.tripProduct * std::max(trip, 1u));
    if (high_trip) {
        // High-trip loops model tight kernels: payload only.
        emitBlock(body);
        if (rng_.chance(0.5))
            emitBlock(body);
    } else {
        emitStatements(body, 1 + static_cast<unsigned>(rng_.below(2)));
    }

    builder_.addi(cnt, cnt, -1);
    builder_.bne(cnt, isa::kRegZero, top);
}

BiasKind
Generator::pickBiasKind()
{
    double roll = rng_.uniform();
    if (roll < prof_.fracNeverTaken)
        return BiasKind::NeverTaken;
    roll -= prof_.fracNeverTaken;
    if (roll < prof_.fracStronglyBiased)
        return BiasKind::Strong;
    roll -= prof_.fracStronglyBiased;
    if (roll < prof_.fracModeratelyBiased)
        return BiasKind::Moderate;
    return BiasKind::Random;
}

void
Generator::emitBiasedBranch(BiasKind kind, bool prefer_taken, Label target)
{
    // Sites within a function share two bit positions, so their
    // outcomes are mutually correlated while the LCG value holds --
    // real branch streams are compressible, not IID noise.
    const unsigned shift = funcShift_ + (shiftRoundRobin_++ % 2) * 4;

    switch (kind) {
      case BiasKind::NeverTaken:
        if (rng_.chance(0.5)) {
            // Structurally never taken: r0 != r0.
            builder_.bne(isa::kRegZero, isa::kRegZero, target);
        } else {
            // Data-opaque never taken: kLcgMul (1664525) < 1 is false.
            builder_.slti(kT0, kLcgMul, 1);
            builder_.bne(kT0, isa::kRegZero, target);
        }
        return;

      case BiasKind::Strong: {
        // Off-direction probability m/1024, m in [1, 8].
        const auto m = static_cast<std::int32_t>(1 + rng_.below(8));
        builder_.srli(kT0, kRx, static_cast<std::int32_t>(shift));
        builder_.andi(kT0, kT0, 1023);
        builder_.slti(kT1, kT0, m);
        if (prefer_taken)
            builder_.beq(kT1, isa::kRegZero, target); // taken 1 - m/1024
        else
            builder_.bne(kT1, isa::kRegZero, target); // taken m/1024
        return;
      }

      case BiasKind::Moderate: {
        // Off-direction probability m/256, m in [20, 38] (~8-15%).
        const auto m = static_cast<std::int32_t>(20 + rng_.below(19));
        builder_.srli(kT0, kRx, static_cast<std::int32_t>(shift));
        builder_.andi(kT0, kT0, 255);
        builder_.slti(kT1, kT0, m);
        if (prefer_taken)
            builder_.beq(kT1, isa::kRegZero, target);
        else
            builder_.bne(kT1, isa::kRegZero, target);
        return;
      }

      case BiasKind::Random: {
        // Off-direction probability in [0.25, 0.37]: even "hard"
        // branches are rarely pure coin flips.
        builder_.srli(kT0, kRx, static_cast<std::int32_t>(shift));
        builder_.andi(kT0, kT0, 255);
        const auto m = static_cast<std::int32_t>(64 + rng_.below(31));
        builder_.slti(kT1, kT0, m);
        if (prefer_taken)
            builder_.bne(kT1, isa::kRegZero, target);
        else
            builder_.beq(kT1, isa::kRegZero, target);
        return;
      }
    }
}

void
Generator::emitIf(Ctx &ctx)
{
    const BiasKind kind = pickBiasKind();
    Ctx inner = ctx;
    ++inner.ifDepth;

    if (kind == BiasKind::NeverTaken) {
        // An error check branching to an out-of-line cold block.
        Label cold = builder_.newLabel();
        emitBiasedBranch(kind, true, cold);
        Label join = builder_.here();
        ctx.coldBlocks->emplace_back(cold, join);
        emitBlock(inner);
        return;
    }

    const bool has_else = rng_.chance(0.4);
    const bool prefer_taken = rng_.chance(0.5);

    if (has_else) {
        Label else_label = builder_.newLabel();
        Label join = builder_.newLabel();
        emitBiasedBranch(kind, prefer_taken, else_label);
        emitStatements(inner, 1);
        builder_.j(join);
        builder_.bind(else_label);
        emitStatements(inner, 1);
        builder_.bind(join);
    } else {
        // Branch over the then-block.
        Label join = builder_.newLabel();
        emitBiasedBranch(kind, prefer_taken, join);
        emitStatements(inner, 1);
        builder_.bind(join);
    }
}

void
Generator::emitSwitch(Ctx &ctx)
{
    const unsigned cases = 2u << rng_.below(3); // 2, 4 or 8
    const Addr table = builder_.allocData(cases * 8);

    // Real dispatch targets are heavily skewed (one hot opcode /
    // message type); three quarters of the table entries map to the
    // first case so the last-target predictor has a fighting chance.
    std::vector<Label> case_labels(cases);
    for (unsigned c = 0; c < cases; ++c)
        case_labels[c] = builder_.newLabel();
    for (unsigned e = 0; e < cases; ++e) {
        const unsigned target_case =
            cases <= 2 ? e : (e % 4 == 0 ? 1 + e / 4 : 0);
        builder_.setDataLabel(table + Addr{e} * 8,
                              case_labels[std::min(target_case,
                                                   cases - 1)]);
    }

    const unsigned shift = funcShift_;
    builder_.srli(kSw0, kRx, static_cast<std::int32_t>(shift));
    builder_.andi(kSw0, kSw0, static_cast<std::int32_t>(cases - 1));
    builder_.slli(kSw0, kSw0, 3);
    builder_.loadImm64(kSw1, table);
    builder_.add(kSw0, kSw0, kSw1);
    builder_.ld(kSw0, 0, kSw0);
    builder_.jr(kSw0);

    Label join = builder_.newLabel();
    Ctx inner = ctx;
    ++inner.ifDepth;
    for (unsigned c = 0; c < cases; ++c) {
        builder_.bind(case_labels[c]);
        emitBlock(inner);
        builder_.j(join);
    }
    builder_.bind(join);
}

void
Generator::emitCall(Ctx &ctx)
{
    const unsigned callee = leafCalleeFor(ctx.funcIdx);
    if (callee >= prof_.numFunctions) {
        emitBlock(ctx);
        return;
    }
    builder_.addi(kArg, isa::kRegZero,
                  static_cast<std::int32_t>(rng_.below(256)));
    builder_.call(funcs_[callee].entry);
}

void
Generator::emitBlock(Ctx &ctx)
{
    if (++blocksSinceLcg_ >= 4) {
        emitLcgUpdate();
        blocksSinceLcg_ = 0;
    }
    const unsigned len =
        std::min(12u, rng_.geometric(prof_.avgBlockSize, 1));
    for (unsigned i = 0; i < len; ++i)
        emitPayloadInst(ctx);
}

void
Generator::emitLcgUpdate()
{
    builder_.mul(kRx, kRx, kLcgMul);
    builder_.addi(kRx, kRx, 12345);
}

void
Generator::emitPayloadInst(Ctx &ctx)
{
    const double roll = rng_.uniform();
    const auto acc = static_cast<RegIndex>(kAcc0 + accRoundRobin_);
    accRoundRobin_ = (accRoundRobin_ + 1) % kNumAcc;

    if (roll < prof_.loadFrac) {
        if (rng_.chance(prof_.randomAccessFrac)) {
            // Random-region load: masked index off the LCG state.
            builder_.srli(kT0, kRx, 8);
            builder_.andi(kT0, kT0,
                          static_cast<std::int32_t>(
                              std::min(rndRegionMask_, 0x7fffu)));
            builder_.slli(kT0, kT0, 3);
            builder_.add(kAddrTmp, kRndBase, kT0);
            builder_.ld(acc, 0, kAddrTmp);
        } else if (ctx.innerTrip != 0 && ctx.innerTrip <= kIndexableTrip &&
                   rng_.chance(0.3)) {
            // Counter-indexed load from the function array.
            const auto cnt =
                static_cast<RegIndex>(kCnt0 + ctx.loopDepth - 1);
            builder_.slli(kAddrTmp, cnt, 3);
            builder_.add(kAddrTmp, kPtr, kAddrTmp);
            builder_.ld(acc, 0, kAddrTmp);
        } else {
            const auto off = static_cast<std::int32_t>(
                rng_.below(kFuncArrayBytes / 8) * 8);
            builder_.ld(acc, off, kPtr);
        }
        lastAccWritten_ = acc;
        return;
    }

    if (roll < prof_.loadFrac + prof_.storeFrac) {
        const auto off = static_cast<std::int32_t>(
            rng_.below(kFuncArrayBytes / 8) * 8);
        builder_.st(lastAccWritten_, off, kPtr);
        return;
    }

    // ALU payload with a mix of chained and independent operands.
    const RegIndex src1 =
        rng_.chance(0.6) ? lastAccWritten_
                         : static_cast<RegIndex>(kAcc0 + rng_.below(kNumAcc));
    const auto src2 = static_cast<RegIndex>(kAcc0 + rng_.below(kNumAcc));
    const double op_roll = rng_.uniform();
    if (op_roll < 0.30) {
        builder_.add(acc, src1, src2);
    } else if (op_roll < 0.50) {
        builder_.xor_(acc, src1, src2);
    } else if (op_roll < 0.65) {
        builder_.sub(acc, src1, src2);
    } else if (op_roll < 0.80) {
        builder_.addi(acc, src1,
                      static_cast<std::int32_t>(rng_.below(1024)));
    } else if (op_roll < 0.90) {
        builder_.slli(acc, src1,
                      static_cast<std::int32_t>(1 + rng_.below(7)));
    } else if (op_roll < 0.97) {
        builder_.or_(acc, src1, src2);
    } else if (op_roll < 0.995) {
        builder_.mul(acc, src1, src2);
    } else {
        builder_.div(acc, src1, src2);
    }
    lastAccWritten_ = acc;
}

} // namespace

Program
generateProgram(const BenchmarkProfile &profile)
{
    Generator generator(profile);
    return generator.run();
}

} // namespace tcsim::workload
