#include "workload/serialize.h"

#include <cstring>
#include <fstream>
#include <optional>
#include <vector>

#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::workload
{

namespace
{

constexpr char kMagic[8] = {'T', 'C', 'S', 'I', 'M', 'P', 'R', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
readScalar(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(is);
}

} // namespace

bool
saveProgram(const Program &program, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    writeScalar<std::uint32_t>(os, kVersion);

    const std::string &name = program.name();
    writeScalar<std::uint32_t>(os,
                               static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));

    writeScalar<std::uint64_t>(os, program.codeBase());
    writeScalar<std::uint64_t>(os, program.entry());
    writeScalar<std::uint64_t>(os, program.codeSize());
    for (Addr addr = program.codeBase(); addr < program.codeLimit();
         addr += isa::kInstBytes) {
        writeScalar<std::uint32_t>(os, isa::encode(program.fetch(addr)));
    }

    writeScalar<std::uint64_t>(os, program.initData().size());
    for (const auto &[addr, value] : program.initData()) {
        writeScalar<std::uint64_t>(os, addr);
        writeScalar<std::uint64_t>(os, value);
    }
    return static_cast<bool>(os);
}

bool
saveProgram(const Program &program, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && saveProgram(program, os);
}

std::optional<Program>
loadProgram(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    std::uint32_t version = 0;
    if (!readScalar(is, version) || version != kVersion)
        return std::nullopt;

    std::uint32_t name_len = 0;
    if (!readScalar(is, name_len) || name_len > 4096)
        return std::nullopt;
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);

    std::uint64_t code_base = 0, entry = 0, code_size = 0;
    if (!readScalar(is, code_base) || !readScalar(is, entry) ||
        !readScalar(is, code_size) || code_size == 0 ||
        code_size > (1ULL << 26)) {
        return std::nullopt;
    }
    std::vector<isa::Instruction> code;
    code.reserve(code_size);
    for (std::uint64_t i = 0; i < code_size; ++i) {
        std::uint32_t word = 0;
        if (!readScalar(is, word))
            return std::nullopt;
        code.push_back(isa::decode(word));
    }

    std::uint64_t data_count = 0;
    if (!readScalar(is, data_count) || data_count > (1ULL << 28))
        return std::nullopt;
    std::map<Addr, std::uint64_t> data;
    for (std::uint64_t i = 0; i < data_count; ++i) {
        std::uint64_t addr = 0, value = 0;
        if (!readScalar(is, addr) || !readScalar(is, value))
            return std::nullopt;
        data.emplace(addr, value);
    }

    return Program(std::move(name), code_base, std::move(code),
                   std::move(data), entry);
}

std::optional<Program>
loadProgram(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    return loadProgram(is);
}

} // namespace tcsim::workload
