#include "workload/archstate.h"

#include <sstream>

#include "common/binio.h"
#include "common/log.h"

namespace tcsim::workload
{

namespace
{

constexpr char kMagic[] = "TCARCKP1";
constexpr std::uint32_t kVersion = 1;

} // namespace

std::string
ArchCheckpoint::serialize() const
{
    std::ostringstream os(std::ios::binary);
    binio::writeMagic(os, kMagic);
    binio::writeScalar(os, kVersion);
    binio::writeScalar(os, instIndex);
    binio::writeScalar(os, pc);
    binio::writeScalar(os, static_cast<std::uint8_t>(halted));
    binio::writeScalar(os, static_cast<std::uint32_t>(regs.size()));
    for (const RegVal reg : regs)
        binio::writeScalar(os, reg);
    binio::writeScalar(os, history);
    binio::writeScalar(os, static_cast<std::uint64_t>(ras.size()));
    for (const Addr addr : ras)
        binio::writeScalar(os, addr);
    binio::writeScalar(os, static_cast<std::uint64_t>(pages.size()));
    for (const auto &[index, bytes] : pages) {
        TCSIM_ASSERT(bytes.size() == SparseMemory::kPageBytes);
        binio::writeScalar(os, index);
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    return os.str();
}

std::optional<ArchCheckpoint>
ArchCheckpoint::deserialize(const std::string &blob)
{
    std::istringstream is(blob, std::ios::binary);
    if (!binio::expectMagic(is, kMagic))
        return std::nullopt;
    std::uint32_t version = 0;
    if (!binio::readScalar(is, version) || version != kVersion)
        return std::nullopt;

    ArchCheckpoint ckpt;
    std::uint8_t halted_byte = 0;
    std::uint32_t num_regs = 0;
    if (!binio::readScalar(is, ckpt.instIndex) ||
        !binio::readScalar(is, ckpt.pc) ||
        !binio::readScalar(is, halted_byte) ||
        !binio::readScalar(is, num_regs) ||
        num_regs != ckpt.regs.size()) {
        return std::nullopt;
    }
    ckpt.halted = halted_byte != 0;
    for (RegVal &reg : ckpt.regs) {
        if (!binio::readScalar(is, reg))
            return std::nullopt;
    }

    std::uint64_t ras_size = 0;
    if (!binio::readScalar(is, ckpt.history) ||
        !binio::readScalar(is, ras_size) || ras_size > (1u << 20)) {
        return std::nullopt;
    }
    ckpt.ras.resize(ras_size);
    for (Addr &addr : ckpt.ras) {
        if (!binio::readScalar(is, addr))
            return std::nullopt;
    }

    std::uint64_t num_pages = 0;
    if (!binio::readScalar(is, num_pages) || num_pages > (1u << 24))
        return std::nullopt;
    ckpt.pages.resize(num_pages);
    Addr prev_index = 0;
    bool first = true;
    for (auto &[index, bytes] : ckpt.pages) {
        if (!binio::readScalar(is, index))
            return std::nullopt;
        if (!first && index <= prev_index)
            return std::nullopt; // must be strictly ascending
        first = false;
        prev_index = index;
        bytes.resize(SparseMemory::kPageBytes);
        is.read(reinterpret_cast<char *>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        if (!is)
            return std::nullopt;
    }
    // No trailing garbage.
    is.peek();
    if (!is.eof())
        return std::nullopt;
    return ckpt;
}

ArchStateWalker::ArchStateWalker(const Program &program) : exec_(program)
{
}

void
ArchStateWalker::advanceTo(std::uint64_t inst_index)
{
    TCSIM_ASSERT(inst_index >= exec_.instCount(),
                 "ArchStateWalker cannot rewind (at %llu, asked %llu)",
                 static_cast<unsigned long long>(exec_.instCount()),
                 static_cast<unsigned long long>(inst_index));
    while (exec_.instCount() < inst_index && !exec_.halted()) {
        const StepResult step = exec_.step();
        // Mirror the timing processor's retired-stream bookkeeping
        // (processor.cc retireOne): history shifts on conditional
        // branches, calls push / returns pop the committed RAS.
        const isa::Opcode op = step.inst.op;
        if (isa::isCondBranch(op)) {
            history_ = (history_ << 1) |
                       static_cast<std::uint64_t>(step.taken);
        } else if (isa::isCall(op)) {
            ras_.push_back(step.pc + isa::kInstBytes);
        } else if (isa::isReturn(op)) {
            if (!ras_.empty())
                ras_.pop_back();
        }
    }
}

ArchCheckpoint
ArchStateWalker::capture() const
{
    ArchCheckpoint ckpt;
    ckpt.instIndex = exec_.instCount();
    ckpt.pc = exec_.pc();
    ckpt.halted = exec_.halted();
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        ckpt.regs[r] = exec_.reg(static_cast<RegIndex>(r));
    ckpt.history = history_;
    ckpt.ras = ras_;
    for (const Addr index : exec_.memory().pageIndices()) {
        const std::uint8_t *data = exec_.memory().pageData(index);
        ckpt.pages.emplace_back(
            index, std::vector<std::uint8_t>(
                       data, data + SparseMemory::kPageBytes));
    }
    return ckpt;
}

} // namespace tcsim::workload
