#include "workload/characterize.h"

#include <unordered_set>

namespace tcsim::workload
{

namespace
{

struct SiteStats
{
    std::uint64_t taken = 0;
    std::uint64_t total = 0;
};

} // namespace

WorkloadStats
characterize(const Program &program, std::uint64_t max_insts)
{
    FunctionalExecutor exec(program);
    WorkloadStats ws;

    std::unordered_map<Addr, SiteStats> sites;
    std::unordered_map<Addr, std::pair<bool, std::uint64_t>> runs;
    std::unordered_set<Addr> touched;
    std::uint64_t long_run_execs = 0;
    std::uint64_t block_len = 0;

    while (!exec.halted() && ws.instCount < max_insts) {
        const StepResult step = exec.step();
        ++ws.instCount;
        touched.insert(step.pc);
        ++block_len;

        const isa::Opcode op = step.inst.op;
        bool ends_block = false;
        if (isa::isCondBranch(op)) {
            ++ws.condBranches;
            if (step.taken)
                ++ws.condTaken;
            ends_block = true;

            SiteStats &site = sites[step.pc];
            ++site.total;
            if (step.taken)
                ++site.taken;

            auto &[run_dir, run_len] = runs[step.pc];
            if (run_len > 0 && run_dir == step.taken) {
                ++run_len;
            } else {
                run_dir = step.taken;
                run_len = 1;
            }
            if (run_len > 64)
                ++long_run_execs;
        } else if (isa::isCall(op)) {
            ++ws.calls;
        } else if (isa::isReturn(op)) {
            ++ws.returns;
            ends_block = true;
        } else if (isa::isIndirectJump(op)) {
            ++ws.indirectJumps;
            ends_block = true;
        } else if (isa::isUncondDirect(op)) {
            ++ws.uncondJumps;
        } else if (op == isa::Opcode::Trap) {
            ++ws.traps;
            ends_block = true;
        } else if (isa::isLoad(op)) {
            ++ws.loads;
        } else if (isa::isStore(op)) {
            ++ws.stores;
        }

        if (ends_block) {
            ws.fillBlockHist.sample(
                static_cast<unsigned>(std::min<std::uint64_t>(block_len,
                                                              16)));
            block_len = 0;
        }
    }

    ws.halted = exec.halted();
    ws.touchedCodeAddrs = touched.size();
    ws.avgFillBlockSize = ws.fillBlockHist.mean();

    std::uint64_t strongly_biased_dyn = 0;
    for (const auto &[addr, site] : sites) {
        (void)addr;
        const double bias =
            static_cast<double>(std::max(site.taken,
                                         site.total - site.taken)) /
            site.total;
        if (bias >= 0.99)
            strongly_biased_dyn += site.total;
    }
    if (ws.condBranches > 0) {
        ws.fracDynStronglyBiased =
            static_cast<double>(strongly_biased_dyn) / ws.condBranches;
        ws.fracDynLongRun =
            static_cast<double>(long_run_execs) / ws.condBranches;
    }
    return ws;
}

std::unordered_map<Addr, bool>
profileStronglyBiased(const Program &program, std::uint64_t max_insts,
                      double min_bias, std::uint64_t min_executions)
{
    FunctionalExecutor exec(program);
    std::unordered_map<Addr, SiteStats> sites;
    std::uint64_t executed = 0;
    while (!exec.halted() && executed < max_insts) {
        const StepResult step = exec.step();
        ++executed;
        if (isa::isCondBranch(step.inst.op)) {
            SiteStats &site = sites[step.pc];
            ++site.total;
            if (step.taken)
                ++site.taken;
        }
    }

    std::unordered_map<Addr, bool> biased;
    for (const auto &[pc, site] : sites) {
        if (site.total < min_executions)
            continue;
        const std::uint64_t dominant =
            std::max(site.taken, site.total - site.taken);
        if (static_cast<double>(dominant) / site.total >= min_bias)
            biased.emplace(pc, site.taken * 2 >= site.total);
    }
    return biased;
}

} // namespace tcsim::workload
