/**
 * @file
 * The 15-benchmark suite mirroring the paper's Table 1.
 *
 * Each profile is a caricature of the corresponding SPECint95 / UNIX
 * application, expressed in the statistical dimensions the front end
 * responds to. The values were tuned (see EXPERIMENTS.md) so the
 * baseline configuration lands near the paper's aggregates: icache
 * effective fetch rate ~5, trace cache baseline ~10.5-10.7, baseline
 * conditional misprediction rate ~8%, and >50% of dynamic branches
 * strongly biased.
 */

#include "workload/profile.h"

#include "common/fnv.h"
#include "common/log.h"

namespace tcsim::workload
{

namespace
{

std::vector<BenchmarkProfile>
makeSuite()
{
    std::vector<BenchmarkProfile> suite;

    // SPECint95 ------------------------------------------------------

    { // compress: tiny kernel, tight loops, data-dependent branches.
        BenchmarkProfile p;
        p.name = "compress";
        p.seed = 0xC0111;
        p.numFunctions = 14;
        p.avgStatementsPerFunction = 8;
        p.avgBlockSize = 3.5;
        p.loopProb = 0.30;
        p.avgTripCount = 76.8;
        p.highTripFrac = 0.15;
        p.fracNeverTaken = 0.22;
        p.fracStronglyBiased = 0.22;
        p.fracModeratelyBiased = 0.30;
        p.dataWorkingSetKB = 256;
        p.randomAccessFrac = 0.30;
        suite.push_back(p);
    }
    { // gcc: very large, branchy code with small blocks.
        BenchmarkProfile p;
        p.name = "gcc";
        p.seed = 0x6CC;
        p.numFunctions = 460;
        p.avgStatementsPerFunction = 10;
        p.avgBlockSize = 2.3;
        p.loopProb = 0.16;
        p.ifProb = 0.40;
        p.callProb = 0.21;
        p.avgTripCount = 22.4;
        p.highTripFrac = 0.1;
        p.fracNeverTaken = 0.30;
        p.fracStronglyBiased = 0.24;
        p.fracModeratelyBiased = 0.24;
        p.dataWorkingSetKB = 128;
        suite.push_back(p);
    }
    { // go: large, extremely branchy, hard-to-predict decisions.
        BenchmarkProfile p;
        p.name = "go";
        p.seed = 0x60;
        p.numFunctions = 380;
        p.avgStatementsPerFunction = 10;
        p.avgBlockSize = 2.6;
        p.loopProb = 0.14;
        p.ifProb = 0.44;
        p.avgTripCount = 19.2;
        p.highTripFrac = 0.08;
        p.fracNeverTaken = 0.24;
        p.fracStronglyBiased = 0.20;
        p.fracModeratelyBiased = 0.26;
        p.dataWorkingSetKB = 64;
        suite.push_back(p);
    }
    { // ijpeg: small code, high-trip loops, large blocks.
        BenchmarkProfile p;
        p.name = "ijpeg";
        p.seed = 0x1395;
        p.numFunctions = 40;
        p.avgStatementsPerFunction = 8;
        p.avgBlockSize = 4.5;
        p.loopProb = 0.34;
        p.ifProb = 0.22;
        p.avgTripCount = 80;
        p.highTripFrac = 0.2;
        p.highTripCount = 120;
        p.fracNeverTaken = 0.34;
        p.fracStronglyBiased = 0.30;
        p.fracModeratelyBiased = 0.20;
        p.dataWorkingSetKB = 96;
        suite.push_back(p);
    }
    { // li: lisp interpreter, call/return heavy, dispatch switches.
        BenchmarkProfile p;
        p.name = "li";
        p.seed = 0x115;
        p.numFunctions = 70;
        p.avgStatementsPerFunction = 7;
        p.avgBlockSize = 1.8;
        p.loopProb = 0.12;
        p.ifProb = 0.36;
        p.callProb = 0.36;
        p.switchProb = 0.025;
        p.avgTripCount = 19.2;
        p.fracNeverTaken = 0.28;
        p.fracStronglyBiased = 0.26;
        p.fracModeratelyBiased = 0.24;
        p.dataWorkingSetKB = 48;
        suite.push_back(p);
    }
    { // m88ksim: CPU simulator, decode switches, biased checks.
        BenchmarkProfile p;
        p.name = "m88ksim";
        p.seed = 0x88;
        p.numFunctions = 110;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 3.3;
        p.loopProb = 0.20;
        p.switchProb = 0.015;
        p.trapProb = 0.002;
        p.avgTripCount = 44.8;
        p.highTripFrac = 0.17;
        p.fracNeverTaken = 0.34;
        p.fracStronglyBiased = 0.28;
        p.fracModeratelyBiased = 0.22;
        p.dataWorkingSetKB = 64;
        suite.push_back(p);
    }
    { // perl: interpreter, large code, dispatch switches, calls.
        BenchmarkProfile p;
        p.name = "perl";
        p.seed = 0x9e71;
        p.numFunctions = 260;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 2.6;
        p.loopProb = 0.14;
        p.ifProb = 0.38;
        p.callProb = 0.27;
        p.switchProb = 0.02;
        p.avgTripCount = 25.6;
        p.fracNeverTaken = 0.30;
        p.fracStronglyBiased = 0.24;
        p.fracModeratelyBiased = 0.24;
        p.dataWorkingSetKB = 96;
        suite.push_back(p);
    }
    { // vortex: OO database, very call-heavy, strongly biased checks.
        BenchmarkProfile p;
        p.name = "vortex";
        p.seed = 0x0537e;
        p.numFunctions = 420;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 3.2;
        p.loopProb = 0.14;
        p.ifProb = 0.34;
        p.callProb = 0.4;
        p.avgTripCount = 25.6;
        p.fracNeverTaken = 0.42;
        p.fracStronglyBiased = 0.30;
        p.fracModeratelyBiased = 0.16;
        p.dataWorkingSetKB = 256;
        p.randomAccessFrac = 0.25;
        suite.push_back(p);
    }

    // Common UNIX applications ----------------------------------------

    { // gnuchess: game-tree search, recursive, mixed predictability.
        BenchmarkProfile p;
        p.name = "gnuchess";
        p.seed = 0xC4e55;
        p.numFunctions = 130;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 2.4;
        p.loopProb = 0.20;
        p.ifProb = 0.38;
        p.callProb = 0.24;
        p.avgTripCount = 32;
        p.fracNeverTaken = 0.24;
        p.fracStronglyBiased = 0.24;
        p.fracModeratelyBiased = 0.28;
        p.dataWorkingSetKB = 48;
        suite.push_back(p);
    }
    { // ghostscript: large renderer, loops plus branchy setup code.
        BenchmarkProfile p;
        p.name = "ghostscript";
        p.seed = 0x65;
        p.numFunctions = 340;
        p.avgStatementsPerFunction = 10;
        p.avgBlockSize = 3.2;
        p.loopProb = 0.20;
        p.avgTripCount = 57.6;
        p.highTripFrac = 0.17;
        p.fracNeverTaken = 0.30;
        p.fracStronglyBiased = 0.26;
        p.fracModeratelyBiased = 0.22;
        p.dataWorkingSetKB = 128;
        suite.push_back(p);
    }
    { // pgp: crypto kernels, very high-trip loops, large blocks.
        BenchmarkProfile p;
        p.name = "pgp";
        p.seed = 0x969;
        p.numFunctions = 90;
        p.avgStatementsPerFunction = 8;
        p.avgBlockSize = 4.6;
        p.loopProb = 0.30;
        p.ifProb = 0.24;
        p.avgTripCount = 80;
        p.highTripFrac = 0.2;
        p.highTripCount = 150;
        p.fracNeverTaken = 0.32;
        p.fracStronglyBiased = 0.30;
        p.fracModeratelyBiased = 0.20;
        p.dataWorkingSetKB = 32;
        suite.push_back(p);
    }
    { // python: bytecode interpreter, dispatch-dominated.
        BenchmarkProfile p;
        p.name = "python";
        p.seed = 0x9717;
        p.numFunctions = 240;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 1.8;
        p.loopProb = 0.14;
        p.ifProb = 0.36;
        p.callProb = 0.27;
        p.switchProb = 0.025;
        p.avgTripCount = 25.6;
        p.fracNeverTaken = 0.28;
        p.fracStronglyBiased = 0.26;
        p.fracModeratelyBiased = 0.24;
        p.dataWorkingSetKB = 96;
        suite.push_back(p);
    }
    { // gnuplot: plotting loops, strongly biased but flip-prone.
        BenchmarkProfile p;
        p.name = "gnuplot";
        p.seed = 0x9107;
        p.numFunctions = 120;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 3.6;
        p.loopProb = 0.26;
        p.avgTripCount = 96;
        p.highTripFrac = 0.23;
        p.fracNeverTaken = 0.22;
        p.fracStronglyBiased = 0.40;
        p.fracModeratelyBiased = 0.18;
        p.dataWorkingSetKB = 64;
        suite.push_back(p);
    }
    { // sim-outorder: simulator main loop, large branchy switch code.
        BenchmarkProfile p;
        p.name = "sim-outorder";
        p.seed = 0x5005;
        p.numFunctions = 220;
        p.avgStatementsPerFunction = 10;
        p.avgBlockSize = 2.0;
        p.loopProb = 0.18;
        p.ifProb = 0.38;
        p.switchProb = 0.015;
        p.avgTripCount = 32;
        p.fracNeverTaken = 0.30;
        p.fracStronglyBiased = 0.26;
        p.fracModeratelyBiased = 0.24;
        p.dataWorkingSetKB = 128;
        suite.push_back(p);
    }
    { // tex: large code, long straight-line runs, deep call chains.
        BenchmarkProfile p;
        p.name = "tex";
        p.seed = 0x7e8;
        p.numFunctions = 380;
        p.avgStatementsPerFunction = 10;
        p.avgBlockSize = 4.4;
        p.loopProb = 0.18;
        p.ifProb = 0.30;
        p.callProb = 0.27;
        p.avgTripCount = 38.4;
        p.fracNeverTaken = 0.36;
        p.fracStronglyBiased = 0.28;
        p.fracModeratelyBiased = 0.18;
        p.dataWorkingSetKB = 64;
        suite.push_back(p);
    }

    return suite;
}

std::vector<BenchmarkProfile>
makeServerSuite()
{
    std::vector<BenchmarkProfile> suite;

    { // server-oltp: transaction dispatch, huge footprint, deep chains.
        BenchmarkProfile p;
        p.name = "server-oltp";
        p.seed = 0x5E4501;
        p.numFunctions = 640;
        p.avgStatementsPerFunction = 10;
        p.avgBlockSize = 2.4;
        p.loopProb = 0.12;
        p.ifProb = 0.40;
        p.callProb = 0.27;
        p.switchProb = 0.02;
        p.trapProb = 0.004;
        p.avgTripCount = 19.2;
        p.highTripFrac = 0.06;
        p.fracNeverTaken = 0.32;
        p.fracStronglyBiased = 0.26;
        p.fracModeratelyBiased = 0.22;
        p.dataWorkingSetKB = 512;
        p.randomAccessFrac = 0.30;
        p.serverCallChainDepth = 12;
        p.serverDispatchCases = 16;
        p.serverDispatchTrip = 6;
        p.serverCodePaddingInsts = 96;
        suite.push_back(p);
    }
    { // server-web: request demux loops, moderate chains, trap-dense.
        BenchmarkProfile p;
        p.name = "server-web";
        p.seed = 0x5E4502;
        p.numFunctions = 480;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 2.8;
        p.loopProb = 0.16;
        p.ifProb = 0.38;
        p.callProb = 0.24;
        p.switchProb = 0.015;
        p.trapProb = 0.006;
        p.avgTripCount = 25.6;
        p.highTripFrac = 0.08;
        p.fracNeverTaken = 0.30;
        p.fracStronglyBiased = 0.28;
        p.fracModeratelyBiased = 0.22;
        p.dataWorkingSetKB = 256;
        p.randomAccessFrac = 0.25;
        p.serverCallChainDepth = 8;
        p.serverDispatchCases = 32;
        p.serverDispatchTrip = 4;
        p.serverCodePaddingInsts = 64;
        suite.push_back(p);
    }
    { // server-cache: key-value hot loop behind a fat dispatch layer.
        BenchmarkProfile p;
        p.name = "server-cache";
        p.seed = 0x5E4503;
        p.numFunctions = 520;
        p.avgStatementsPerFunction = 9;
        p.avgBlockSize = 2.2;
        p.loopProb = 0.14;
        p.ifProb = 0.40;
        p.callProb = 0.26;
        p.switchProb = 0.025;
        p.trapProb = 0.003;
        p.avgTripCount = 16;
        p.highTripFrac = 0.05;
        p.fracNeverTaken = 0.34;
        p.fracStronglyBiased = 0.26;
        p.fracModeratelyBiased = 0.22;
        p.dataWorkingSetKB = 384;
        p.randomAccessFrac = 0.35;
        p.serverCallChainDepth = 16;
        p.serverDispatchCases = 8;
        p.serverDispatchTrip = 8;
        p.serverCodePaddingInsts = 128;
        suite.push_back(p);
    }

    return suite;
}

} // namespace

std::uint64_t
profileFingerprint(const BenchmarkProfile &profile)
{
    // Every field participates; adding a profile knob without folding
    // it in here would let two differing profiles share a fingerprint,
    // so keep this list in sync with BenchmarkProfile.
    std::uint64_t hash = fnv1aAppend(kFnvOffsetBasis, profile.name);
    hash = fnv1aAppendScalar(hash, profile.seed);
    hash = fnv1aAppendScalar(hash, profile.numFunctions);
    hash = fnv1aAppendScalar(hash, profile.avgStatementsPerFunction);
    hash = fnv1aAppendScalar(hash, profile.avgBlockSize);
    hash = fnv1aAppendScalar(hash, profile.maxLoopDepth);
    hash = fnv1aAppendScalar(hash, profile.loopProb);
    hash = fnv1aAppendScalar(hash, profile.ifProb);
    hash = fnv1aAppendScalar(hash, profile.callProb);
    hash = fnv1aAppendScalar(hash, profile.switchProb);
    hash = fnv1aAppendScalar(hash, profile.trapProb);
    hash = fnv1aAppendScalar(hash, profile.avgTripCount);
    hash = fnv1aAppendScalar(hash, profile.highTripFrac);
    hash = fnv1aAppendScalar(hash, profile.highTripCount);
    hash = fnv1aAppendScalar(hash, profile.fracNeverTaken);
    hash = fnv1aAppendScalar(hash, profile.fracStronglyBiased);
    hash = fnv1aAppendScalar(hash, profile.fracModeratelyBiased);
    hash = fnv1aAppendScalar(hash, profile.loadFrac);
    hash = fnv1aAppendScalar(hash, profile.storeFrac);
    hash = fnv1aAppendScalar(hash, profile.dataWorkingSetKB);
    hash = fnv1aAppendScalar(hash, profile.randomAccessFrac);
    hash = fnv1aAppendScalar(hash, profile.defaultMaxInsts);
    // Server extension fields join the hash only when one is set, under
    // a version tag (same pattern as the "mem-ext-v1" config block):
    // classic profiles keep their historical fingerprints bit-for-bit,
    // so no cached artifact, unit hash or golden moves.
    if (isServerProfile(profile)) {
        hash = fnv1aAppend(hash, "server-ext-v1");
        hash = fnv1aAppendScalar(hash, profile.serverCallChainDepth);
        hash = fnv1aAppendScalar(hash, profile.serverDispatchCases);
        hash = fnv1aAppendScalar(hash, profile.serverDispatchTrip);
        hash = fnv1aAppendScalar(hash, profile.serverCodePaddingInsts);
    }
    return hash;
}

const std::vector<BenchmarkProfile> &
benchmarkSuite()
{
    static const std::vector<BenchmarkProfile> suite = makeSuite();
    return suite;
}

const std::vector<BenchmarkProfile> &
serverSuite()
{
    static const std::vector<BenchmarkProfile> suite = makeServerSuite();
    return suite;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const BenchmarkProfile &profile : benchmarkSuite()) {
        if (profile.name == name)
            return profile;
    }
    for (const BenchmarkProfile &profile : serverSuite()) {
        if (profile.name == name)
            return profile;
    }
    fatal("no benchmark profile named '%s'", name.c_str());
}

} // namespace tcsim::workload
