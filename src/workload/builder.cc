#include "workload/builder.h"

#include <utility>

#include "common/log.h"

namespace tcsim::workload
{

using isa::Instruction;
using isa::Opcode;

ProgramBuilder::ProgramBuilder(std::string name, Addr code_base,
                               Addr data_base)
    : name_(std::move(name)), codeBase_(code_base), dataBase_(data_base),
      dataNext_(data_base), entry_(code_base)
{
    TCSIM_ASSERT((code_base & (isa::kInstBytes - 1)) == 0);
    TCSIM_ASSERT((data_base & 7) == 0);
}

Label
ProgramBuilder::newLabel()
{
    const auto id = static_cast<std::uint32_t>(labelAddrs_.size());
    labelAddrs_.push_back(kInvalidAddr);
    labelBound_.push_back(false);
    return Label(id);
}

void
ProgramBuilder::bind(Label label)
{
    const std::uint32_t id = requireValid(label);
    TCSIM_ASSERT(!labelBound_[id], "label bound twice");
    labelAddrs_[id] = pc();
    labelBound_[id] = true;
}

Label
ProgramBuilder::here()
{
    Label label = newLabel();
    bind(label);
    return label;
}

Addr
ProgramBuilder::addressOf(Label label) const
{
    const std::uint32_t id = requireValid(label);
    TCSIM_ASSERT(labelBound_[id], "addressOf on unbound label");
    return labelAddrs_[id];
}

void
ProgramBuilder::emit(const Instruction &inst)
{
    TCSIM_ASSERT(!built_, "emit after build()");
    code_.push_back(inst);
}

Addr
ProgramBuilder::pc() const
{
    return codeBase_ + code_.size() * isa::kInstBytes;
}

namespace
{

Instruction
rtype(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    return inst;
}

Instruction
itype(Opcode op, RegIndex rd, RegIndex rs1, std::int32_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.imm = imm;
    return inst;
}

} // namespace

// R-type emitters.
void ProgramBuilder::add(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Add, rd, rs1, rs2)); }
void ProgramBuilder::sub(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Sub, rd, rs1, rs2)); }
void ProgramBuilder::mul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Mul, rd, rs1, rs2)); }
void ProgramBuilder::div(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Div, rd, rs1, rs2)); }
void ProgramBuilder::and_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::And, rd, rs1, rs2)); }
void ProgramBuilder::or_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Or, rd, rs1, rs2)); }
void ProgramBuilder::xor_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Xor, rd, rs1, rs2)); }
void ProgramBuilder::sll(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Sll, rd, rs1, rs2)); }
void ProgramBuilder::srl(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Srl, rd, rs1, rs2)); }
void ProgramBuilder::sra(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Sra, rd, rs1, rs2)); }
void ProgramBuilder::slt(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Slt, rd, rs1, rs2)); }
void ProgramBuilder::sltu(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emit(rtype(Opcode::Sltu, rd, rs1, rs2)); }

// I-type emitters.
void ProgramBuilder::addi(RegIndex rd, RegIndex rs1, std::int32_t imm)
{ emit(itype(Opcode::Addi, rd, rs1, imm)); }
void ProgramBuilder::andi(RegIndex rd, RegIndex rs1, std::int32_t imm)
{ emit(itype(Opcode::Andi, rd, rs1, imm)); }
void ProgramBuilder::ori(RegIndex rd, RegIndex rs1, std::int32_t imm)
{ emit(itype(Opcode::Ori, rd, rs1, imm)); }
void ProgramBuilder::xori(RegIndex rd, RegIndex rs1, std::int32_t imm)
{ emit(itype(Opcode::Xori, rd, rs1, imm)); }
void ProgramBuilder::slli(RegIndex rd, RegIndex rs1, std::int32_t imm)
{ emit(itype(Opcode::Slli, rd, rs1, imm)); }
void ProgramBuilder::srli(RegIndex rd, RegIndex rs1, std::int32_t imm)
{ emit(itype(Opcode::Srli, rd, rs1, imm)); }
void ProgramBuilder::slti(RegIndex rd, RegIndex rs1, std::int32_t imm)
{ emit(itype(Opcode::Slti, rd, rs1, imm)); }
void ProgramBuilder::lui(RegIndex rd, std::int32_t imm)
{ emit(itype(Opcode::Lui, rd, 0, imm)); }

void
ProgramBuilder::loadImm64(RegIndex rd, std::uint64_t value)
{
    // Lui shifts its 16-bit immediate left by 16; build 32-bit values
    // in two instructions and wider values with explicit shifts. Data
    // addresses in generated programs fit in 32 bits.
    TCSIM_ASSERT(value <= 0xffffffffULL,
                 "loadImm64 only supports 32-bit values");
    const auto hi = static_cast<std::int32_t>((value >> 16) & 0xffff);
    const auto lo = static_cast<std::int32_t>(value & 0xffff);
    lui(rd, hi);
    if (lo != 0)
        ori(rd, rd, lo);
}

void ProgramBuilder::ld(RegIndex rd, std::int32_t imm, RegIndex rs1)
{ emit(itype(Opcode::Ld, rd, rs1, imm)); }

void
ProgramBuilder::st(RegIndex rs2, std::int32_t imm, RegIndex rs1)
{
    Instruction inst;
    inst.op = Opcode::St;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.imm = imm;
    emit(inst);
}

void
ProgramBuilder::emitBranch(Opcode op, RegIndex rs1, RegIndex rs2,
                           Label target)
{
    Instruction inst;
    inst.op = op;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    fixups_.push_back({code_.size(), requireValid(target)});
    emit(inst);
}

void ProgramBuilder::beq(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(Opcode::Beq, rs1, rs2, target); }
void ProgramBuilder::bne(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(Opcode::Bne, rs1, rs2, target); }
void ProgramBuilder::blt(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(Opcode::Blt, rs1, rs2, target); }
void ProgramBuilder::bge(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(Opcode::Bge, rs1, rs2, target); }
void ProgramBuilder::bltu(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(Opcode::Bltu, rs1, rs2, target); }
void ProgramBuilder::bgeu(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(Opcode::Bgeu, rs1, rs2, target); }

void
ProgramBuilder::j(Label target)
{
    Instruction inst;
    inst.op = Opcode::J;
    fixups_.push_back({code_.size(), requireValid(target)});
    emit(inst);
}

void
ProgramBuilder::call(Label target)
{
    Instruction inst;
    inst.op = Opcode::Call;
    inst.rd = isa::kRegRa;
    fixups_.push_back({code_.size(), requireValid(target)});
    emit(inst);
}

void
ProgramBuilder::jr(RegIndex rs1)
{
    Instruction inst;
    inst.op = Opcode::Jr;
    inst.rs1 = rs1;
    emit(inst);
}

void
ProgramBuilder::ret()
{
    Instruction inst;
    inst.op = Opcode::Ret;
    inst.rs1 = isa::kRegRa;
    emit(inst);
}

void ProgramBuilder::trap() { emit(Instruction{Opcode::Trap, 0, 0, 0, 0}); }
void ProgramBuilder::halt() { emit(Instruction{Opcode::Halt, 0, 0, 0, 0}); }
void ProgramBuilder::nop() { emit(Instruction{Opcode::Nop, 0, 0, 0, 0}); }

Addr
ProgramBuilder::allocData(std::size_t bytes)
{
    const Addr base = dataNext_;
    dataNext_ += (bytes + 7) & ~std::size_t{7};
    return base;
}

void
ProgramBuilder::setData(Addr addr, std::uint64_t value)
{
    TCSIM_ASSERT((addr & 7) == 0, "unaligned data word");
    data_[addr] = value;
}

void
ProgramBuilder::setDataLabel(Addr addr, Label label)
{
    TCSIM_ASSERT((addr & 7) == 0, "unaligned data word");
    dataFixups_.push_back({addr, requireValid(label)});
}

void
ProgramBuilder::setEntry(Label label)
{
    entry_ = addressOf(label);
    entrySet_ = true;
}

Program
ProgramBuilder::build()
{
    TCSIM_ASSERT(!built_, "build() called twice");
    built_ = true;

    for (const Fixup &fixup : fixups_) {
        TCSIM_ASSERT(labelBound_[fixup.labelId],
                     "unbound label referenced by instruction %zu",
                     fixup.instIndex);
        const Addr inst_pc =
            codeBase_ + fixup.instIndex * isa::kInstBytes;
        const Addr target = labelAddrs_[fixup.labelId];
        const std::int64_t disp =
            (static_cast<std::int64_t>(target) -
             static_cast<std::int64_t>(inst_pc)) /
            static_cast<std::int64_t>(isa::kInstBytes);
        code_[fixup.instIndex].imm = static_cast<std::int32_t>(disp);
    }
    for (const DataFixup &fixup : dataFixups_) {
        TCSIM_ASSERT(labelBound_[fixup.labelId],
                     "unbound label referenced by data word");
        data_[fixup.addr] = labelAddrs_[fixup.labelId];
    }

    return Program(std::move(name_), codeBase_, std::move(code_),
                   std::move(data_), entrySet_ ? entry_ : codeBase_);
}

std::uint32_t
ProgramBuilder::requireValid(Label label) const
{
    TCSIM_ASSERT(label.valid_, "use of default-constructed label");
    TCSIM_ASSERT(label.id_ < labelAddrs_.size());
    return label.id_;
}

} // namespace tcsim::workload
