/**
 * @file
 * Program image serialization: save generated (or hand-built)
 * workloads to disk and reload them bit-exactly, so experiment
 * artifacts can be archived and shared independently of the
 * generator's RNG.
 *
 * Format (little-endian, versioned):
 *   magic "TCSIMPRG", u32 version, u32 name length, name bytes,
 *   u64 code base, u64 entry, u64 instruction count, u32 words...,
 *   u64 data word count, (u64 addr, u64 value)...
 */

#ifndef TCSIM_WORKLOAD_SERIALIZE_H
#define TCSIM_WORKLOAD_SERIALIZE_H

#include <iosfwd>
#include <optional>
#include <string>

#include "workload/program.h"

namespace tcsim::workload
{

/** Write @p program to @p os. @return false on stream failure. */
bool saveProgram(const Program &program, std::ostream &os);

/** Write @p program to @p path. @return false on failure. */
bool saveProgram(const Program &program, const std::string &path);

/**
 * Read a program from @p is. Aborts (fatal) on a malformed image;
 * stream failures return an empty optional.
 */
std::optional<Program> loadProgram(std::istream &is);

/** Read a program from @p path. */
std::optional<Program> loadProgram(const std::string &path);

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_SERIALIZE_H
