/**
 * @file
 * tcsim-btrace-v1: a compact binary branch/fetch trace format.
 *
 * A btrace captures the retired control flow of one run — every
 * control-transfer and serializing instruction, in program order — in
 * 16-byte packed little-endian records, so the front end (fetch
 * engine, fill unit, predictors) can later be driven directly from the
 * file without re-executing the program. The layout follows the
 * packed-entry buffered-writer shape of interp_rv64's trace.cc:
 * a fixed checksummed header, then a flat record array that an
 * mmap-backed reader can index in place.
 *
 * File layout (all fields little-endian host layout, like the other
 * binio artifacts — traces are consumed on the machine or fleet that
 * produced them):
 *
 *   offset size field
 *   0      8    magic "TCBTRC01"
 *   8      4    u32 format version (kBtraceFormatVersion)
 *   12     4    u32 workload generator version (kGeneratorVersion)
 *   16     8    u64 profile fingerprint (profileFingerprint())
 *   24     8    u64 entry pc
 *   32     8    u64 instCount: total dynamic instructions covered,
 *               including the non-control instructions between records
 *               (tells replay exactly where to stop, even mid-block)
 *   40     8    u64 recordCount
 *   48     8    u64 FNV-1a over all record bytes
 *   56     8    u64 FNV-1a over header bytes [0, 56)
 *   64     16*recordCount records
 *
 * Record layout (16 bytes):
 *   word0: bits [0,48) pc, bits [48,52) class, bit 52 taken
 *   word1: target (the actual next pc after this instruction)
 */

#ifndef TCSIM_WORKLOAD_BTRACE_H
#define TCSIM_WORKLOAD_BTRACE_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.h"

namespace tcsim::workload
{

/** Bump when the header or record layout changes. */
inline constexpr std::uint32_t kBtraceFormatVersion = 1;

/** Magic at offset 0 (8 bytes, no terminator). */
inline constexpr char kBtraceMagic[8] = {'T', 'C', 'B', 'T',
                                         'R', 'C', '0', '1'};

/** Bytes of the fixed header preceding the record array. */
inline constexpr std::size_t kBtraceHeaderBytes = 64;

/** Bytes per packed record. */
inline constexpr std::size_t kBtraceRecordBytes = 16;

/** Control-transfer class of a recorded instruction. */
enum class BtraceClass : std::uint8_t
{
    Cond = 0,         ///< conditional branch (taken bit meaningful)
    Jump = 1,         ///< direct unconditional jump
    Call = 2,         ///< direct call (pushes pc+4 on the RAS)
    Ret = 3,          ///< return (pops the RAS)
    IndirectJump = 4, ///< register-indirect jump (jr)
    Trap = 5,         ///< serializing trap
    Halt = 6,         ///< program end
};

/** One recorded control-flow event. */
struct BtraceRecord
{
    Addr pc = 0;
    Addr target = 0;
    BtraceClass cls = BtraceClass::Cond;
    bool taken = false;
};

/** Decoded header fields (checksums verified by the reader). */
struct BtraceHeader
{
    std::uint32_t formatVersion = 0;
    std::uint32_t generatorVersion = 0;
    std::uint64_t profileFingerprint = 0;
    Addr entryPc = 0;
    std::uint64_t instCount = 0;
    std::uint64_t recordCount = 0;
};

/**
 * Streaming record writer. Records are packed into an in-memory
 * buffer and flushed in large chunks; close() seeks back and writes
 * the checksummed header (until then the file carries a zeroed header
 * and will be rejected by the reader — a crash mid-record never
 * produces a valid trace).
 */
class BtraceWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    BtraceWriter(const std::string &path, std::uint32_t generator_version,
                 std::uint64_t profile_fingerprint, Addr entry_pc);
    ~BtraceWriter();

    BtraceWriter(const BtraceWriter &) = delete;
    BtraceWriter &operator=(const BtraceWriter &) = delete;

    /** Append one record (program order). */
    void append(const BtraceRecord &record);

    /**
     * Flush, backpatch the header with @p inst_count (total dynamic
     * instructions the trace covers, including non-control ones) and
     * close the file. No appends allowed afterwards.
     */
    void close(std::uint64_t inst_count);

    std::uint64_t recordCount() const { return recordCount_; }

  private:
    void flushBuffer();

    std::ofstream out_;
    std::string path_;
    std::vector<char> buffer_;
    std::uint32_t generatorVersion_;
    std::uint64_t profileFingerprint_;
    Addr entryPc_;
    std::uint64_t recordCount_ = 0;
    std::uint64_t recordsFnv_;
    bool closed_ = false;
};

/**
 * mmap-backed reader: validates the header checksum, the record
 * checksum and the file size on open, then serves records by index
 * straight from the mapping.
 */
class BtraceReader
{
  public:
    BtraceReader() = default;
    ~BtraceReader();

    BtraceReader(const BtraceReader &) = delete;
    BtraceReader &operator=(const BtraceReader &) = delete;

    /**
     * Map and validate @p path. @return false (with a human-readable
     * reason in @p error when non-null) on any I/O, size, magic,
     * version or checksum problem.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /**
     * Adopt and validate an in-memory trace image (e.g. artifact-cache
     * bytes) with the same checks as open(). @return false (with the
     * reason in @p error when non-null) on any validation problem.
     */
    bool openBytes(std::string bytes, std::string *error = nullptr);

    const BtraceHeader &header() const { return header_; }
    std::uint64_t recordCount() const { return header_.recordCount; }

    /** @return the record at @p index (must be < recordCount()). */
    BtraceRecord record(std::uint64_t index) const;

  private:
    bool validate(std::string *error);

    BtraceHeader header_;
    std::string owned_;
    const unsigned char *map_ = nullptr;
    std::size_t mapBytes_ = 0;
    bool mmapped_ = false;
};

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_BTRACE_H
