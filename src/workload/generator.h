/**
 * @file
 * CFG-based synthetic program generation.
 *
 * Generates a self-contained µRISC executable from a BenchmarkProfile:
 * a main driver loop calling a DAG of functions whose bodies are built
 * from straight-line blocks, counted loops, biased conditionals,
 * indirect switches, call sites and rare traps. All branch outcomes
 * are data-driven (loop counters or a program-computed pseudo-random
 * stream), so the program is honestly executable — including down
 * wrong paths.
 */

#ifndef TCSIM_WORKLOAD_GENERATOR_H
#define TCSIM_WORKLOAD_GENERATOR_H

#include "common/rng.h"
#include "workload/profile.h"
#include "workload/program.h"

namespace tcsim::workload
{

/**
 * Version of the generation algorithm, folded into cached program
 * images' content keys. Bump whenever generateProgram() (or anything
 * it calls, including the RNG and the builder's encoding) changes the
 * bytes it emits for a fixed profile, so stale cached images are
 * regenerated instead of silently reused.
 */
inline constexpr std::uint32_t kGeneratorVersion = 1;

/** Generate the program described by @p profile. */
Program generateProgram(const BenchmarkProfile &profile);

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_GENERATOR_H
