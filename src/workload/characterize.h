/**
 * @file
 * Purely functional workload characterization.
 *
 * Runs a program on the FunctionalExecutor and gathers the stream
 * statistics the trace cache responds to: instruction mix, fetch-block
 * sizes, and the branch-bias distribution. Used to tune benchmark
 * profiles against the paper's reported aggregates and by tests that
 * pin generator behaviour.
 */

#ifndef TCSIM_WORKLOAD_CHARACTERIZE_H
#define TCSIM_WORKLOAD_CHARACTERIZE_H

#include <cstdint>
#include <unordered_map>

#include "common/stats.h"
#include "workload/executor.h"
#include "workload/program.h"

namespace tcsim::workload
{

/** Aggregate stream statistics for one program run. */
struct WorkloadStats
{
    std::uint64_t instCount = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condTaken = 0;
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    std::uint64_t indirectJumps = 0;
    std::uint64_t uncondJumps = 0;
    std::uint64_t traps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    bool halted = false;

    /** Distinct static instruction addresses touched (dynamic code
     * footprint in instructions). */
    std::uint64_t touchedCodeAddrs = 0;

    /**
     * Mean dynamic fill-block size: instructions between block
     * terminators (conditional branches, returns, indirect jumps,
     * traps), matching the fill unit's view.
     */
    double avgFillBlockSize = 0.0;

    /** Histogram of fill-block sizes (bucket 16 saturates). */
    Histogram fillBlockHist{17};

    /**
     * Fraction of dynamic conditional branches whose static site is
     * biased at least 99% in one direction.
     */
    double fracDynStronglyBiased = 0.0;

    /**
     * Fraction of dynamic conditional branch executions that continue
     * a run of >= 64 consecutive same-direction outcomes at their
     * static site (a proxy for promotability at threshold 64).
     */
    double fracDynLongRun = 0.0;
};

/** Run @p program for at most @p max_insts and characterize it. */
WorkloadStats characterize(const Program &program,
                           std::uint64_t max_insts);

/**
 * Profile pass for *static* branch promotion (paper section 4: the
 * ISA communicates strongly biased branches found by offline
 * analysis). Executes @p max_insts architecturally and returns the
 * dominant direction of every conditional branch site whose bias is
 * at least @p min_bias over at least @p min_executions executions.
 */
std::unordered_map<Addr, bool>
profileStronglyBiased(const Program &program, std::uint64_t max_insts,
                      double min_bias = 0.98,
                      std::uint64_t min_executions = 16);

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_CHARACTERIZE_H
