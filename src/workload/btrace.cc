#include "workload/btrace.h"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fnv.h"
#include "common/log.h"

namespace tcsim::workload
{

namespace
{

/** Flush threshold for the writer's packing buffer. */
constexpr std::size_t kWriterBufferBytes = 256 * 1024;

constexpr std::uint64_t kPcMask = (std::uint64_t{1} << 48) - 1;

void
packRecord(char *out, const BtraceRecord &record)
{
    TCSIM_ASSERT((record.pc & ~kPcMask) == 0);
    const std::uint64_t word0 =
        (record.pc & kPcMask) |
        (static_cast<std::uint64_t>(record.cls) << 48) |
        (static_cast<std::uint64_t>(record.taken ? 1 : 0) << 52);
    const std::uint64_t word1 = record.target;
    std::memcpy(out, &word0, 8);
    std::memcpy(out + 8, &word1, 8);
}

BtraceRecord
unpackRecord(const unsigned char *in)
{
    std::uint64_t word0 = 0;
    std::uint64_t word1 = 0;
    std::memcpy(&word0, in, 8);
    std::memcpy(&word1, in + 8, 8);
    BtraceRecord record;
    record.pc = word0 & kPcMask;
    record.cls = static_cast<BtraceClass>((word0 >> 48) & 0xf);
    record.taken = ((word0 >> 52) & 1) != 0;
    record.target = word1;
    return record;
}

/** Serialize the 64-byte header, including its trailing checksum. */
void
packHeader(char *out, std::uint32_t generator_version,
           std::uint64_t profile_fingerprint, Addr entry_pc,
           std::uint64_t inst_count, std::uint64_t record_count,
           std::uint64_t records_fnv)
{
    std::memcpy(out, kBtraceMagic, sizeof(kBtraceMagic));
    const auto put = [out](std::size_t off, auto value) {
        std::memcpy(out + off, &value, sizeof(value));
    };
    put(8, kBtraceFormatVersion);
    put(12, generator_version);
    put(16, profile_fingerprint);
    put(24, static_cast<std::uint64_t>(entry_pc));
    put(32, inst_count);
    put(40, record_count);
    put(48, records_fnv);
    std::uint64_t header_fnv = kFnvOffsetBasis;
    for (std::size_t i = 0; i < 56; ++i) {
        header_fnv ^= static_cast<unsigned char>(out[i]);
        header_fnv *= kFnvPrime;
    }
    put(56, header_fnv);
}

bool
fail(std::string *error, const char *reason)
{
    if (error != nullptr)
        *error = reason;
    return false;
}

} // namespace

// ----------------------------------------------------------------------
// BtraceWriter
// ----------------------------------------------------------------------

BtraceWriter::BtraceWriter(const std::string &path,
                           std::uint32_t generator_version,
                           std::uint64_t profile_fingerprint, Addr entry_pc)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path),
      generatorVersion_(generator_version),
      profileFingerprint_(profile_fingerprint), entryPc_(entry_pc),
      recordsFnv_(kFnvOffsetBasis)
{
    if (!out_)
        fatal("cannot open btrace output '%s'", path.c_str());
    buffer_.reserve(kWriterBufferBytes);
    // Placeholder header: zeroed, so a crash before close() leaves a
    // file the reader rejects (bad magic) instead of a silent partial.
    const char zeros[kBtraceHeaderBytes] = {};
    out_.write(zeros, sizeof(zeros));
}

BtraceWriter::~BtraceWriter()
{
    // An unclosed writer leaves the zeroed header in place on purpose.
}

void
BtraceWriter::append(const BtraceRecord &record)
{
    TCSIM_ASSERT(!closed_);
    char packed[kBtraceRecordBytes];
    packRecord(packed, record);
    for (const char c : packed) {
        recordsFnv_ ^= static_cast<unsigned char>(c);
        recordsFnv_ *= kFnvPrime;
    }
    buffer_.insert(buffer_.end(), packed, packed + sizeof(packed));
    ++recordCount_;
    if (buffer_.size() >= kWriterBufferBytes)
        flushBuffer();
}

void
BtraceWriter::flushBuffer()
{
    if (buffer_.empty())
        return;
    out_.write(buffer_.data(),
               static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
}

void
BtraceWriter::close(std::uint64_t inst_count)
{
    TCSIM_ASSERT(!closed_);
    closed_ = true;
    flushBuffer();
    char header[kBtraceHeaderBytes];
    packHeader(header, generatorVersion_, profileFingerprint_, entryPc_,
               inst_count, recordCount_, recordsFnv_);
    out_.seekp(0);
    out_.write(header, sizeof(header));
    out_.close();
    if (!out_)
        fatal("write failure on btrace output '%s'", path_.c_str());
}

// ----------------------------------------------------------------------
// BtraceReader
// ----------------------------------------------------------------------

BtraceReader::~BtraceReader()
{
    if (mmapped_)
        ::munmap(const_cast<unsigned char *>(map_), mapBytes_);
}

bool
BtraceReader::open(const std::string &path, std::string *error)
{
    TCSIM_ASSERT(map_ == nullptr);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail(error, "cannot open trace file");
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return fail(error, "cannot stat trace file");
    }
    const auto bytes = static_cast<std::size_t>(st.st_size);
    if (bytes < kBtraceHeaderBytes) {
        ::close(fd);
        return fail(error, "file shorter than the btrace header");
    }
    void *map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return fail(error, "cannot mmap trace file");
    map_ = static_cast<const unsigned char *>(map);
    mapBytes_ = bytes;
    mmapped_ = true;
    return validate(error);
}

bool
BtraceReader::openBytes(std::string bytes, std::string *error)
{
    TCSIM_ASSERT(map_ == nullptr);
    if (bytes.size() < kBtraceHeaderBytes)
        return fail(error, "file shorter than the btrace header");
    owned_ = std::move(bytes);
    map_ = reinterpret_cast<const unsigned char *>(owned_.data());
    mapBytes_ = owned_.size();
    return validate(error);
}

bool
BtraceReader::validate(std::string *error)
{
    if (std::memcmp(map_, kBtraceMagic, sizeof(kBtraceMagic)) != 0)
        return fail(error, "bad btrace magic");
    const auto get = [this](std::size_t off, auto &value) {
        std::memcpy(&value, map_ + off, sizeof(value));
    };
    std::uint64_t stored_header_fnv = 0;
    get(56, stored_header_fnv);
    std::uint64_t header_fnv = kFnvOffsetBasis;
    for (std::size_t i = 0; i < 56; ++i) {
        header_fnv ^= map_[i];
        header_fnv *= kFnvPrime;
    }
    if (header_fnv != stored_header_fnv)
        return fail(error, "btrace header checksum mismatch");

    get(8, header_.formatVersion);
    get(12, header_.generatorVersion);
    get(16, header_.profileFingerprint);
    std::uint64_t entry = 0;
    get(24, entry);
    header_.entryPc = entry;
    get(32, header_.instCount);
    get(40, header_.recordCount);
    if (header_.formatVersion != kBtraceFormatVersion)
        return fail(error, "unsupported btrace format version");

    const std::uint64_t want_bytes =
        kBtraceHeaderBytes + header_.recordCount * kBtraceRecordBytes;
    if (want_bytes != mapBytes_)
        return fail(error, "btrace size does not match its record count");

    std::uint64_t stored_records_fnv = 0;
    get(48, stored_records_fnv);
    std::uint64_t records_fnv = kFnvOffsetBasis;
    for (std::size_t i = kBtraceHeaderBytes; i < mapBytes_; ++i) {
        records_fnv ^= map_[i];
        records_fnv *= kFnvPrime;
    }
    if (records_fnv != stored_records_fnv)
        return fail(error, "btrace record checksum mismatch");
    return true;
}

BtraceRecord
BtraceReader::record(std::uint64_t index) const
{
    TCSIM_ASSERT(index < header_.recordCount);
    return unpackRecord(map_ + kBtraceHeaderBytes +
                        index * kBtraceRecordBytes);
}

} // namespace tcsim::workload
