#include "workload/executor.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/log.h"

namespace tcsim::workload
{

using isa::Instruction;
using isa::Opcode;

void
SparseMemory::initFrom(const Program &program)
{
    for (const auto &[addr, value] : program.initData())
        store(addr, value);
}

std::vector<Addr>
SparseMemory::pageIndices() const
{
    std::vector<Addr> indices;
    indices.reserve(pages_.size());
    for (const auto &[index, page] : pages_)
        indices.push_back(index);
    std::sort(indices.begin(), indices.end());
    return indices;
}

void
SparseMemory::copyFrom(const SparseMemory &other)
{
    pages_.clear();
    for (const auto &[index, page] : other.pages_)
        pages_[index] = std::make_unique<Page>(*page);
}

FunctionalExecutor::FunctionalExecutor(const Program &program)
    : program_(program), pc_(program.entry())
{
    memory_.initFrom(program);
    setReg(2, kStackTop); // conventional stack pointer
}

void
FunctionalExecutor::computeResult(const Instruction &inst, Addr pc,
                                  RegVal src1, RegVal src2,
                                  std::uint64_t mem_value, RegVal &result,
                                  Addr &next_pc, bool &taken)
{
    const auto s1 = static_cast<std::int64_t>(src1);
    const auto s2 = static_cast<std::int64_t>(src2);
    result = 0;
    taken = false;
    next_pc = pc + isa::kInstBytes;

    switch (inst.op) {
      case Opcode::Add: result = src1 + src2; break;
      case Opcode::Sub: result = src1 - src2; break;
      case Opcode::Mul: result = src1 * src2; break;
      case Opcode::Div:
        result = src2 == 0 ? ~std::uint64_t{0}
                           : static_cast<std::uint64_t>(
                                 s2 == -1 ? -s1 : s1 / s2);
        break;
      case Opcode::And: result = src1 & src2; break;
      case Opcode::Or: result = src1 | src2; break;
      case Opcode::Xor: result = src1 ^ src2; break;
      case Opcode::Sll: result = src1 << (src2 & 63); break;
      case Opcode::Srl: result = src1 >> (src2 & 63); break;
      case Opcode::Sra: result = static_cast<std::uint64_t>(
                            s1 >> (src2 & 63));
        break;
      case Opcode::Slt: result = s1 < s2 ? 1 : 0; break;
      case Opcode::Sltu: result = src1 < src2 ? 1 : 0; break;

      case Opcode::Addi:
        result = src1 + static_cast<std::int64_t>(inst.imm);
        break;
      case Opcode::Andi:
        result = src1 & static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(inst.imm) & 0xffff);
        break;
      case Opcode::Ori:
        result = src1 | static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(inst.imm) & 0xffff);
        break;
      case Opcode::Xori:
        result = src1 ^ static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(inst.imm) & 0xffff);
        break;
      case Opcode::Slli: result = src1 << (inst.imm & 63); break;
      case Opcode::Srli: result = src1 >> (inst.imm & 63); break;
      case Opcode::Slti:
        result = s1 < static_cast<std::int64_t>(inst.imm) ? 1 : 0;
        break;
      case Opcode::Lui:
        result = static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(inst.imm) & 0xffff)
                 << 16;
        break;

      case Opcode::Ld: result = mem_value; break;
      case Opcode::St: break;

      case Opcode::Beq: taken = src1 == src2; break;
      case Opcode::Bne: taken = src1 != src2; break;
      case Opcode::Blt: taken = s1 < s2; break;
      case Opcode::Bge: taken = s1 >= s2; break;
      case Opcode::Bltu: taken = src1 < src2; break;
      case Opcode::Bgeu: taken = src1 >= src2; break;

      case Opcode::J:
        next_pc = isa::directTarget(inst, pc);
        break;
      case Opcode::Call:
        result = pc + isa::kInstBytes; // link value
        next_pc = isa::directTarget(inst, pc);
        break;
      case Opcode::Jr:
      case Opcode::Ret:
        next_pc = src1 & ~Addr{isa::kInstBytes - 1};
        break;

      case Opcode::Trap:
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        next_pc = pc; // machine stops advancing
        break;
      default:
        panic("computeResult: bad opcode");
    }

    if (isa::isCondBranch(inst.op) && taken)
        next_pc = isa::directTarget(inst, pc);
}

StepResult
FunctionalExecutor::step()
{
    StepResult step_result;
    step_result.pc = pc_;
    step_result.halted = halted_;
    if (halted_) {
        step_result.nextPc = pc_;
        return step_result;
    }

    const Instruction &inst = program_.fetch(pc_);
    step_result.inst = inst;

    const RegVal src1 = isa::readsRs1(inst) ? regs_[inst.rs1] : 0;
    const RegVal src2 = isa::readsRs2(inst) ? regs_[inst.rs2] : 0;

    std::uint64_t mem_value = 0;
    if (isa::isMem(inst.op)) {
        step_result.memAddr = effectiveAddr(inst, src1);
        if (isa::isLoad(inst.op))
            mem_value = memory_.load(step_result.memAddr);
    }

    RegVal result = 0;
    Addr next_pc = 0;
    bool taken = false;
    computeResult(inst, pc_, src1, src2, mem_value, result, next_pc,
                  taken);

    if (isa::isStore(inst.op))
        memory_.store(step_result.memAddr, src2);
    if (isa::writesReg(inst))
        setReg(inst.rd, result);
    step_result.result = result;

    step_result.taken = taken;
    step_result.nextPc = next_pc;
    if (inst.op == Opcode::Halt) {
        halted_ = true;
        step_result.halted = true;
    }

    pc_ = next_pc;
    ++instCount_;
    return step_result;
}

} // namespace tcsim::workload
