/**
 * @file
 * Architectural (functional) execution of µRISC programs.
 *
 * The FunctionalExecutor is used three ways:
 *  - as the golden reference in tests (the timing processor's retired
 *    stream must match it instruction-for-instruction),
 *  - as the statistics oracle that classifies fetched instructions as
 *    correct-path or wrong-path,
 *  - standalone, to characterize generated workloads.
 */

#ifndef TCSIM_WORKLOAD_EXECUTOR_H
#define TCSIM_WORKLOAD_EXECUTOR_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"
#include "workload/program.h"

namespace tcsim::workload
{

/**
 * Byte-addressable sparse memory backed by 4 KB pages.
 *
 * All accesses are 64-bit and are force-aligned to 8 bytes (generated
 * programs only perform aligned accesses; wrong-path garbage addresses
 * are aligned rather than faulting). Reads of unmapped memory return
 * zero.
 */
class SparseMemory
{
  public:
    static constexpr unsigned kPageBytes = 4096;

    /** Read the 64-bit word containing @p addr. */
    std::uint64_t
    load(Addr addr) const
    {
        addr &= ~Addr{7};
        const auto it = pages_.find(pageOf(addr));
        if (it == pages_.end())
            return 0;
        std::uint64_t value;
        std::memcpy(&value, it->second->data() + offsetOf(addr),
                    sizeof(value));
        return value;
    }

    /** Write the 64-bit word containing @p addr. */
    void
    store(Addr addr, std::uint64_t value)
    {
        addr &= ~Addr{7};
        Page &page = pageFor(addr);
        std::memcpy(page.data() + offsetOf(addr), &value, sizeof(value));
    }

    /** Populate memory from a program's initial data image. */
    void initFrom(const Program &program);

    /** @return the number of mapped pages. */
    std::size_t numPages() const { return pages_.size(); }

    /** @return mapped page indices in ascending order. */
    std::vector<Addr> pageIndices() const;

    /** @return the raw bytes of mapped page @p page_index (or null). */
    const std::uint8_t *
    pageData(Addr page_index) const
    {
        const auto it = pages_.find(page_index);
        return it == pages_.end() ? nullptr : it->second->data();
    }

    /** Overwrite (mapping if needed) page @p page_index wholesale. */
    void
    writePage(Addr page_index, const std::uint8_t *bytes)
    {
        auto &slot = pages_[page_index];
        if (!slot)
            slot = std::make_unique<Page>();
        std::memcpy(slot->data(), bytes, kPageBytes);
    }

    /** Drop every mapped page. */
    void clear() { pages_.clear(); }

    /** Replace this image with a deep copy of @p other. */
    void copyFrom(const SparseMemory &other);

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    static Addr pageOf(Addr addr) { return addr / kPageBytes; }
    static std::size_t offsetOf(Addr addr) { return addr % kPageBytes; }

    Page &
    pageFor(Addr addr)
    {
        auto &slot = pages_[pageOf(addr)];
        if (!slot)
            slot = std::make_unique<Page>(Page{});
        return *slot;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

/** The record of one architecturally executed instruction. */
struct StepResult
{
    Addr pc = 0;
    isa::Instruction inst;
    Addr nextPc = 0;
    /** For conditional branches: the resolved direction. */
    bool taken = false;
    /** For loads/stores: the effective (aligned) address. */
    Addr memAddr = kInvalidAddr;
    /** Destination register value (when the instruction writes one). */
    RegVal result = 0;
    /** True once a Halt has executed; pc no longer advances. */
    bool halted = false;
};

/** Architectural register file + memory + PC. */
class FunctionalExecutor
{
  public:
    /** Bind to @p program; memory is initialized from its data image. */
    explicit FunctionalExecutor(const Program &program);

    /** The executor stores a reference; temporaries are rejected. */
    explicit FunctionalExecutor(Program &&) = delete;

    /** Execute one instruction and return its record. */
    StepResult step();

    /** @return true once Halt has executed. */
    bool halted() const { return halted_; }

    /** @return the current PC. */
    Addr pc() const { return pc_; }

    /** @return architectural register @p idx. */
    RegVal reg(RegIndex idx) const { return regs_[idx]; }

    /** Set architectural register @p idx (r0 writes are ignored). */
    void
    setReg(RegIndex idx, RegVal value)
    {
        if (idx != isa::kRegZero)
            regs_[idx] = value;
    }

    /** @return the memory image. */
    SparseMemory &memory() { return memory_; }
    const SparseMemory &memory() const { return memory_; }

    /** @return instructions executed so far. */
    std::uint64_t instCount() const { return instCount_; }

    /**
     * Reposition execution at an architectural checkpoint: the caller
     * restores registers (setReg) and memory (memory()) separately.
     * Only valid with state captured from the same program.
     */
    void
    restoreExecPoint(Addr pc, std::uint64_t inst_count, bool halted)
    {
        pc_ = pc;
        instCount_ = inst_count;
        halted_ = halted;
    }

    /**
     * Pure computation of an instruction's results against arbitrary
     * operand values; shared with the timing core's execute stage so
     * functional and speculative execution can never diverge.
     *
     * @param inst the instruction
     * @param pc its address
     * @param src1 value of rs1 (0 if unused)
     * @param src2 value of rs2 (0 if unused)
     * @param mem_value for loads: the loaded value
     * @param[out] result destination register value (if any)
     * @param[out] next_pc the successor PC
     * @param[out] taken branch direction (conditional branches)
     */
    static void computeResult(const isa::Instruction &inst, Addr pc,
                              RegVal src1, RegVal src2,
                              std::uint64_t mem_value, RegVal &result,
                              Addr &next_pc, bool &taken);

    /** @return the effective address of a memory instruction. */
    static Addr
    effectiveAddr(const isa::Instruction &inst, RegVal src1)
    {
        return (src1 + static_cast<std::int64_t>(inst.imm)) & ~Addr{7};
    }

  private:
    const Program &program_;
    SparseMemory memory_;
    std::array<RegVal, isa::kNumArchRegs> regs_{};
    Addr pc_;
    bool halted_ = false;
    std::uint64_t instCount_ = 0;
};

} // namespace tcsim::workload

#endif // TCSIM_WORKLOAD_EXECUTOR_H
