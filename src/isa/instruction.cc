#include "isa/instruction.h"

#include <array>
#include <sstream>

#include "common/bitutils.h"
#include "common/log.h"

namespace tcsim::isa
{

namespace
{

/** Encoding format families. */
enum class Format { R, I, B, J, JR, None };

Format
formatOf(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::Sll: case Opcode::Srl:
      case Opcode::Sra: case Opcode::Slt: case Opcode::Sltu:
        return Format::R;
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Slli: case Opcode::Srli:
      case Opcode::Slti: case Opcode::Lui:
      case Opcode::Ld: case Opcode::St:
        return Format::I;
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
        return Format::B;
      case Opcode::J: case Opcode::Call:
        return Format::J;
      case Opcode::Jr: case Opcode::Ret:
        return Format::JR;
      case Opcode::Trap: case Opcode::Halt: case Opcode::Nop:
        return Format::None;
      default:
        panic("formatOf: bad opcode %u", static_cast<unsigned>(op));
    }
}

constexpr std::array<const char *,
                     static_cast<std::size_t>(Opcode::NumOpcodes)>
    kOpcodeNames = {
        "add", "sub", "mul", "div", "and", "or", "xor", "sll", "srl",
        "sra", "slt", "sltu",
        "addi", "andi", "ori", "xori", "slli", "srli", "slti", "lui",
        "ld", "st",
        "beq", "bne", "blt", "bge", "bltu", "bgeu",
        "j", "call",
        "jr", "ret",
        "trap", "halt", "nop",
    };

} // namespace

std::uint32_t
encode(const Instruction &inst)
{
    const auto op = static_cast<std::uint32_t>(inst.op);
    TCSIM_ASSERT(op < static_cast<std::uint32_t>(Opcode::NumOpcodes));
    std::uint32_t word = op << 26;
    switch (formatOf(inst.op)) {
      case Format::R:
        word |= std::uint32_t{inst.rd} << 21;
        word |= std::uint32_t{inst.rs1} << 16;
        word |= std::uint32_t{inst.rs2} << 11;
        break;
      case Format::I: {
        // Logical immediates are zero-extended 16-bit values; the
        // arithmetic ones are sign-extended.
        const bool logical = inst.op == Opcode::Andi ||
                             inst.op == Opcode::Ori ||
                             inst.op == Opcode::Xori ||
                             inst.op == Opcode::Lui;
        if (logical) {
            TCSIM_ASSERT(inst.imm >= 0 && inst.imm <= 65535,
                         "logical immediate out of range");
        } else {
            TCSIM_ASSERT(inst.imm >= -32768 && inst.imm <= 32767,
                         "I-type immediate out of range");
        }
        // Stores carry their data register where other I-types carry rd.
        const RegIndex top = inst.op == Opcode::St ? inst.rs2 : inst.rd;
        word |= std::uint32_t{top} << 21;
        word |= std::uint32_t{inst.rs1} << 16;
        word |= static_cast<std::uint16_t>(inst.imm);
        break;
      }
      case Format::B:
        TCSIM_ASSERT(inst.imm >= -32768 && inst.imm <= 32767,
                     "branch displacement out of range");
        word |= std::uint32_t{inst.rs1} << 21;
        word |= std::uint32_t{inst.rs2} << 16;
        word |= static_cast<std::uint16_t>(inst.imm);
        break;
      case Format::J:
        TCSIM_ASSERT(inst.imm >= -(1 << 25) && inst.imm < (1 << 25),
                     "jump displacement out of range");
        word |= static_cast<std::uint32_t>(inst.imm) & mask(26);
        break;
      case Format::JR:
        word |= std::uint32_t{inst.rs1} << 16;
        break;
      case Format::None:
        break;
    }
    return word;
}

Instruction
decode(std::uint32_t word)
{
    Instruction inst;
    const std::uint32_t op_field = word >> 26;
    TCSIM_ASSERT(op_field < static_cast<std::uint32_t>(Opcode::NumOpcodes),
                 "undecodable opcode field");
    inst.op = static_cast<Opcode>(op_field);
    switch (formatOf(inst.op)) {
      case Format::R:
        inst.rd = static_cast<RegIndex>(bits(word, 25, 21));
        inst.rs1 = static_cast<RegIndex>(bits(word, 20, 16));
        inst.rs2 = static_cast<RegIndex>(bits(word, 15, 11));
        break;
      case Format::I:
        if (inst.op == Opcode::St)
            inst.rs2 = static_cast<RegIndex>(bits(word, 25, 21));
        else
            inst.rd = static_cast<RegIndex>(bits(word, 25, 21));
        inst.rs1 = static_cast<RegIndex>(bits(word, 20, 16));
        if (inst.op == Opcode::Andi || inst.op == Opcode::Ori ||
            inst.op == Opcode::Xori || inst.op == Opcode::Lui) {
            inst.imm = static_cast<std::int32_t>(bits(word, 15, 0));
        } else {
            inst.imm = static_cast<std::int32_t>(
                signExtend(bits(word, 15, 0), 16));
        }
        break;
      case Format::B:
        inst.rs1 = static_cast<RegIndex>(bits(word, 25, 21));
        inst.rs2 = static_cast<RegIndex>(bits(word, 20, 16));
        inst.imm = static_cast<std::int32_t>(
            signExtend(bits(word, 15, 0), 16));
        break;
      case Format::J:
        inst.imm = static_cast<std::int32_t>(
            signExtend(bits(word, 25, 0), 26));
        if (inst.op == Opcode::Call)
            inst.rd = kRegRa; // implicit link register
        break;
      case Format::JR:
        inst.rs1 = static_cast<RegIndex>(bits(word, 20, 16));
        if (inst.op == Opcode::Ret)
            inst.rs1 = kRegRa;
        break;
      case Format::None:
        break;
    }
    return inst;
}

const char *
opcodeName(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    TCSIM_ASSERT(idx < kOpcodeNames.size());
    return kOpcodeNames[idx];
}

std::string
disassemble(const Instruction &inst, Addr pc)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (formatOf(inst.op)) {
      case Format::R:
        os << " r" << unsigned{inst.rd} << ", r" << unsigned{inst.rs1}
           << ", r" << unsigned{inst.rs2};
        break;
      case Format::I:
        if (inst.op == Opcode::Ld) {
            os << " r" << unsigned{inst.rd} << ", " << inst.imm << "(r"
               << unsigned{inst.rs1} << ")";
        } else if (inst.op == Opcode::St) {
            os << " r" << unsigned{inst.rs2} << ", " << inst.imm << "(r"
               << unsigned{inst.rs1} << ")";
        } else if (inst.op == Opcode::Lui) {
            os << " r" << unsigned{inst.rd} << ", " << inst.imm;
        } else {
            os << " r" << unsigned{inst.rd} << ", r" << unsigned{inst.rs1}
               << ", " << inst.imm;
        }
        break;
      case Format::B:
        os << " r" << unsigned{inst.rs1} << ", r" << unsigned{inst.rs2}
           << ", 0x" << std::hex << directTarget(inst, pc);
        break;
      case Format::J:
        os << " 0x" << std::hex << directTarget(inst, pc);
        break;
      case Format::JR:
        os << " r" << unsigned{inst.rs1};
        break;
      case Format::None:
        break;
    }
    return os.str();
}

InstClass
instClass(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return InstClass::IntMult;
      case Opcode::Div:
        return InstClass::IntDiv;
      case Opcode::Ld:
        return InstClass::Load;
      case Opcode::St:
        return InstClass::Store;
      case Opcode::Trap:
      case Opcode::Halt:
        return InstClass::Serialize;
      default:
        return isControl(op) ? InstClass::Control : InstClass::IntAlu;
    }
}

bool
writesReg(const Instruction &inst)
{
    if (inst.rd == kRegZero)
        return false;
    switch (formatOf(inst.op)) {
      case Format::R:
        return true;
      case Format::I:
        return inst.op != Opcode::St;
      case Format::J:
        return inst.op == Opcode::Call;
      default:
        return false;
    }
}

bool
readsRs1(const Instruction &inst)
{
    switch (formatOf(inst.op)) {
      case Format::R:
      case Format::B:
      case Format::JR:
        return true;
      case Format::I:
        return inst.op != Opcode::Lui;
      default:
        return false;
    }
}

bool
readsRs2(const Instruction &inst)
{
    switch (formatOf(inst.op)) {
      case Format::R:
      case Format::B:
        return true;
      case Format::I:
        return inst.op == Opcode::St;
      default:
        return false;
    }
}

Addr
directTarget(const Instruction &inst, Addr pc)
{
    TCSIM_ASSERT(isCondBranch(inst.op) || isUncondDirect(inst.op),
                 "directTarget on non-direct-control instruction");
    return pc + static_cast<std::int64_t>(inst.imm) * kInstBytes;
}

} // namespace tcsim::isa
