/**
 * @file
 * The µRISC instruction set.
 *
 * µRISC is a small, fixed-width (32-bit) load/store ISA in the MIPS
 * mold, rich enough to express the control-flow structures the trace
 * cache cares about: conditional branches, unconditional jumps, calls,
 * returns, indirect jumps, and serializing traps.
 *
 * Encoding formats (bit 31 is the MSB):
 *   R-type:  [31:26] op  [25:21] rd   [20:16] rs1  [15:11] rs2  [10:0] 0
 *   I-type:  [31:26] op  [25:21] rd   [20:16] rs1  [15:0]  imm16 (signed)
 *   B-type:  [31:26] op  [25:21] rs1  [20:16] rs2  [15:0]  imm16 (signed,
 *            in instruction-word units, PC-relative to the branch)
 *   J-type:  [31:26] op  [25:0]  imm26 (signed, instruction-word units)
 *   JR/RET:  [31:26] op  [20:16] rs1
 *
 * Register conventions: r0 is hardwired zero, r1 is the link register
 * (ra), r2 is the stack pointer by convention.
 */

#ifndef TCSIM_ISA_INSTRUCTION_H
#define TCSIM_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace tcsim::isa
{

/** Number of architectural integer registers. */
constexpr unsigned kNumArchRegs = 32;

/** The hardwired-zero register. */
constexpr RegIndex kRegZero = 0;

/** The link register written by CALL and read by RET. */
constexpr RegIndex kRegRa = 1;

/** Size of one instruction in bytes. */
constexpr unsigned kInstBytes = 4;

/** All µRISC opcodes. */
enum class Opcode : std::uint8_t
{
    // R-type ALU.
    Add, Sub, Mul, Div, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    // I-type ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Slti, Lui,
    // Memory: Ld rd, imm(rs1); St rs2, imm(rs1).
    Ld, St,
    // B-type conditional branches: B?? rs1, rs2, imm.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // J-type: J imm; Call imm (writes ra).
    J, Call,
    // Indirect: Jr rs1; Ret (Jr ra).
    Jr, Ret,
    // System.
    Trap, Halt, Nop,

    NumOpcodes
};

/** Coarse classification used for functional-unit latencies. */
enum class InstClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    Load,
    Store,
    Control,
    Serialize,
};

/** A decoded µRISC instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    /**
     * Immediate. For branches and jumps this is the signed displacement
     * in instruction words relative to the instruction's own PC.
     */
    std::int32_t imm = 0;

    bool operator==(const Instruction &other) const = default;
};

/** @return the machine-word encoding of @p inst. */
std::uint32_t encode(const Instruction &inst);

/** @return the decoded form of machine word @p word. */
Instruction decode(std::uint32_t word);

/** @return the mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** @return a human-readable disassembly of @p inst at address @p pc. */
std::string disassemble(const Instruction &inst, Addr pc = 0);

/** @return the latency/issue classification of @p op. */
InstClass instClass(Opcode op);

/** @return true for conditional branches (Beq..Bgeu). */
constexpr bool
isCondBranch(Opcode op)
{
    return op >= Opcode::Beq && op <= Opcode::Bgeu;
}

/** @return true for direct unconditional control (J, Call). */
constexpr bool
isUncondDirect(Opcode op)
{
    return op == Opcode::J || op == Opcode::Call;
}

/** @return true for subroutine calls. */
constexpr bool
isCall(Opcode op)
{
    return op == Opcode::Call;
}

/** @return true for subroutine returns. */
constexpr bool
isReturn(Opcode op)
{
    return op == Opcode::Ret;
}

/** @return true for indirect jumps that are not returns. */
constexpr bool
isIndirectJump(Opcode op)
{
    return op == Opcode::Jr;
}

/** @return true for serializing instructions. */
constexpr bool
isSerializing(Opcode op)
{
    return op == Opcode::Trap || op == Opcode::Halt;
}

/** @return true for any control-flow instruction. */
constexpr bool
isControl(Opcode op)
{
    return isCondBranch(op) || isUncondDirect(op) || isReturn(op) ||
           isIndirectJump(op) || isSerializing(op);
}

/** @return true for loads. */
constexpr bool
isLoad(Opcode op)
{
    return op == Opcode::Ld;
}

/** @return true for stores. */
constexpr bool
isStore(Opcode op)
{
    return op == Opcode::St;
}

/** @return true for any memory operation. */
constexpr bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

/** @return true if the instruction writes its destination register. */
bool writesReg(const Instruction &inst);

/** @return true if the instruction reads rs1. */
bool readsRs1(const Instruction &inst);

/** @return true if the instruction reads rs2. */
bool readsRs2(const Instruction &inst);

/**
 * @return the target address of a direct control instruction (branch,
 * J, Call) located at @p pc. Must not be called for indirect control.
 */
Addr directTarget(const Instruction &inst, Addr pc);

} // namespace tcsim::isa

#endif // TCSIM_ISA_INSTRUCTION_H
