#include "sample/simpoints.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "isa/instruction.h"
#include "workload/executor.h"

namespace tcsim::sample
{

namespace
{

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[192];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out.append(buf, static_cast<std::size_t>(n));
}

/** Deterministic ±1 projection weight for (block, dimension). */
int
projectionSign(std::uint64_t seed, std::uint64_t block, unsigned dim)
{
    std::uint64_t s = seed ^ (block * 0x9e3779b97f4a7c15ULL) ^
                      (static_cast<std::uint64_t>(dim) *
                       0xc2b2ae3d27d4eb4fULL);
    return (splitmix64(s) & 1) != 0 ? 1 : -1;
}

using Point = std::array<double, kProjectionDims>;

double
dist2(const Point &a, const Point &b)
{
    double sum = 0.0;
    for (unsigned d = 0; d < kProjectionDims; ++d) {
        const double diff = a[d] - b[d];
        sum += diff * diff;
    }
    return sum;
}

struct Clustering
{
    std::vector<std::uint32_t> assign; ///< point -> cluster
    std::vector<Point> centers;
    double rss = 0.0;
};

/**
 * Seeded k-means++ initialization + Lloyd iterations. Fixed
 * iteration order and lowest-index tie-breaks everywhere, so the
 * result is a pure function of (points, k, seed).
 */
Clustering
kmeans(const std::vector<Point> &points, std::uint32_t k,
       std::uint64_t seed)
{
    const std::size_t n = points.size();
    Clustering result;
    result.centers.reserve(k);
    Rng rng(seed ^ (k * 0x9e3779b97f4a7c15ULL));

    // k-means++ seeding.
    result.centers.push_back(points[rng.below(n)]);
    std::vector<double> best_d2(n, 0.0);
    for (std::uint32_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (const Point &center : result.centers)
                best = std::min(best, dist2(points[i], center));
            best_d2[i] = best;
            total += best;
        }
        std::size_t pick = 0;
        if (total <= 0.0) {
            pick = rng.below(n);
        } else {
            const double r = rng.uniform() * total;
            double prefix = 0.0;
            pick = n - 1; // numeric fallback
            for (std::size_t i = 0; i < n; ++i) {
                prefix += best_d2[i];
                if (prefix > r) {
                    pick = i;
                    break;
                }
            }
        }
        result.centers.push_back(points[pick]);
    }

    // Lloyd iterations until stable (bounded for safety).
    result.assign.assign(n, 0);
    std::vector<std::uint64_t> sizes(k, 0);
    std::vector<Point> sums(k);
    for (unsigned iter = 0; iter < 64; ++iter) {
        bool changed = iter == 0;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t best_c = 0;
            double best = dist2(points[i], result.centers[0]);
            for (std::uint32_t c = 1; c < k; ++c) {
                const double d = dist2(points[i], result.centers[c]);
                if (d < best) { // strict: ties keep the lowest index
                    best = d;
                    best_c = c;
                }
            }
            if (result.assign[i] != best_c) {
                result.assign[i] = best_c;
                changed = true;
            }
        }
        if (!changed)
            break;
        std::fill(sizes.begin(), sizes.end(), 0);
        for (Point &sum : sums)
            sum.fill(0.0);
        for (std::size_t i = 0; i < n; ++i) {
            ++sizes[result.assign[i]];
            for (unsigned d = 0; d < kProjectionDims; ++d)
                sums[result.assign[i]][d] += points[i][d];
        }
        for (std::uint32_t c = 0; c < k; ++c) {
            if (sizes[c] == 0)
                continue; // empty cluster keeps its previous center
            for (unsigned d = 0; d < kProjectionDims; ++d)
                result.centers[c][d] =
                    sums[c][d] / static_cast<double>(sizes[c]);
        }
    }

    result.rss = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        result.rss += dist2(points[i], result.centers[result.assign[i]]);
    return result;
}

/**
 * Fraction of the swept score range a candidate k may sit above the
 * best score and still be picked (smallest such k wins). Mirrors
 * SimPoint's "smallest k with BIC >= 90% of the best" rule.
 */
constexpr double kScoreBand = 0.10;

/** BIC-style model score: lower is better. */
double
bicScore(double rss, std::size_t n, std::uint32_t k)
{
    const double nd = static_cast<double>(n) * kProjectionDims;
    const double variance = std::max(rss / nd, 1e-12);
    return nd * std::log(variance) +
           static_cast<double>(k) * (kProjectionDims + 1) *
               std::log(static_cast<double>(n));
}

} // namespace

obs::BbvDocument
profileBbv(const workload::Program &program, const std::string &benchmark,
           std::uint64_t total_insts, std::uint64_t interval_insts)
{
    TCSIM_ASSERT(interval_insts > 0 && total_insts % interval_insts == 0,
                 "BBV interval (%llu) must divide the budget (%llu)",
                 static_cast<unsigned long long>(interval_insts),
                 static_cast<unsigned long long>(total_insts));
    obs::BbvRecorder recorder(interval_insts);
    workload::FunctionalExecutor exec(program);
    Addr leader = program.entry();
    std::uint64_t boundary = interval_insts;
    while (exec.instCount() < total_insts && !exec.halted()) {
        const workload::StepResult step = exec.step();
        recorder.account(leader / isa::kInstBytes);
        // A block ends at any control instruction; the next
        // instruction leads a new block.
        if (isa::isControl(step.inst.op))
            leader = step.nextPc;
        if (exec.instCount() == boundary) {
            recorder.boundary(boundary);
            boundary += interval_insts;
        }
    }
    // Only whole intervals count (an early halt drops the tail).
    const std::uint64_t covered =
        (exec.instCount() / interval_insts) * interval_insts;
    return recorder.finish(benchmark, covered);
}

std::vector<Point>
projectBbv(const obs::BbvDocument &doc, std::uint64_t seed)
{
    std::vector<Point> points;
    points.reserve(doc.intervals.size());
    for (const obs::BbvInterval &interval : doc.intervals) {
        std::array<std::int64_t, kProjectionDims> acc{};
        std::uint64_t total = 0;
        for (const auto &[block, count] : interval.blocks) {
            total += count;
            for (unsigned d = 0; d < kProjectionDims; ++d) {
                acc[d] += projectionSign(seed, block, d) *
                          static_cast<std::int64_t>(count);
            }
        }
        Point point{};
        const double norm =
            total == 0 ? 1.0 : static_cast<double>(total);
        for (unsigned d = 0; d < kProjectionDims; ++d)
            point[d] = static_cast<double>(acc[d]) / norm;
        points.push_back(point);
    }
    return points;
}

std::string
SimpointPlan::toJson() const
{
    std::string out;
    out.reserve(1u << 12);
    out += "{\"schema\":\"tcsim-simpoints-v1\",\"benchmark\":\"";
    out += benchmark;
    out += "\",\"program_fingerprint\":\"";
    out += programFingerprint;
    appendf(out,
            "\",\"algo_version\":%" PRIu32 ",\"interval_insts\":%" PRIu64
            ",\"total_insts\":%" PRIu64 ",\"num_intervals\":%" PRIu32
            ",\"k\":%" PRIu32 ",\"simpoints\":[",
            kSimpointsAlgoVersion, intervalInsts, totalInsts,
            numIntervals, k);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Simpoint &pt = points[i];
        appendf(out,
                "%s\n{\"index\":%" PRIu32 ",\"start_insts\":%" PRIu64
                ",\"cluster\":%" PRIu32 ",\"weight_num\":%" PRIu64
                ",\"weight_den\":%" PRIu64 "}",
                i == 0 ? "" : ",", pt.index, pt.startInsts, pt.cluster,
                pt.weightNum, pt.weightDen);
    }
    out += "\n]}\n";
    return out;
}

std::optional<SimpointPlan>
SimpointPlan::fromJson(const std::string &text)
{
    const auto root = json::parse(text);
    if (!root || !root->isObject() ||
        root->getString("schema") != "tcsim-simpoints-v1" ||
        root->getUint64("algo_version") != kSimpointsAlgoVersion) {
        return std::nullopt;
    }
    SimpointPlan plan;
    plan.benchmark = root->getString("benchmark");
    plan.programFingerprint = root->getString("program_fingerprint");
    plan.intervalInsts = root->getUint64("interval_insts");
    plan.totalInsts = root->getUint64("total_insts");
    plan.numIntervals =
        static_cast<std::uint32_t>(root->getUint64("num_intervals"));
    plan.k = static_cast<std::uint32_t>(root->getUint64("k"));
    const json::Value *points = root->find("simpoints");
    if (plan.intervalInsts == 0 || points == nullptr || !points->isArray())
        return std::nullopt;
    for (const json::Value &item : points->items()) {
        if (!item.isObject())
            return std::nullopt;
        Simpoint pt;
        pt.index = static_cast<std::uint32_t>(item.getUint64("index"));
        pt.startInsts = item.getUint64("start_insts");
        pt.cluster = static_cast<std::uint32_t>(item.getUint64("cluster"));
        pt.weightNum = item.getUint64("weight_num");
        pt.weightDen = item.getUint64("weight_den");
        plan.points.push_back(pt);
    }
    if (plan.points.size() != plan.k)
        return std::nullopt;
    return plan;
}

SimpointPlan
selectSimpoints(const obs::BbvDocument &doc,
                const std::string &program_fingerprint,
                std::uint32_t max_k, std::uint64_t seed)
{
    const std::size_t n = doc.intervals.size();
    TCSIM_ASSERT(n > 0, "cannot select simpoints from an empty profile");
    TCSIM_ASSERT(max_k > 0, "max_k must be positive");
    const std::vector<Point> points = projectBbv(doc, seed);

    const auto cap = static_cast<std::uint32_t>(
        std::min<std::size_t>(max_k, n));
    // SimPoint's k-selection rule: score every k, then take the
    // SMALLEST k whose score lands within a fixed fraction of the
    // swept score range of the best. Picking the raw argmin
    // over-selects badly — with few intervals the likelihood term
    // dwarfs the BIC penalty and k runs away to max_k, which costs
    // detailed-simulation time for no accuracy (more regions = more
    // cold starts) — while the banded rule stops at the elbow.
    std::vector<Clustering> candidates;
    std::vector<double> scores;
    candidates.reserve(cap);
    for (std::uint32_t k = 1; k <= cap; ++k) {
        candidates.push_back(kmeans(points, k, seed));
        scores.push_back(bicScore(candidates.back().rss, n, k));
    }
    const double lo = *std::min_element(scores.begin(), scores.end());
    const double hi = *std::max_element(scores.begin(), scores.end());
    const double threshold = lo + kScoreBand * (hi - lo);
    std::uint32_t best_k = cap;
    for (std::uint32_t k = 1; k <= cap; ++k) {
        if (scores[k - 1] <= threshold) {
            best_k = k;
            break;
        }
    }
    Clustering best = std::move(candidates[best_k - 1]);

    // Representative per cluster: the member closest to the centroid
    // (ties -> lowest interval index).
    std::vector<std::uint64_t> sizes(best_k, 0);
    for (const std::uint32_t c : best.assign)
        ++sizes[c];
    std::vector<std::int64_t> rep(best_k, -1);
    std::vector<double> rep_d2(best_k,
                               std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = best.assign[i];
        const double d = dist2(points[i], best.centers[c]);
        if (d < rep_d2[c]) {
            rep_d2[c] = d;
            rep[c] = static_cast<std::int64_t>(i);
        }
    }

    SimpointPlan plan;
    plan.benchmark = doc.benchmark;
    plan.programFingerprint = program_fingerprint;
    plan.intervalInsts = doc.intervalInsts;
    plan.totalInsts = doc.totalInsts;
    plan.numIntervals = static_cast<std::uint32_t>(n);
    for (std::uint32_t c = 0; c < best_k; ++c) {
        if (sizes[c] == 0)
            continue; // Lloyd can strand a seed; drop empty clusters
        TCSIM_ASSERT(rep[c] >= 0);
        Simpoint pt;
        pt.index = static_cast<std::uint32_t>(rep[c]);
        pt.startInsts = pt.index * doc.intervalInsts;
        pt.weightNum = sizes[c];
        pt.weightDen = n;
        plan.points.push_back(pt);
    }
    std::sort(plan.points.begin(), plan.points.end(),
              [](const Simpoint &a, const Simpoint &b) {
                  return a.index < b.index;
              });
    // Renumber clusters in plan order so serialized ids are stable.
    plan.k = static_cast<std::uint32_t>(plan.points.size());
    for (std::uint32_t c = 0; c < plan.k; ++c)
        plan.points[c].cluster = c;
    return plan;
}

} // namespace tcsim::sample
