/**
 * @file
 * SimPoint-style representative-region selection.
 *
 * Pipeline: profileBbv() runs the program on the functional executor
 * (no timing model) collecting a basic-block vector per interval;
 * projectBbv() reduces each vector to kProjectionDims dimensions with
 * a seeded ±1 random projection; selectSimpoints() clusters the
 * projected vectors with a deterministic seeded k-means (k swept and
 * scored with a BIC-style criterion) and emits one representative
 * interval per cluster, weighted by cluster population.
 *
 * Determinism contract: every stage is a single-threaded pure
 * function of (BBV document, seed). No wall clock, no thread count,
 * no iteration over unordered containers — the same profile yields
 * bit-identical plans on every shard regardless of TCSIM_JOBS.
 * kSimpointsAlgoVersion is hashed into sampled work-unit keys, so
 * changing the algorithm invalidates cached results instead of
 * silently mixing plans.
 *
 * Weights are exact rationals (cluster size / number of intervals):
 * the sweep layer combines per-region integer stats as
 * sum(weight_num * stat) without ever rounding, keeping the sampled
 * results document inside the existing integers-only determinism
 * contract.
 *
 * Plans serialize as `tcsim-simpoints-v1`:
 *
 *   {"schema":"tcsim-simpoints-v1","benchmark":...,
 *    "program_fingerprint":...,"algo_version":1,
 *    "interval_insts":N,"total_insts":M,"num_intervals":n,"k":k,
 *    "simpoints":[{"index":i,"start_insts":s,"cluster":c,
 *                  "weight_num":w,"weight_den":n},...]}
 */

#ifndef TCSIM_SAMPLE_SIMPOINTS_H
#define TCSIM_SAMPLE_SIMPOINTS_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/bbv.h"
#include "workload/program.h"

namespace tcsim::sample
{

/** Bumped when the BBV artifact contents would change. */
constexpr std::uint32_t kBbvFormatVersion = 1;

/** Bumped when projection/clustering/selection logic changes. */
constexpr std::uint32_t kSimpointsAlgoVersion = 2;

/** Random-projection target dimensionality. */
constexpr unsigned kProjectionDims = 16;

/** Default seed for projection + clustering. */
constexpr std::uint64_t kSimpointSeed = 0x51a9'90b7'7ace'cafeULL;

/**
 * Version of the sampled warm-up scheme: one shared functional-warming
 * pass per unit trains predictors over the whole prefix preceding each
 * region and exports per-region predictor-state checkpoints; regions
 * import them and re-warm caches with a short detailed warm-up. Folded
 * into sampled work-unit hashes and predictor-checkpoint keys —
 * bumping it invalidates cached sampled results and checkpoints.
 */
constexpr std::uint32_t kSampledWarmingVersion = 1;

/**
 * Profile @p total_insts instructions of @p program functionally,
 * one BBV per @p interval_insts retired. @p interval_insts must
 * divide @p total_insts (keeps cluster weights exact rationals of
 * whole intervals). Runs at functional-executor speed — this is the
 * cheap pass sampled simulation amortizes across configurations.
 */
obs::BbvDocument profileBbv(const workload::Program &program,
                            const std::string &benchmark,
                            std::uint64_t total_insts,
                            std::uint64_t interval_insts);

/**
 * Seeded ±1 random projection of each interval's sparse BBV to
 * kProjectionDims dims, L1-normalized by the interval's instruction
 * count so vectors compare by block *mix*, not length.
 */
std::vector<std::array<double, kProjectionDims>>
projectBbv(const obs::BbvDocument &doc, std::uint64_t seed);

/** One representative interval. */
struct Simpoint
{
    std::uint32_t index = 0;      ///< interval index in the profile
    std::uint64_t startInsts = 0; ///< region start (index * interval)
    std::uint32_t cluster = 0;
    std::uint64_t weightNum = 0; ///< cluster population
    std::uint64_t weightDen = 0; ///< total intervals
};

/** The clustering result: representatives plus provenance. */
struct SimpointPlan
{
    std::string benchmark;
    std::string programFingerprint;
    std::uint64_t intervalInsts = 0;
    std::uint64_t totalInsts = 0;
    std::uint32_t numIntervals = 0;
    std::uint32_t k = 0;
    std::vector<Simpoint> points; ///< ascending by interval index

    /** Render the `tcsim-simpoints-v1` JSON document. */
    std::string toJson() const;

    /** Parse; empty optional on schema/algo-version mismatch. */
    static std::optional<SimpointPlan> fromJson(const std::string &text);
};

/**
 * Cluster @p doc's intervals for each k in [1, max_k], score with a
 * BIC-style criterion, and return the best plan. Deterministic for a
 * fixed (doc, fingerprint, max_k, seed).
 */
SimpointPlan selectSimpoints(const obs::BbvDocument &doc,
                             const std::string &program_fingerprint,
                             std::uint32_t max_k,
                             std::uint64_t seed = kSimpointSeed);

} // namespace tcsim::sample

#endif // TCSIM_SAMPLE_SIMPOINTS_H
