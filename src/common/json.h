/**
 * @file
 * A minimal JSON reader for the machine-readable artifacts the
 * simulator itself writes (bench fragments, results documents).
 *
 * Scope: strict-enough recursive-descent parsing of the full JSON
 * grammar into an owning tree. Numbers keep their source lexeme so
 * 64-bit integers written by our emitters round-trip exactly (doubles
 * lose nothing either: asUint64/asInt64 reparse the lexeme). Object
 * member order is preserved. This is a reader for trusted,
 * self-produced inputs — it rejects malformed documents but does not
 * aim to be a hardened parser for hostile ones.
 */

#ifndef TCSIM_COMMON_JSON_H
#define TCSIM_COMMON_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tcsim::json
{

/** One parsed JSON value (owning tree). */
class Value
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asDouble() const;
    std::uint64_t asUint64() const;
    std::int64_t asInt64() const;
    /** String payload (String) or raw number lexeme (Number). */
    const std::string &asString() const { return str_; }

    const std::vector<Value> &items() const { return items_; }
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return members_;
    }

    /** @return the member named @p key, or nullptr. */
    const Value *find(std::string_view key) const;

    /** Typed member lookups; @p fallback when absent or wrong type. */
    std::uint64_t getUint64(std::string_view key,
                            std::uint64_t fallback = 0) const;
    double getDouble(std::string_view key, double fallback = 0.0) const;
    std::string getString(std::string_view key,
                          std::string fallback = {}) const;

    // Builders (used by the parser; exposed for tests).
    static Value makeNull() { return Value(Kind::Null); }
    static Value makeBool(bool v);
    static Value makeNumber(std::string lexeme);
    static Value makeString(std::string v);
    static Value makeArray(std::vector<Value> items);
    static Value
    makeObject(std::vector<std::pair<std::string, Value>> members);

  private:
    explicit Value(Kind kind) : kind_(kind) {}

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string str_; // String payload or Number lexeme
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed).
 * @return the value, or std::nullopt with @p error set (when non-null)
 * to a "offset N: reason" message.
 */
std::optional<Value> parse(std::string_view text,
                           std::string *error = nullptr);

/** Parse the entire file at @p path; empty optional on I/O failure. */
std::optional<Value> parseFile(const std::string &path,
                               std::string *error = nullptr);

} // namespace tcsim::json

#endif // TCSIM_COMMON_JSON_H
