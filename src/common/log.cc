#include "common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace tcsim
{

namespace
{

LogLevel globalLevel = LogLevel::Warn;

/**
 * Guard shared by every line writer. Leaked on purpose (never
 * destroyed) so logging from static destructors stays safe.
 */
std::mutex &
lineGuard()
{
    static std::mutex *guard = new std::mutex;
    return *guard;
}

/**
 * Format the whole message (prefix + body + newline) into one buffer,
 * then hand it to logLineAtomic() as a single write. Messages longer
 * than the stack buffer fall back to a heap buffer rather than being
 * truncated.
 */
void
vreport(const char *prefix, const char *fmt, va_list args)
{
    char stack[1024];
    va_list probe;
    va_copy(probe, args);
    const int body = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (body < 0)
        return;
    const std::size_t prefixLen = std::strlen(prefix);
    const std::size_t total = prefixLen + static_cast<std::size_t>(body) + 1;
    std::vector<char> heap;
    char *buf = stack;
    if (total + 1 > sizeof(stack)) {
        heap.resize(total + 1);
        buf = heap.data();
    }
    std::memcpy(buf, prefix, prefixLen);
    std::vsnprintf(buf + prefixLen, static_cast<std::size_t>(body) + 1, fmt,
                   args);
    buf[total - 1] = '\n';
    logLineAtomic(stderr, buf, total);
}

} // namespace

void
logLineAtomic(std::FILE *stream, const char *text, std::size_t len)
{
    const bool needsNewline = len == 0 || text[len - 1] != '\n';
    std::lock_guard<std::mutex> lock(lineGuard());
    if (len > 0)
        std::fwrite(text, 1, len, stream);
    if (needsNewline)
        std::fputc('\n', stream);
    std::fflush(stream);
}

void
logLineAtomic(std::FILE *stream, const char *text)
{
    logLineAtomic(stream, text, std::strlen(text));
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info: ", fmt, args);
    va_end(args);
}

void
panicAssert(const char *condition, const char *file, int line,
            const char *fmt, ...)
{
    char detail[512];
    detail[0] = '\0';
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(detail, sizeof(detail), fmt, args);
    va_end(args);
    if (detail[0] == '\0') {
        panic("assertion '%s' failed at %s:%d", condition, file, line);
    } else {
        panic("assertion '%s' failed at %s:%d: %s", condition, file, line,
              detail);
    }
}

} // namespace tcsim
