#include "common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tcsim
{

namespace
{

LogLevel globalLevel = LogLevel::Warn;

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info: ", fmt, args);
    va_end(args);
}

void
panicAssert(const char *condition, const char *file, int line,
            const char *fmt, ...)
{
    char detail[512];
    detail[0] = '\0';
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(detail, sizeof(detail), fmt, args);
    va_end(args);
    if (detail[0] == '\0') {
        panic("assertion '%s' failed at %s:%d", condition, file, line);
    } else {
        panic("assertion '%s' failed at %s:%d: %s", condition, file, line,
              detail);
    }
}

} // namespace tcsim
