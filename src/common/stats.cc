#include "common/stats.h"

#include <iomanip>

namespace tcsim
{

void
StatDump::print(std::ostream &os) const
{
    for (const auto &[name, value] : entries_) {
        os << std::left << std::setw(44) << name << " "
           << std::setprecision(6) << value << "\n";
    }
}

double
StatDump::get(const std::string &name) const
{
    for (const auto &[entry_name, value] : entries_) {
        if (entry_name == name)
            return value;
    }
    fatal("StatDump::get: no stat named '%s'", name.c_str());
}

bool
StatDump::has(const std::string &name) const
{
    for (const auto &[entry_name, value] : entries_) {
        (void)value;
        if (entry_name == name)
            return true;
    }
    return false;
}

} // namespace tcsim
