#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tcsim::json
{

double
Value::asDouble() const
{
    return kind_ == Kind::Number ? std::strtod(str_.c_str(), nullptr)
                                 : 0.0;
}

std::uint64_t
Value::asUint64() const
{
    return kind_ == Kind::Number
               ? std::strtoull(str_.c_str(), nullptr, 10)
               : 0;
}

std::int64_t
Value::asInt64() const
{
    return kind_ == Kind::Number
               ? std::strtoll(str_.c_str(), nullptr, 10)
               : 0;
}

const Value *
Value::find(std::string_view key) const
{
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::uint64_t
Value::getUint64(std::string_view key, std::uint64_t fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isNumber() ? v->asUint64() : fallback;
}

double
Value::getDouble(std::string_view key, double fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isNumber() ? v->asDouble() : fallback;
}

std::string
Value::getString(std::string_view key, std::string fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isString() ? v->asString()
                                         : std::move(fallback);
}

Value
Value::makeBool(bool v)
{
    Value value(Kind::Bool);
    value.bool_ = v;
    return value;
}

Value
Value::makeNumber(std::string lexeme)
{
    Value value(Kind::Number);
    value.str_ = std::move(lexeme);
    return value;
}

Value
Value::makeString(std::string v)
{
    Value value(Kind::String);
    value.str_ = std::move(v);
    return value;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value value(Kind::Array);
    value.items_ = std::move(items);
    return value;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> members)
{
    Value value(Kind::Object);
    value.members_ = std::move(members);
    return value;
}

namespace
{

/** Recursive-descent parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Value>
    run(std::string *error)
    {
        std::optional<Value> value = parseValue();
        if (value) {
            skipWs();
            if (pos_ != text_.size())
                value = fail("trailing content");
        }
        if (!value && error != nullptr) {
            std::ostringstream os;
            os << "offset " << pos_ << ": " << error_;
            *error = os.str();
        }
        return value;
    }

  private:
    std::optional<Value>
    fail(const char *reason)
    {
        if (error_.empty())
            error_ = reason;
        return std::nullopt;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    std::optional<Value>
    parseValue()
    {
        if (++depth_ > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        std::optional<Value> result;
        switch (text_[pos_]) {
        case '{':
            result = parseObject();
            break;
        case '[':
            result = parseArray();
            break;
        case '"': {
            std::optional<std::string> str = parseString();
            result = str ? std::optional<Value>(
                               Value::makeString(std::move(*str)))
                         : std::nullopt;
            break;
        }
        case 't':
            result = consumeWord("true")
                         ? std::optional<Value>(Value::makeBool(true))
                         : fail("bad literal");
            break;
        case 'f':
            result = consumeWord("false")
                         ? std::optional<Value>(Value::makeBool(false))
                         : fail("bad literal");
            break;
        case 'n':
            result = consumeWord("null")
                         ? std::optional<Value>(Value::makeNull())
                         : fail("bad literal");
            break;
        default:
            result = parseNumber();
        }
        --depth_;
        return result;
    }

    std::optional<Value>
    parseObject()
    {
        ++pos_; // '{'
        std::vector<std::pair<std::string, Value>> members;
        skipWs();
        if (consume('}'))
            return Value::makeObject(std::move(members));
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::optional<std::string> key = parseString();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            std::optional<Value> value = parseValue();
            if (!value)
                return std::nullopt;
            members.emplace_back(std::move(*key), std::move(*value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Value::makeObject(std::move(members));
            return fail("expected ',' or '}'");
        }
    }

    std::optional<Value>
    parseArray()
    {
        ++pos_; // '['
        std::vector<Value> items;
        skipWs();
        if (consume(']'))
            return Value::makeArray(std::move(items));
        while (true) {
            std::optional<Value> value = parseValue();
            if (!value)
                return std::nullopt;
            items.push_back(std::move(*value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Value::makeArray(std::move(items));
            return fail("expected ',' or ']'");
        }
    }

    std::optional<std::string>
    parseString()
    {
        ++pos_; // '"'
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return std::nullopt;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return std::nullopt;
                    }
                }
                // UTF-8 encode the BMP code point (surrogate pairs in
                // our own emitters never occur; a lone surrogate is
                // encoded as-is, matching the lenient-reader scope).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                fail("bad escape");
                return std::nullopt;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<Value>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
            // sign consumed
        }
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_]))) {
            return fail("bad number");
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (consume('.')) {
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad number");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad number");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        return Value::makeNumber(
            std::string(text_.substr(start, pos_ - start)));
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

std::optional<Value>
parse(std::string_view text, std::string *error)
{
    return Parser(text).run(error);
}

std::optional<Value>
parseFile(const std::string &path, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream os;
    os << is.rdbuf();
    const std::string text = os.str();
    return parse(text, error);
}

} // namespace tcsim::json
