/**
 * @file
 * Bit-manipulation helpers used throughout the simulator.
 */

#ifndef TCSIM_COMMON_BITUTILS_H
#define TCSIM_COMMON_BITUTILS_H

#include <bit>
#include <cstdint>

#include "common/log.h"

namespace tcsim
{

/** @return a mask with the low @p nbits bits set. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << nbits) - 1);
}

/** @return bits [first, last] (inclusive, last >= first) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned last, unsigned first)
{
    return (value >> first) & mask(last - first + 1);
}

/** @return true if @p value is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** @return floor(log2(value)); @p value must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63 - std::countl_zero(value);
}

/** @return ceil(log2(value)); @p value must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return value == 1 ? 0 : floorLog2(value - 1) + 1;
}

/** Sign-extend the low @p nbits bits of @p value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned nbits)
{
    const unsigned shift = 64 - nbits;
    return static_cast<std::int64_t>(value << shift) >> shift;
}

/** Insert @p field into bits [first, first+width) of @p base. */
constexpr std::uint64_t
insertBits(std::uint64_t base, unsigned first, unsigned width,
           std::uint64_t field)
{
    const std::uint64_t m = mask(width) << first;
    return (base & ~m) | ((field << first) & m);
}

} // namespace tcsim

#endif // TCSIM_COMMON_BITUTILS_H
