/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a tcsim bug);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the simulation cannot continue due to a user-level problem
 *            (bad configuration, impossible parameter); exits cleanly.
 * warn()   - something is modeled approximately; simulation continues.
 * inform() - normal operating status messages.
 */

#ifndef TCSIM_COMMON_LOG_H
#define TCSIM_COMMON_LOG_H

#include <cstdarg>
#include <cstdio>
#include <string>

namespace tcsim
{

/** Verbosity levels for runtime message filtering. */
enum class LogLevel { Silent, Error, Warn, Info };

/** Set the global verbosity; messages above the level are suppressed. */
void setLogLevel(LogLevel level);

/** @return the current global verbosity. */
LogLevel logLevel();

/** Report an internal invariant violation and abort. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user-level error and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal modeling concern. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Write @p text to @p stream as one atomic unit under the global log
 * guard, so lines from the TCSIM_JOBS thread-pool workers never
 * interleave mid-line. @p text should already end in a newline; one is
 * appended if missing. warn()/inform()/panic()/fatal() and the obs
 * trace sinks all route through this guard.
 */
void logLineAtomic(std::FILE *stream, const char *text);

/** logLineAtomic() for a pre-sized buffer (not NUL-terminated). */
void logLineAtomic(std::FILE *stream, const char *text, std::size_t len);

/** Implementation hook for TCSIM_ASSERT; panics with context. */
[[noreturn]] void panicAssert(const char *condition, const char *file,
                              int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Abort with a message if @p condition is false. Active in all build
 * types, unlike assert(); used for cheap simulator-wide invariants.
 * Optional printf-style arguments describe the violation.
 */
#define TCSIM_ASSERT(condition, ...)                                        \
    do {                                                                    \
        if (!(condition)) {                                                 \
            ::tcsim::panicAssert(#condition, __FILE__, __LINE__,            \
                                 "" __VA_ARGS__);                           \
        }                                                                   \
    } while (0)

} // namespace tcsim

#endif // TCSIM_COMMON_LOG_H
