/**
 * @file
 * FNV-1a 64-bit hashing, the content-addressing primitive shared by
 * the artifact cache and the sweep work-unit protocol. Deterministic
 * across processes and runs (no pointer or seed salting), which is
 * what makes hashes usable as stable on-disk keys.
 */

#ifndef TCSIM_COMMON_FNV_H
#define TCSIM_COMMON_FNV_H

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace tcsim
{

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Fold @p data into a running FNV-1a state @p hash. */
constexpr std::uint64_t
fnv1aAppend(std::uint64_t hash, std::string_view data)
{
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= kFnvPrime;
    }
    return hash;
}

/** Fold the raw bytes of a trivially copyable scalar into @p hash. */
template <typename T>
std::uint64_t
fnv1aAppendScalar(std::uint64_t hash, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes =
        std::bit_cast<std::array<unsigned char, sizeof(T)>>(value);
    for (const unsigned char b : bytes) {
        hash ^= b;
        hash *= kFnvPrime;
    }
    return hash;
}

/** @return the FNV-1a 64 hash of @p data. */
constexpr std::uint64_t
fnv1a(std::string_view data)
{
    return fnv1aAppend(kFnvOffsetBasis, data);
}

/** @return @p hash rendered as 16 lowercase hex digits. */
inline std::string
hashHex(std::uint64_t hash)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace tcsim

#endif // TCSIM_COMMON_FNV_H
