/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef TCSIM_COMMON_TYPES_H
#define TCSIM_COMMON_TYPES_H

#include <cstdint>

namespace tcsim
{

/** A byte address in the simulated machine's address space. */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Monotonically increasing dynamic instruction sequence number. */
using InstSeqNum = std::uint64_t;

/** A 64-bit architectural register value. */
using RegVal = std::uint64_t;

/** Architectural register index (0..numArchRegs-1). */
using RegIndex = std::uint8_t;

/** Sentinel for "no address". */
constexpr Addr kInvalidAddr = ~Addr{0};

/** Sentinel for "no sequence number". */
constexpr InstSeqNum kInvalidSeqNum = 0;

} // namespace tcsim

#endif // TCSIM_COMMON_TYPES_H
