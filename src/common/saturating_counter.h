/**
 * @file
 * Saturating counters, the workhorse of branch prediction state.
 */

#ifndef TCSIM_COMMON_SATURATING_COUNTER_H
#define TCSIM_COMMON_SATURATING_COUNTER_H

#include <cstdint>

#include "common/log.h"

namespace tcsim
{

/**
 * An n-bit up/down saturating counter.
 *
 * For the canonical 2-bit predictor counter, values 0-1 predict
 * not-taken and 2-3 predict taken; increment on taken, decrement on
 * not-taken.
 */
class SaturatingCounter
{
  public:
    /** Construct an @p nbits counter with the given initial value. */
    explicit SaturatingCounter(unsigned nbits = 2, unsigned initial = 0)
        : max_((1u << nbits) - 1), value_(initial)
    {
        TCSIM_ASSERT(nbits >= 1 && nbits <= 16);
        TCSIM_ASSERT(initial <= max_);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Move toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    /** @return true if the counter is in the taken half of its range. */
    bool predictTaken() const { return value_ > max_ / 2; }

    /** @return true if the counter is saturated at either extreme. */
    bool isSaturated() const { return value_ == 0 || value_ == max_; }

    /** @return the raw counter value. */
    unsigned value() const { return value_; }

    /** @return the maximum representable value. */
    unsigned maxValue() const { return max_; }

    /** Set the raw value (clamped to range). */
    void
    set(unsigned value)
    {
        value_ = value > max_ ? max_ : value;
    }

    /** Reset to the weakly-not-taken midpoint (max/2). */
    void reset() { value_ = max_ / 2; }

  private:
    std::uint16_t max_;
    std::uint16_t value_;
};

} // namespace tcsim

#endif // TCSIM_COMMON_SATURATING_COUNTER_H
