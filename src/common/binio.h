/**
 * @file
 * Scalar binary stream I/O helpers shared by the checkpoint and
 * program-image serializers (little-endian host layout; these
 * artifacts are consumed on the machine that produced them or an
 * identical fleet, not interchanged across architectures).
 */

#ifndef TCSIM_COMMON_BINIO_H
#define TCSIM_COMMON_BINIO_H

#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

namespace tcsim::binio
{

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
readScalar(std::istream &is, T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(is);
}

/** Write @p magic (sized array, no terminator). */
template <std::size_t N>
void
writeMagic(std::ostream &os, const char (&magic)[N])
{
    os.write(magic, N);
}

/** @return true when the stream yields exactly @p magic next. */
template <std::size_t N>
bool
expectMagic(std::istream &is, const char (&magic)[N])
{
    char buf[N];
    is.read(buf, N);
    return is && std::memcmp(buf, magic, N) == 0;
}

} // namespace tcsim::binio

#endif // TCSIM_COMMON_BINIO_H
