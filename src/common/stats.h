/**
 * @file
 * Lightweight statistics collection: counters, running means, and
 * fixed-bucket histograms, grouped into named registries for dumping.
 */

#ifndef TCSIM_COMMON_STATS_H
#define TCSIM_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.h"

namespace tcsim
{

/** A simple monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A running mean over double-valued samples. */
class RunningMean
{
  public:
    /** Record one sample. */
    void
    sample(double value)
    {
        sum_ += value;
        ++count_;
    }

    /** @return the sample mean, or 0 if no samples were recorded. */
    double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

    /** @return the number of samples. */
    std::uint64_t count() const { return count_; }

    /** @return the sum of all samples. */
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A histogram over integer buckets [0, numBuckets); samples beyond the
 * last bucket saturate into it.
 */
class Histogram
{
  public:
    explicit Histogram(unsigned num_buckets = 17)
        : buckets_(num_buckets, 0)
    {
        TCSIM_ASSERT(num_buckets >= 1);
    }

    /** Record one sample of the given value. */
    void
    sample(unsigned value)
    {
        const unsigned idx =
            value >= buckets_.size()
                ? static_cast<unsigned>(buckets_.size()) - 1
                : value;
        ++buckets_[idx];
        ++total_;
        sum_ += value;
    }

    /** @return the count in bucket @p idx. */
    std::uint64_t bucket(unsigned idx) const { return buckets_.at(idx); }

    /** @return the fraction of samples in bucket @p idx. */
    double
    fraction(unsigned idx) const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(buckets_.at(idx)) / total_;
    }

    /** @return the number of buckets. */
    unsigned size() const { return static_cast<unsigned>(buckets_.size()); }

    /** @return the total number of samples. */
    std::uint64_t total() const { return total_; }

    /** @return the mean sampled value. */
    double
    mean() const
    {
        return total_ == 0 ? 0.0 : static_cast<double>(sum_) / total_;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * A named group of scalar statistics for human-readable dumps.
 *
 * Components register values at dump time via snapshot() so the
 * registry never holds dangling pointers into component state.
 */
class StatDump
{
  public:
    /** Add one named scalar to the dump (name taken by value so
     * composed names move in without an extra copy). */
    void
    add(std::string name, double value)
    {
        if (entries_.empty())
            entries_.reserve(64);
        entries_.emplace_back(std::move(name), value);
    }

    /** Write all entries as "name value" lines. */
    void print(std::ostream &os) const;

    /** @return value for @p name; fatal if absent (test convenience). */
    double get(const std::string &name) const;

    /** @return true if @p name is present. */
    bool has(const std::string &name) const;

    /** @return all entries in registration order (interval snapshots,
     * serialization, whole-dump comparisons in tests). */
    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

} // namespace tcsim

#endif // TCSIM_COMMON_STATS_H
