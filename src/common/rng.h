/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload generation in
 * particular) flows through Rng so that every experiment is exactly
 * reproducible from a seed. The core generator is xoshiro256**, seeded
 * via splitmix64 per Blackman & Vigna's recommendation.
 */

#ifndef TCSIM_COMMON_RNG_H
#define TCSIM_COMMON_RNG_H

#include <array>
#include <cmath>
#include <cstdint>

#include "common/log.h"

namespace tcsim
{

/** splitmix64 single step; used for seeding and cheap hashing. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x1998'07'15ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a uniform integer in [0, bound); @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        TCSIM_ASSERT(bound > 0);
        // Lemire's nearly-divisionless bounded generation.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        TCSIM_ASSERT(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Sample a geometric distribution with the given mean, shifted to
     * start at @p min. Used for basic-block sizes and loop trip counts.
     */
    unsigned
    geometric(double mean, unsigned min = 1)
    {
        if (mean <= min)
            return min;
        const double p = 1.0 / (mean - min + 1);
        const double u = uniform();
        // Inverse-transform sampling; u in [0,1) keeps log1p finite.
        double extra = std::log1p(-u) / std::log1p(-p);
        if (extra > 1e6)
            extra = 1e6;
        return min + static_cast<unsigned>(extra);
    }

    /** Fork an independent stream (hash of our next output and @p salt). */
    Rng
    fork(std::uint64_t salt)
    {
        std::uint64_t s = next() ^ (salt * 0x9e3779b97f4a7c15ULL);
        return Rng(splitmix64(s));
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace tcsim

#endif // TCSIM_COMMON_RNG_H
