/**
 * @file
 * Full processor configuration, with presets matching the paper's
 * experimental configurations (section 3).
 */

#ifndef TCSIM_SIM_CONFIG_H
#define TCSIM_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "bpred/bias_table.h"
#include "core/node_tables.h"
#include "memory/hierarchy.h"
#include "trace/fill_unit.h"
#include "trace/trace_cache.h"

namespace tcsim::sim
{

/** Which multiple-branch predictor organization to use. */
enum class MbpKind : std::uint8_t
{
    Tree,  ///< 16K x 7-counter tree PHT (baseline, Figure 3)
    Split, ///< 64K/16K/8K split tables (used with promotion)
};

/** Memory disambiguation aggressiveness (paper section 6). */
enum class Disambiguation : std::uint8_t
{
    Conservative, ///< no load bypasses a store with an unknown address
    /**
     * Memory dependence speculation in the spirit of Moshovos et al.
     * [ISCA 97] (cited by the paper's section 6): loads bypass
     * unknown-address stores unless a dependence predictor says they
     * conflicted before; violations squash and replay from the load.
     */
    Speculative,
    Perfect,      ///< all load/store dependencies speculated correctly
};

/** Everything needed to build a Processor. */
struct ProcessorConfig
{
    std::string name = "baseline";

    // ------------------------------------------------------------------
    // Front end.
    // ------------------------------------------------------------------
    /** false = the paper's reference icache-only front end. */
    bool useTraceCache = true;
    trace::TraceCacheParams traceCache;
    trace::FillUnitParams fillUnit;
    MbpKind mbpKind = MbpKind::Tree;
    std::uint32_t fetchWidth = 16;
    std::uint32_t fetchQueueBatches = 2;
    /** Partial matching [Friendly 97]; on in every paper config. */
    bool partialMatching = true;
    /** Inactive issue [Friendly 97]; on in every paper config. */
    bool inactiveIssue = true;

    // ------------------------------------------------------------------
    // Memory hierarchy.
    // ------------------------------------------------------------------
    memory::HierarchyParams hierarchy;

    // ------------------------------------------------------------------
    // Execution core.
    // ------------------------------------------------------------------
    core::NodeTableParams nodeTables;
    std::uint32_t robEntries = 512;
    std::uint32_t retireWidth = 16;
    /** Outstanding fetch-block checkpoints (paper: 3 created/cycle). */
    std::uint32_t checkpoints = 64;
    Disambiguation disambiguation = Disambiguation::Conservative;

    /** Execution latencies (cycles). */
    std::uint32_t latIntAlu = 1;
    std::uint32_t latIntMult = 3;
    std::uint32_t latIntDiv = 12;
    std::uint32_t latAddrGen = 1;
    std::uint32_t latDCacheHit = 2;
};

/**
 * @return a stable FNV-1a fingerprint over every simulation-relevant
 * field of @p config (the display name is excluded: two configs that
 * simulate identically fingerprint identically). The sweep work-unit
 * protocol folds this into unit content hashes so a changed preset
 * invalidates previously computed fragments, and the artifact cache
 * keys warmed predictor checkpoints with it.
 */
std::uint64_t configFingerprint(const ProcessorConfig &config);

/** The paper's reference icache front end (128 KB, hybrid predictor). */
ProcessorConfig icacheConfig();

/** The baseline trace cache: atomic fill, no promotion, tree MBP. */
ProcessorConfig baselineConfig();

/** Baseline + branch promotion at @p threshold (split MBP). */
ProcessorConfig promotionConfig(std::uint32_t threshold = 64);

/** Baseline + trace packing (no promotion). */
ProcessorConfig packingConfig(
    trace::PackingPolicy policy = trace::PackingPolicy::Unregulated,
    std::uint32_t granule = 2);

/** Promotion (threshold) + packing (policy) together. */
ProcessorConfig promotionPackingConfig(
    std::uint32_t threshold = 64,
    trace::PackingPolicy policy = trace::PackingPolicy::Unregulated,
    std::uint32_t granule = 2);

/**
 * @return @p cfg with the contended DRAM backstop enabled (bus + bank
 * occupancy per @p dram, `contended` forced on) and dirty-victim
 * writeback traffic issued from L1d and L2. Appends "+mem" to the
 * config name; the fingerprint gains the memory-extension block.
 */
ProcessorConfig withContendedMemory(
    ProcessorConfig cfg, const memory::DramParams &dram = {});

} // namespace tcsim::sim

#endif // TCSIM_SIM_CONFIG_H
