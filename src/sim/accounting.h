/**
 * @file
 * Fetch-cycle accounting and per-run result metrics.
 *
 * Every simulated cycle is attributed to exactly one of the paper's
 * six categories (Figure 12); every useful fetch is additionally
 * binned into the fetch-size histogram annotated with one of the
 * seven termination reasons (Figures 4 and 6).
 */

#ifndef TCSIM_SIM_ACCOUNTING_H
#define TCSIM_SIM_ACCOUNTING_H

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/stats.h"

namespace tcsim::sim
{

/** The paper's six fetch-cycle categories (Figure 12). */
enum class CycleCategory : std::uint8_t
{
    UsefulFetch,
    BranchMisses,
    CacheMisses,
    FullWindow,
    Traps,
    Misfetches,
    NumCategories
};

/** @return a printable name for @p category. */
const char *cycleCategoryName(CycleCategory category);

/** The paper's seven fetch-termination reasons (Figure 4). */
enum class FetchReason : std::uint8_t
{
    PartialMatch,
    AtomicBlocks,
    ICache,
    MispredBR,
    MaxSize,
    RetIndirTrap,
    MaximumBRs,
    NumReasons
};

/** @return a printable name for @p reason. */
const char *fetchReasonName(FetchReason reason);

/** Per-run accounting state. */
class Accounting
{
  public:
    static constexpr unsigned kMaxFetchWidth = 16;

    /** Attribute one cycle. */
    void
    cycle(CycleCategory category)
    {
        ++cycles_[static_cast<unsigned>(category)];
        ++totalCycles_;
    }

    /** Record a useful fetch of @p width with its termination. */
    void
    usefulFetch(unsigned width, FetchReason reason)
    {
        if (width > kMaxFetchWidth)
            width = kMaxFetchWidth;
        ++fetchHist_[static_cast<unsigned>(reason)][width];
        ++usefulFetches_;
        fetchedInsts_ += width;
    }

    std::uint64_t totalCycles() const { return totalCycles_; }

    std::uint64_t
    categoryCycles(CycleCategory category) const
    {
        return cycles_[static_cast<unsigned>(category)];
    }

    /** Histogram count for (reason, width). */
    std::uint64_t
    fetchCount(FetchReason reason, unsigned width) const
    {
        return fetchHist_[static_cast<unsigned>(reason)][width];
    }

    std::uint64_t usefulFetches() const { return usefulFetches_; }
    std::uint64_t fetchedInsts() const { return fetchedInsts_; }

    /** Zero all counters (measurement-window methodology). */
    void
    reset()
    {
        cycles_.fill(0);
        totalCycles_ = 0;
        for (auto &row : fetchHist_)
            for (auto &cell : row)
                cell = 0;
        usefulFetches_ = 0;
        fetchedInsts_ = 0;
    }

    /** The effective fetch rate: correct-path instructions per
     * instruction-delivering fetch. */
    double
    effectiveFetchRate() const
    {
        return usefulFetches_ == 0
                   ? 0.0
                   : static_cast<double>(fetchedInsts_) / usefulFetches_;
    }

  private:
    std::array<std::uint64_t,
               static_cast<unsigned>(CycleCategory::NumCategories)>
        cycles_{};
    std::uint64_t totalCycles_ = 0;
    std::uint64_t
        fetchHist_[static_cast<unsigned>(FetchReason::NumReasons)]
                  [kMaxFetchWidth + 1] = {};
    std::uint64_t usefulFetches_ = 0;
    std::uint64_t fetchedInsts_ = 0;
};

/** Headline metrics extracted from one simulation run. */
struct SimResult
{
    std::string benchmark;
    std::string config;

    std::uint64_t instructions = 0; ///< retired (excl. discarded)
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    double effectiveFetchRate = 0.0;

    // Integer sources of the derived doubles above and below. The
    // sweep merge layer re-derives every ratio from these at write
    // time, so merged result documents are byte-identical no matter
    // which process computed each entry.
    std::uint64_t usefulFetches = 0;
    std::uint64_t fetchedInsts = 0;
    std::uint64_t resolutionTimeSum = 0;
    std::uint64_t resolutionTimeCount = 0;
    std::uint64_t fetchesNeedingPreds[4] = {};

    std::uint64_t condBranches = 0; ///< retired conditional branches
    std::uint64_t condMispredicts = 0; ///< incl. promoted faults
    std::uint64_t promotedFaults = 0;
    std::uint64_t indirectMispredicts = 0;
    double condMispredictRate = 0.0;

    /** Mean cycles from prediction to redirect, mispredicted branches. */
    double meanResolutionTime = 0.0;

    /** Fraction of useful fetches needing 0-1 / 2 / 3 predictions. */
    double fetchesNeeding01 = 0.0;
    double fetchesNeeding2 = 0.0;
    double fetchesNeeding3 = 0.0;

    std::uint64_t cycleCat[static_cast<unsigned>(
        CycleCategory::NumCategories)] = {};
    std::uint64_t fetchHist[static_cast<unsigned>(
        FetchReason::NumReasons)][Accounting::kMaxFetchWidth + 1] = {};

    std::uint64_t tcLookups = 0;
    std::uint64_t tcHits = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t promotedRetired = 0;

    /** Full stat dump for detailed inspection. */
    StatDump stats;
};

/**
 * Render @p dump as "name value" lines in StatDump::print format,
 * re-deriving display-only ratios the canonical dump no longer stores
 * (integers-only policy): after each `<unit>.misses` that follows a
 * `<unit>.accesses`, a recomputed `<unit>.miss_ratio` line is emitted.
 */
void printStatsWithDerivedRatios(const StatDump &dump, std::ostream &os);

} // namespace tcsim::sim

#endif // TCSIM_SIM_ACCOUNTING_H
