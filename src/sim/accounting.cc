#include "sim/accounting.h"

namespace tcsim::sim
{

const char *
cycleCategoryName(CycleCategory category)
{
    switch (category) {
      case CycleCategory::UsefulFetch: return "UsefulFetch";
      case CycleCategory::BranchMisses: return "BranchMisses";
      case CycleCategory::CacheMisses: return "CacheMisses";
      case CycleCategory::FullWindow: return "FullWindow";
      case CycleCategory::Traps: return "Traps";
      case CycleCategory::Misfetches: return "Misfetches";
      default: return "?";
    }
}

const char *
fetchReasonName(FetchReason reason)
{
    switch (reason) {
      case FetchReason::PartialMatch: return "PartialMatch";
      case FetchReason::AtomicBlocks: return "AtomicBlocks";
      case FetchReason::ICache: return "ICache";
      case FetchReason::MispredBR: return "MispredBR";
      case FetchReason::MaxSize: return "MaxSize";
      case FetchReason::RetIndirTrap: return "Ret,Indir,Trap";
      case FetchReason::MaximumBRs: return "MaximumBRs";
      default: return "?";
    }
}

} // namespace tcsim::sim
