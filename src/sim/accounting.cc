#include "sim/accounting.h"

#include <iomanip>

namespace tcsim::sim
{

const char *
cycleCategoryName(CycleCategory category)
{
    switch (category) {
      case CycleCategory::UsefulFetch: return "UsefulFetch";
      case CycleCategory::BranchMisses: return "BranchMisses";
      case CycleCategory::CacheMisses: return "CacheMisses";
      case CycleCategory::FullWindow: return "FullWindow";
      case CycleCategory::Traps: return "Traps";
      case CycleCategory::Misfetches: return "Misfetches";
      default: return "?";
    }
}

const char *
fetchReasonName(FetchReason reason)
{
    switch (reason) {
      case FetchReason::PartialMatch: return "PartialMatch";
      case FetchReason::AtomicBlocks: return "AtomicBlocks";
      case FetchReason::ICache: return "ICache";
      case FetchReason::MispredBR: return "MispredBR";
      case FetchReason::MaxSize: return "MaxSize";
      case FetchReason::RetIndirTrap: return "Ret,Indir,Trap";
      case FetchReason::MaximumBRs: return "MaximumBRs";
      default: return "?";
    }
}

void
printStatsWithDerivedRatios(const StatDump &dump, std::ostream &os)
{
    const auto emit = [&os](const std::string &name, double value) {
        os << std::left << std::setw(44) << name << " "
           << std::setprecision(6) << value << "\n";
    };
    const auto &entries = dump.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &[name, value] = entries[i];
        emit(name, value);
        const auto dot = name.rfind('.');
        if (dot == std::string::npos ||
            name.compare(dot, std::string::npos, ".misses") != 0 || i == 0)
            continue;
        const std::string prefix = name.substr(0, dot);
        const auto &[prev_name, accesses] = entries[i - 1];
        if (prev_name == prefix + ".accesses")
            emit(prefix + ".miss_ratio",
                 accesses == 0.0 ? 0.0 : value / accesses);
    }
}

} // namespace tcsim::sim
