#include "sim/config.h"

#include <algorithm>
#include <vector>

#include "common/fnv.h"

namespace tcsim::sim
{

namespace
{

std::uint64_t
cacheFingerprint(std::uint64_t hash, const memory::CacheParams &params)
{
    hash = fnv1aAppendScalar(hash, params.sizeBytes);
    hash = fnv1aAppendScalar(hash, params.assoc);
    hash = fnv1aAppendScalar(hash, params.lineBytes);
    hash = fnv1aAppendScalar(hash, params.accessLatency);
    return hash;
}

} // namespace

std::uint64_t
configFingerprint(const ProcessorConfig &config)
{
    // Every simulation-relevant field participates; keep this in sync
    // with ProcessorConfig and the nested parameter structs. A field
    // left out here would let two behaviorally different configs share
    // cached artifacts and merged fragments.
    std::uint64_t hash = kFnvOffsetBasis;
    hash = fnv1aAppendScalar(hash, config.useTraceCache);
    hash = fnv1aAppendScalar(hash, config.traceCache.numSegments);
    hash = fnv1aAppendScalar(hash, config.traceCache.assoc);
    hash = fnv1aAppendScalar(hash, config.traceCache.pathAssociativity);
    hash = fnv1aAppendScalar(
        hash, static_cast<std::uint8_t>(config.fillUnit.packing));
    hash = fnv1aAppendScalar(hash, config.fillUnit.packingGranule);
    hash = fnv1aAppendScalar(hash, config.fillUnit.promotion);
    hash = fnv1aAppendScalar(hash, config.fillUnit.biasTable.entries);
    hash = fnv1aAppendScalar(hash,
                             config.fillUnit.biasTable.promoteThreshold);
    hash = fnv1aAppendScalar(hash, config.fillUnit.biasTable.counterMax);
    hash = fnv1aAppendScalar(hash, config.fillUnit.staticPromotion);
    {
        // The static-promotion map is unordered; hash a sorted copy.
        std::vector<std::pair<Addr, bool>> sites(
            config.fillUnit.staticPromotions.begin(),
            config.fillUnit.staticPromotions.end());
        std::sort(sites.begin(), sites.end());
        hash = fnv1aAppendScalar(hash,
                                 static_cast<std::uint64_t>(sites.size()));
        for (const auto &[pc, dir] : sites) {
            hash = fnv1aAppendScalar(hash, pc);
            hash = fnv1aAppendScalar(hash, dir);
        }
    }
    hash = fnv1aAppendScalar(hash,
                             static_cast<std::uint8_t>(config.mbpKind));
    hash = fnv1aAppendScalar(hash, config.fetchWidth);
    hash = fnv1aAppendScalar(hash, config.fetchQueueBatches);
    hash = fnv1aAppendScalar(hash, config.partialMatching);
    hash = fnv1aAppendScalar(hash, config.inactiveIssue);
    hash = cacheFingerprint(hash, config.hierarchy.icache);
    hash = cacheFingerprint(hash, config.hierarchy.dcache);
    hash = cacheFingerprint(hash, config.hierarchy.l2);
    hash = fnv1aAppendScalar(hash, config.hierarchy.memoryLatency);
    {
        // Memory-model extension block (contended DRAM, issued
        // writebacks). Hashed only when some feature is enabled so
        // every pre-extension config keeps its historical fingerprint
        // — and with it the sweep unit hashes embedded in committed
        // tcsim-bench-results-v1 documents.
        const memory::DramParams &dram = config.hierarchy.dram;
        const bool wb = config.hierarchy.icache.writebackToNext ||
                        config.hierarchy.dcache.writebackToNext ||
                        config.hierarchy.l2.writebackToNext;
        if (dram.contended || wb) {
            hash = fnv1aAppend(hash, "mem-ext-v1");
            hash = fnv1aAppendScalar(hash,
                                     config.hierarchy.icache.writebackToNext);
            hash = fnv1aAppendScalar(hash,
                                     config.hierarchy.dcache.writebackToNext);
            hash = fnv1aAppendScalar(hash,
                                     config.hierarchy.l2.writebackToNext);
            hash = fnv1aAppendScalar(hash, dram.contended);
            hash = fnv1aAppendScalar(hash, dram.latency);
            hash = fnv1aAppendScalar(hash, dram.busBytesPerCycle);
            hash = fnv1aAppendScalar(hash, dram.banks);
            hash = fnv1aAppendScalar(hash, dram.rowBytes);
            hash = fnv1aAppendScalar(hash, dram.rowHitLatency);
            hash = fnv1aAppendScalar(hash, dram.rowMissLatency);
            hash = fnv1aAppendScalar(hash, dram.maxOutstanding);
        }
    }
    hash = fnv1aAppendScalar(hash, config.nodeTables.numUnits);
    hash = fnv1aAppendScalar(hash, config.nodeTables.entriesPerUnit);
    hash = fnv1aAppendScalar(hash, config.robEntries);
    hash = fnv1aAppendScalar(hash, config.retireWidth);
    hash = fnv1aAppendScalar(hash, config.checkpoints);
    hash = fnv1aAppendScalar(
        hash, static_cast<std::uint8_t>(config.disambiguation));
    hash = fnv1aAppendScalar(hash, config.latIntAlu);
    hash = fnv1aAppendScalar(hash, config.latIntMult);
    hash = fnv1aAppendScalar(hash, config.latIntDiv);
    hash = fnv1aAppendScalar(hash, config.latAddrGen);
    hash = fnv1aAppendScalar(hash, config.latDCacheHit);
    return hash;
}

ProcessorConfig
icacheConfig()
{
    ProcessorConfig cfg;
    cfg.name = "icache";
    cfg.useTraceCache = false;
    // A large dual-ported instruction cache replaces the TC + 4 KB
    // support icache (paper section 3).
    cfg.hierarchy.icache.sizeBytes = 128 * 1024;
    return cfg;
}

ProcessorConfig
baselineConfig()
{
    ProcessorConfig cfg;
    cfg.name = "baseline";
    cfg.useTraceCache = true;
    cfg.fillUnit.packing = trace::PackingPolicy::Atomic;
    cfg.fillUnit.promotion = false;
    cfg.mbpKind = MbpKind::Tree;
    return cfg;
}

ProcessorConfig
promotionConfig(std::uint32_t threshold)
{
    ProcessorConfig cfg = baselineConfig();
    cfg.name = "promotion-t" + std::to_string(threshold);
    cfg.fillUnit.promotion = true;
    cfg.fillUnit.biasTable.promoteThreshold = threshold;
    // Promotion skews demand toward the first prediction; the paper
    // pairs it with the restructured split predictor (section 4).
    cfg.mbpKind = MbpKind::Split;
    return cfg;
}

ProcessorConfig
packingConfig(trace::PackingPolicy policy, std::uint32_t granule)
{
    ProcessorConfig cfg = baselineConfig();
    cfg.name = std::string("packing-") + trace::packingPolicyName(policy);
    cfg.fillUnit.packing = policy;
    cfg.fillUnit.packingGranule = granule;
    return cfg;
}

ProcessorConfig
withContendedMemory(ProcessorConfig cfg, const memory::DramParams &dram)
{
    cfg.name += "+mem";
    cfg.hierarchy.dram = dram;
    cfg.hierarchy.dram.contended = true;
    // Under a contended backstop, eviction traffic must be charged
    // where it lands: L1d dirty victims write into the L2, L2 victims
    // onto the memory bus. (The icache never holds dirty lines.)
    cfg.hierarchy.dcache.writebackToNext = true;
    cfg.hierarchy.l2.writebackToNext = true;
    return cfg;
}

ProcessorConfig
promotionPackingConfig(std::uint32_t threshold,
                       trace::PackingPolicy policy, std::uint32_t granule)
{
    ProcessorConfig cfg = promotionConfig(threshold);
    cfg.name = std::string("promo-pack-") +
               trace::packingPolicyName(policy);
    cfg.fillUnit.packing = policy;
    cfg.fillUnit.packingGranule = granule;
    return cfg;
}

} // namespace tcsim::sim
