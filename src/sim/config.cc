#include "sim/config.h"

namespace tcsim::sim
{

ProcessorConfig
icacheConfig()
{
    ProcessorConfig cfg;
    cfg.name = "icache";
    cfg.useTraceCache = false;
    // A large dual-ported instruction cache replaces the TC + 4 KB
    // support icache (paper section 3).
    cfg.hierarchy.icache.sizeBytes = 128 * 1024;
    return cfg;
}

ProcessorConfig
baselineConfig()
{
    ProcessorConfig cfg;
    cfg.name = "baseline";
    cfg.useTraceCache = true;
    cfg.fillUnit.packing = trace::PackingPolicy::Atomic;
    cfg.fillUnit.promotion = false;
    cfg.mbpKind = MbpKind::Tree;
    return cfg;
}

ProcessorConfig
promotionConfig(std::uint32_t threshold)
{
    ProcessorConfig cfg = baselineConfig();
    cfg.name = "promotion-t" + std::to_string(threshold);
    cfg.fillUnit.promotion = true;
    cfg.fillUnit.biasTable.promoteThreshold = threshold;
    // Promotion skews demand toward the first prediction; the paper
    // pairs it with the restructured split predictor (section 4).
    cfg.mbpKind = MbpKind::Split;
    return cfg;
}

ProcessorConfig
packingConfig(trace::PackingPolicy policy, std::uint32_t granule)
{
    ProcessorConfig cfg = baselineConfig();
    cfg.name = std::string("packing-") + trace::packingPolicyName(policy);
    cfg.fillUnit.packing = policy;
    cfg.fillUnit.packingGranule = granule;
    return cfg;
}

ProcessorConfig
promotionPackingConfig(std::uint32_t threshold,
                       trace::PackingPolicy policy, std::uint32_t granule)
{
    ProcessorConfig cfg = promotionConfig(threshold);
    cfg.name = std::string("promo-pack-") +
               trace::packingPolicyName(policy);
    cfg.fillUnit.packing = policy;
    cfg.fillUnit.packingGranule = granule;
    return cfg;
}

} // namespace tcsim::sim
