/**
 * @file
 * The processor: an executable-driven, wrong-path-modeling cycle
 * simulator of the paper's pipeline (Figure 2): fetch -> issue ->
 * schedule -> execute, with in-order retire feeding the fill unit.
 *
 * Key mechanisms:
 *  - trace-cache or icache front end (fetch::FetchEngine) with
 *    speculative history/RAS maintenance;
 *  - value-based Tomasulo execution: renamed operands flow through
 *    node tables and 16 universal functional units, so wrong paths
 *    execute real (wrong) values and branch outcomes come from actual
 *    execution;
 *  - checkpoint-repair recovery implemented by rebuild: on recovery to
 *    instruction X, younger instructions are squashed and the RAT,
 *    global history and RAS are rebuilt from architectural state plus
 *    the surviving in-flight window (bounded by the checkpoint pool,
 *    which also throttles fetch exactly as the paper's 3-per-cycle
 *    checkpoint constraint does);
 *  - inactive issue: segment instructions beyond a partial-match
 *    divergence dispatch into a shadow rename context; when the
 *    diverging branch resolves against its prediction and along the
 *    segment's embedded path they are salvaged (activated), otherwise
 *    they retire as discarded no-ops;
 *  - branch promotion faults: a promoted branch whose outcome differs
 *    from its static direction recovers to the previous fetch-block
 *    checkpoint and refetches with a one-shot direction override;
 *  - an architectural oracle (FunctionalExecutor) classifies fetched
 *    instructions as correct/wrong path for statistics, verifies the
 *    retired stream, and supplies perfect memory disambiguation.
 */

#ifndef TCSIM_SIM_PROCESSOR_H
#define TCSIM_SIM_PROCESSOR_H

#include <array>
#include <deque>
#include <functional>
#include <iosfwd>
#include <utility>
#include <memory>
#include <vector>

#include "bpred/hybrid.h"
#include "bpred/multi.h"
#include "core/dyninst.h"
#include "core/node_tables.h"
#include "fetch/fetch_engine.h"
#include "memory/hierarchy.h"
#include "obs/intervals.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/accounting.h"
#include "sim/config.h"
#include "trace/fill_unit.h"
#include "trace/trace_cache.h"
#include "workload/archstate.h"
#include "workload/btrace.h"
#include "workload/executor.h"
#include "workload/program.h"

namespace tcsim::sim
{

/** The whole machine. */
class Processor
{
  public:
    Processor(const ProcessorConfig &config,
              const workload::Program &program);
    /** The processor stores a reference; temporaries are rejected. */
    Processor(const ProcessorConfig &, workload::Program &&) = delete;
    ~Processor();

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /**
     * Run until the program halts or @p max_insts instructions have
     * retired.
     * @return the collected metrics
     */
    SimResult run(std::uint64_t max_insts);

    /** Advance the machine by one cycle (exposed for tests). */
    void step();

    /** @return true once Halt has retired (or max instructions hit). */
    bool done() const { return done_; }

    Cycle cycle() const { return cycle_; }
    std::uint64_t retiredInsts() const { return retiredInsts_; }

    const Accounting &accounting() const { return accounting_; }
    const trace::TraceCache *traceCache() const { return traceCache_.get(); }
    const trace::FillUnit *fillUnit() const { return fillUnit_.get(); }
    memory::Hierarchy &hierarchy() { return hierarchy_; }

    /** Build the result snapshot (also done by run()). */
    SimResult makeResult() const;

    /**
     * Serialize the trainable predictor state (multiple branch
     * predictor, hybrid predictor, fill-unit bias table) for
     * warm-start checkpoints. importPredictorState() rejects a blob
     * whose front-end organization or table geometry differs from
     * this processor's configuration and returns false; on failure
     * the processor must be discarded (components restored before the
     * mismatch keep the imported state).
     */
    void exportPredictorState(std::ostream &os) const;
    bool importPredictorState(std::istream &is);

    /**
     * Serialize the FULL warm microarchitectural state: the predictor
     * state above plus the indirect-target table, the cache tag
     * arrays (I/D/L2) and the trace-cache contents. This is what a
     * sampled-simulation region needs to start as if the whole prefix
     * had executed; produced by a functional-warming pass (see
     * functionalWarmup) and imported into a fresh processor of the
     * same configuration. Same failure contract as
     * importPredictorState().
     */
    void exportWarmState(std::ostream &os) const;
    bool importWarmState(std::istream &is);

    /**
     * Zero all statistics while keeping microarchitectural state
     * (caches, predictors, bias table, in-flight window): run a
     * warm-up phase, reset, then measure a steady-state window.
     */
    void resetStats();

    /**
     * Warm-start a pristine processor at an architectural checkpoint
     * (sampled simulation): the oracle, committed mirrors (registers,
     * memory, history, RAS) and speculative front-end state are all
     * repositioned at ckpt.instIndex as if the prefix had retired,
     * with cold caches and predictors. run(N) afterwards treats N as
     * an absolute retired-instruction index, so a representative
     * region [S, S+L) is `warmStart(ckpt_at_S); run(S + L)`. Must be
     * called before any cycle has been simulated.
     */
    void warmStart(const workload::ArchCheckpoint &ckpt);

    /**
     * Functionally fast-forward committed state from the current
     * position to absolute retired-instruction index @p until while
     * warming the trainable structures (SMARTS-style functional
     * warming): each functionally-executed instruction applies the
     * retire-time updates a detailed run would — branch-predictor
     * training, indirect-target updates, fill-unit trace construction
     * (which also fills the trace cache and trains the bias table) —
     * and touches the instruction/data cache tags, without simulating
     * any pipeline cycles. Warms exactly the state exportWarmState()
     * captures. Callable repeatedly with ascending @p until on a
     * never-cycled processor, so one warming pass can emit checkpoints
     * at several positions. Fatal if the program halts before
     * @p until.
     */
    void functionalWarmup(std::uint64_t until);

    // ------------------------------------------------------------------
    // Binary branch/fetch trace record and replay (tcsim-btrace-v1).
    // ------------------------------------------------------------------

    /**
     * Front-end-visible outcome of one record or replay control-flow
     * pass. The pass drives the icache, trace cache, fill unit and all
     * predictors from the retired control-flow stream without
     * simulating pipeline cycles, so record and replay of the same
     * stream must agree on every field — outcomeHash (FNV-1a over each
     * control transfer's pc/next-pc/direction) and finalHistory are
     * the bit-identity witnesses for the branch-outcome stream and the
     * predictor-visible history.
     */
    struct ControlFlowResult
    {
        std::uint64_t instructions = 0;    ///< dynamic insts covered
        std::uint64_t records = 0;         ///< control-flow events
        std::uint64_t condBranches = 0;
        std::uint64_t condMispredicts = 0; ///< hybrid-predictor misses
        std::uint64_t returns = 0;
        std::uint64_t returnMispredicts = 0; ///< committed-RAS misses
        std::uint64_t indirectJumps = 0;
        std::uint64_t indirectMispredicts = 0;
        std::uint64_t traps = 0;
        std::uint64_t icacheAccesses = 0;
        std::uint64_t icacheMisses = 0;
        std::uint64_t tcLookups = 0; ///< one lookup per fetch leader
        std::uint64_t tcHits = 0;
        std::uint64_t outcomeHash = 0;
        std::uint64_t finalHistory = 0;
        bool halted = false;
    };

    /**
     * Execute up to @p max_insts instructions through the oracle,
     * appending every retired control-flow event to @p writer (which
     * this finalizes via close()). Requires a pristine processor; the
     * pass is terminal — discard the processor afterwards.
     */
    ControlFlowResult recordTrace(workload::BtraceWriter &writer,
                                  std::uint64_t max_insts);

    /**
     * Drive the front end purely from @p reader: non-control
     * instructions are walked from the program image, control
     * transfers take their directions and targets from the trace.
     * Fatal on any divergence between the walked pc and the next
     * record's pc. Same pristine/terminal contract as recordTrace().
     */
    ControlFlowResult replayTrace(const workload::BtraceReader &reader);

    // ------------------------------------------------------------------
    // Observability (all opt-in; null pointers keep the hot paths at
    // one predictable branch each and never change simulation state).
    // ------------------------------------------------------------------

    /**
     * Attach @p tracer to every instrumented component (fetch engine,
     * trace cache, fill unit + bias table, cache hierarchy, core) and
     * wire its timestamp clock to this processor's cycle counter.
     * Pass null to detach. The tracer must outlive the processor run.
     */
    void attachTracer(obs::Tracer *tracer);

    /**
     * Sample cumulative counters into @p recorder every
     * recorder->intervalInsts() retired instructions; run() appends
     * the final partial sample. Pass null to detach.
     */
    void attachIntervalRecorder(obs::IntervalRecorder *recorder);

    /** Account per-stage host time into @p profiler during step(). */
    void attachProfiler(obs::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Snapshot the cumulative interval counters (also used by run()). */
    obs::IntervalCounters intervalCounters() const;

  private:
    /** A fetched batch plus oracle classification metadata. */
    struct PendingBatch
    {
        fetch::FetchBatch batch;
        std::uint64_t group = 0;
        Cycle fetchCycle = 0;
        bool wasOnPath = false;
        std::uint64_t oracleStart = 0;
        unsigned correctPrefix = 0;
    };
    struct RecoveryRequest
    {
        InstSeqNum keepSeq = 0; ///< 0 = squash the whole window
        /** Seq of the resolving instruction; arbitration keeps the
         * architecturally oldest origin (NOT the smallest keepSeq: a
         * young promoted fault backing up to the retire boundary must
         * not beat an older branch's recovery). */
        InstSeqNum originSeq = 0;
        Addr redirect = kInvalidAddr;
        CycleCategory cause = CycleCategory::BranchMisses;
        bool countResolution = false;
        Cycle predictedCycle = 0;
        /** Salvage: activate (salvageFrom, keepSeq] before rebuild. */
        bool salvage = false;
        InstSeqNum salvageFrom = 0;
        /** Promoted-fault override installed on apply. */
        bool overrideValid = false;
        Addr overridePc = 0;
        bool overrideDir = false;
        unsigned overrideSkip = 0;
    };

    // ------------------------------------------------------------------
    // Oracle bookkeeping.
    // ------------------------------------------------------------------
    struct OracleEntry
    {
        workload::StepResult step;
    };

    void extendOracle(std::uint64_t upto_idx);
    const workload::StepResult &oracleAt(std::uint64_t idx);
    void growOracleRing();

    /**
     * Shared record/replay loop: @p source yields successive retired
     * steps (false = exhausted), @p start_pc is the first fetch
     * leader, @p writer (optional) receives one record per control
     * instruction. Both drivers share this body so their component
     * updates cannot drift apart.
     */
    ControlFlowResult
    controlFlowPass(const std::function<bool(workload::StepResult &)> &source,
                    Addr start_pc, workload::BtraceWriter *writer);

    // ------------------------------------------------------------------
    // Pipeline stages (called youngest-last each cycle).
    // ------------------------------------------------------------------
    void retireStage();
    void completeStage();
    void scheduleStage();
    void dispatchStage();
    void fetchStage();

    // Helpers.
    core::DynInst *instFor(InstSeqNum seq);
    const core::DynInst *instFor(InstSeqNum seq) const;
    core::DynInst &allocInst();
    void wakeDependents(core::DynInst &producer);
    bool operandsReady(const core::DynInst &inst) const;
    void enqueueReady(core::DynInst &inst);
    void executeInst(core::DynInst &inst);
    bool tryScheduleMemory(core::DynInst &inst);
    void resolveControl(core::DynInst &inst);
    void requestRecovery(const RecoveryRequest &request);
    void applyRecovery();
    void squashYoungerThan(InstSeqNum keep_seq);
    /** Rebuild RAT/history/RAS; @return the salvage redirect target
     * (kInvalidAddr unless computing one was requested via @p tail). */
    Addr rebuildSpeculativeState(const core::DynInst *tail);
    void classifyFetchBatch(PendingBatch &pending);
    void retireOne(core::DynInst &inst);
    RegVal loadValueFor(core::DynInst &load, bool &forwarded);

    // ------------------------------------------------------------------
    // Window-indexed lookups. The hot per-event scans (store-order
    // violation, load forwarding/disambiguation, promoted-fault
    // checkpoint selection) are answered from incrementally maintained
    // indexes in O(1)/O(log n) instead of walking robOrder_ or
    // storeQueue_. The original reference scans are kept as slow*
    // twins; TCSIM_VERIFY_WINDOW_INDEX=1 cross-checks every event.
    // ------------------------------------------------------------------
    /** First robOrder_ position with seq >= @p seq (robOrder_ is
     * sorted ascending but not contiguous — squashes leave gaps). */
    std::deque<InstSeqNum>::const_iterator
    robLowerBound(InstSeqNum seq) const;
    static std::uint32_t addrBucket(Addr addr);
    static void addrIndexInsert(std::vector<std::vector<InstSeqNum>> &index,
                                Addr addr, InstSeqNum seq);
    static void addrIndexRemove(std::vector<std::vector<InstSeqNum>> &index,
                                Addr addr, InstSeqNum seq);
    void unknownStoreResolved(InstSeqNum seq);
    const core::DynInst *
    youngestMatchingStoreBefore(const core::DynInst &load) const;
    bool loadMayProceed(const core::DynInst &load) const;
    const core::DynInst *
    oldestViolatingLoadAfter(const core::DynInst &store) const;
    const core::DynInst *
    previousCheckpointFor(const core::DynInst &inst) const;
    // Reference implementations (pre-index scans, verify mode only).
    bool slowLoadDisambiguation(const core::DynInst &load) const;
    const core::DynInst *
    slowForwardingStore(const core::DynInst &load) const;
    const core::DynInst *
    slowOldestViolatingLoadAfter(const core::DynInst &store) const;
    const core::DynInst *
    slowPreviousCheckpointFor(const core::DynInst &inst) const;
    InstSeqNum slowKeepSeqBefore(InstSeqNum seq) const;

    // ------------------------------------------------------------------
    // Configuration and substrate.
    // ------------------------------------------------------------------
    ProcessorConfig config_;
    const workload::Program &program_;
    memory::Hierarchy hierarchy_;
    std::unique_ptr<trace::TraceCache> traceCache_;
    std::unique_ptr<trace::FillUnit> fillUnit_;
    std::unique_ptr<bpred::MultipleBranchPredictor> mbp_;
    std::unique_ptr<bpred::HybridPredictor> hybrid_;
    fetch::FrontEndState frontEnd_;
    std::unique_ptr<fetch::FetchEngine> fetchEngine_;

    // ------------------------------------------------------------------
    // Oracle state.
    // ------------------------------------------------------------------
    std::unique_ptr<workload::FunctionalExecutor> oracle_;
    /** Power-of-two ring of oracle steps: global index i lives at
     * oracleRing_[i & (size-1)]. Live span is [oracleBase_,
     * oracleBase_ + oracleCount_); trimming retired entries is pointer
     * arithmetic, and steady state never allocates. */
    std::vector<workload::StepResult> oracleRing_;
    std::uint64_t oracleBase_ = 0;   ///< oldest live global index
    std::uint64_t oracleCount_ = 0;  ///< live entries in the ring
    std::uint64_t oracleFetchIdx_ = 0;
    std::uint64_t oracleRetireIdx_ = 0;
    bool onTruePath_ = true;
    CycleCategory offPathCause_ = CycleCategory::BranchMisses;

    // ------------------------------------------------------------------
    // Committed (architectural) state.
    // ------------------------------------------------------------------
    workload::SparseMemory memory_;
    std::array<RegVal, isa::kNumArchRegs> archRegs_{};
    std::vector<Addr> archRas_;
    std::uint64_t archHistory_ = 0;
    /** Recovery-rebuild RAS scratch; swapped with the front end's
     * stack each recovery so rebuilds reuse capacity. */
    std::vector<Addr> rasScratch_;

    // ------------------------------------------------------------------
    // Rename state.
    // ------------------------------------------------------------------
    struct RatEntry
    {
        bool isValue = true;
        RegVal value = 0;
        InstSeqNum tag = kInvalidSeqNum;
    };
    using Rat = std::array<RatEntry, isa::kNumArchRegs>;
    Rat rat_;

    // ------------------------------------------------------------------
    // Window state.
    // ------------------------------------------------------------------
    std::vector<core::DynInst> robStorage_;
    std::deque<InstSeqNum> robOrder_;
    InstSeqNum nextSeq_ = 1;
    core::NodeTables nodeTables_;
    std::deque<InstSeqNum> storeQueue_; // sorted by seq
    std::uint32_t outstandingCheckpoints_ = 0;

    /**
     * Checkpoint stack: seqs of the *active* block-ending branches in
     * flight, ascending. Pushed at dispatch (and at salvage
     * activation), popped from the back on squash and from the front
     * when the branch retires. Promoted-fault recovery and
     * store-violation keepSeq selection read their targets from here
     * instead of scanning robOrder_.
     */
    std::deque<InstSeqNum> checkpointStack_;

    /** Hashed memAddr -> in-flight seqs indexes. Buckets keep their
     * capacity across erases so steady state never allocates; entries
     * are re-validated against the instruction's actual memAddr, so
     * hash collisions only cost a skipped element. */
    static constexpr std::uint32_t kAddrIndexBuckets = 1024;
    std::vector<std::vector<InstSeqNum>> loadAddrIndex_;  // fired loads
    std::vector<std::vector<InstSeqNum>> storeAddrIndex_; // addr-known stores
    /** In-flight stores whose address is still unknown, sorted by seq
     * (dispatch order). */
    std::vector<InstSeqNum> unknownStores_;
    /** TCSIM_VERIFY_WINDOW_INDEX=1: run the reference scans alongside
     * every indexed lookup and assert agreement. */
    bool verifyIndexed_ = false;

    /**
     * Memory dependence predictor (Speculative mode): 2-bit conflict
     * counters indexed by load pc. A high counter makes the load wait
     * for unknown-address older stores, like the conservative policy.
     */
    std::vector<std::uint8_t> memDepTable_;
    std::uint64_t memOrderViolations_ = 0;

    std::uint32_t memDepIndex(Addr pc) const;
    bool memDepPredictsConflict(Addr pc) const;
    void recordMemDepViolation(Addr load_pc);
    void checkStoreOrderViolation(core::DynInst &store);

    // ------------------------------------------------------------------
    // Fetch state.
    // ------------------------------------------------------------------
    std::deque<PendingBatch> fetchQueue_;
    fetch::FetchBatch scratchBatch_;
    /** Retired FetchBatch shells recycled into scratchBatch_ so the
     * fetch loop reuses instruction-vector capacity instead of
     * reallocating every cycle. */
    std::vector<fetch::FetchBatch> batchPool_;
    Addr fetchPc_ = 0;
    std::uint64_t nextFetchGroup_ = 1;
    Cycle icacheStallUntil_ = 0;
    bool serializeStall_ = false;
    Addr resumeAfterSerialize_ = kInvalidAddr;

    // ------------------------------------------------------------------
    // Recovery state (one recovery applied per cycle, oldest wins).
    // ------------------------------------------------------------------
    bool recoveryPending_ = false;
    RecoveryRequest recovery_;

    /** Completion events: (completeCycle, seq) min-heap. */
    std::vector<std::pair<Cycle, InstSeqNum>> completionHeap_;

    // ------------------------------------------------------------------
    // Run state and statistics.
    // ------------------------------------------------------------------
    Cycle cycle_ = 0;
    bool done_ = false;
    bool haltRetired_ = false;
    std::uint64_t retiredInsts_ = 0;
    std::uint64_t maxInsts_ = 0;
    /** Measurement-window baselines set by resetStats(). */
    Cycle statBaseCycle_ = 0;
    std::uint64_t statBaseInsts_ = 0;
    Accounting accounting_;
    std::deque<std::tuple<Addr, isa::Opcode, InstSeqNum, std::uint64_t>>
        debugRetireLog_;
    std::deque<std::tuple<Cycle, InstSeqNum, Addr, int, bool>>
        debugRecoveryLog_;

    std::uint64_t retiredCondBranches_ = 0;
    std::uint64_t condMispredicts_ = 0;
    std::uint64_t promotedFaults_ = 0;
    std::uint64_t indirectMispredicts_ = 0;
    std::uint64_t returnMisfetches_ = 0;
    std::uint64_t retiredReturns_ = 0;
    std::uint64_t retiredIndirects_ = 0;
    std::uint64_t promotedRetired_ = 0;
    std::uint64_t resolutionTimeSum_ = 0;
    std::uint64_t resolutionTimeCount_ = 0;
    std::uint64_t fetchesNeedingPreds_[4] = {0, 0, 0, 0};
    std::uint64_t predictionsUsedSum_ = 0;

    // ------------------------------------------------------------------
    // Observability hooks (see attach* above).
    // ------------------------------------------------------------------
    obs::Tracer *tracer_ = nullptr;
    obs::IntervalRecorder *intervals_ = nullptr;
    /** Cached next snapshot boundary (avoids a division per cycle). */
    std::uint64_t intervalNextAt_ = 0;
    obs::SelfProfiler *profiler_ = nullptr;
};

} // namespace tcsim::sim

#endif // TCSIM_SIM_PROCESSOR_H
