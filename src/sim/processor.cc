#include "sim/processor.h"

#include <algorithm>
#include <cstdlib>
#include <cstdio>
#include <istream>
#include <ostream>
#include <tuple>

#include "common/binio.h"
#include "common/fnv.h"
#include "common/log.h"
#include "core/rename_overlay.h"

namespace tcsim::sim
{

using core::DynInst;
using isa::Opcode;
using workload::FunctionalExecutor;

namespace
{

/** Circular DynInst storage slots; must exceed any live seq span. */
constexpr std::size_t kRobStorageSlots = 32768;

/** Hard per-run cycle budget multiplier (hang detection). */
constexpr std::uint64_t kMaxCyclesPerInst = 200;

} // namespace

Processor::Processor(const ProcessorConfig &config,
                     const workload::Program &program)
    : config_(config), program_(program), hierarchy_(config.hierarchy),
      nodeTables_(config.nodeTables)
{
    if (config_.useTraceCache) {
        traceCache_ = std::make_unique<trace::TraceCache>(
            config_.traceCache);
        fillUnit_ = std::make_unique<trace::FillUnit>(config_.fillUnit,
                                                      *traceCache_);
        if (config_.mbpKind == MbpKind::Tree)
            mbp_ = std::make_unique<bpred::TreeMbp>();
        else
            mbp_ = std::make_unique<bpred::SplitMbp>();
    } else {
        hybrid_ = std::make_unique<bpred::HybridPredictor>();
    }

    fetch::FetchEngineParams fe_params;
    fe_params.useTraceCache = config_.useTraceCache;
    fe_params.fetchWidth = config_.fetchWidth;
    fe_params.partialMatching = config_.partialMatching;
    fe_params.inactiveIssue = config_.inactiveIssue;
    fe_params.pathAssociativity = config_.traceCache.pathAssociativity;
    fetchEngine_ = std::make_unique<fetch::FetchEngine>(
        fe_params, program_, traceCache_.get(), hierarchy_.icache(),
        mbp_.get(), hybrid_.get(), frontEnd_);

    oracle_ = std::make_unique<FunctionalExecutor>(program_);
    memory_.initFrom(program_);
    archRegs_[2] = workload::kStackTop; // matches FunctionalExecutor

    robStorage_.resize(kRobStorageSlots);
    memDepTable_.assign(4096, 0);
    oracleRing_.resize(1024); // power of two; grows by doubling
    loadAddrIndex_.resize(kAddrIndexBuckets);
    storeAddrIndex_.resize(kAddrIndexBuckets);
    verifyIndexed_ = std::getenv("TCSIM_VERIFY_WINDOW_INDEX") != nullptr;
    fetchPc_ = program_.entry();
}

std::uint32_t
Processor::memDepIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc / isa::kInstBytes) & 4095u;
}

bool
Processor::memDepPredictsConflict(Addr pc) const
{
    return memDepTable_[memDepIndex(pc)] >= 2;
}

void
Processor::recordMemDepViolation(Addr load_pc)
{
    std::uint8_t &counter = memDepTable_[memDepIndex(load_pc)];
    if (counter < 3)
        ++counter;
    ++memOrderViolations_;
}

void
Processor::checkStoreOrderViolation(core::DynInst &store)
{
    // A store just resolved its address: any younger load to the same
    // address that already executed consumed stale data and must
    // replay (memory-order violation).
    const DynInst *violator = oldestViolatingLoadAfter(store);
    if (verifyIndexed_) {
        TCSIM_ASSERT(violator == slowOldestViolatingLoadAfter(store),
                     "indexed violation check diverges from reference "
                     "scan (store seq %llu)",
                     static_cast<unsigned long long>(store.seq));
    }
    if (violator == nullptr)
        return;

    recordMemDepViolation(violator->pc);
    TCSIM_TPOINT(tracer_, Core, "violation",
                 "store_pc=0x%llx addr=0x%llx load_pc=0x%llx",
                 static_cast<unsigned long long>(store.pc),
                 static_cast<unsigned long long>(store.memAddr),
                 static_cast<unsigned long long>(violator->pc));
    static const bool debug_retire =
        std::getenv("TCSIM_DEBUG_RETIRE") != nullptr;
    if (debug_retire) {
        std::fprintf(stderr,
                     "violation: store seq=%llu pc=%llx addr=%llx "
                     "load seq=%llu pc=%llx act=%d\n",
                     (unsigned long long)store.seq,
                     (unsigned long long)store.pc,
                     (unsigned long long)store.memAddr,
                     (unsigned long long)violator->seq,
                     (unsigned long long)violator->pc,
                     (int)violator->active);
    }

    // Replay from the violating load: keep its predecessor.
    RecoveryRequest req;
    req.originSeq = store.seq;
    req.redirect = violator->pc;
    req.cause = CycleCategory::BranchMisses;
    req.keepSeq = 0;
    const auto pos = robLowerBound(violator->seq);
    if (pos != robOrder_.begin())
        req.keepSeq = *std::prev(pos);
    if (verifyIndexed_) {
        TCSIM_ASSERT(req.keepSeq == slowKeepSeqBefore(violator->seq),
                     "binary-search keepSeq diverges from reference scan");
    }
    requestRecovery(req);
}

Processor::~Processor() = default;

// ----------------------------------------------------------------------
// Oracle.
// ----------------------------------------------------------------------

void
Processor::growOracleRing()
{
    // Double the ring and re-place the live span by the new mask.
    std::vector<workload::StepResult> bigger(oracleRing_.size() * 2);
    const std::uint64_t new_mask = bigger.size() - 1;
    const std::uint64_t old_mask = oracleRing_.size() - 1;
    for (std::uint64_t i = 0; i < oracleCount_; ++i) {
        const std::uint64_t idx = oracleBase_ + i;
        bigger[idx & new_mask] = oracleRing_[idx & old_mask];
    }
    oracleRing_ = std::move(bigger);
}

void
Processor::extendOracle(std::uint64_t upto_idx)
{
    while (oracleBase_ + oracleCount_ <= upto_idx) {
        if (oracleCount_ == oracleRing_.size())
            growOracleRing();
        const std::uint64_t idx = oracleBase_ + oracleCount_;
        oracleRing_[idx & (oracleRing_.size() - 1)] = oracle_->step();
        ++oracleCount_;
    }
}

const workload::StepResult &
Processor::oracleAt(std::uint64_t idx)
{
    TCSIM_ASSERT(idx >= oracleBase_, "oracle entry already trimmed");
    extendOracle(idx);
    return oracleRing_[idx & (oracleRing_.size() - 1)];
}

// ----------------------------------------------------------------------
// ROB plumbing.
// ----------------------------------------------------------------------

DynInst *
Processor::instFor(InstSeqNum seq)
{
    if (seq == kInvalidSeqNum)
        return nullptr;
    DynInst &slot = robStorage_[seq % kRobStorageSlots];
    return slot.seq == seq ? &slot : nullptr;
}

const DynInst *
Processor::instFor(InstSeqNum seq) const
{
    if (seq == kInvalidSeqNum)
        return nullptr;
    const DynInst &slot = robStorage_[seq % kRobStorageSlots];
    return slot.seq == seq ? &slot : nullptr;
}

DynInst &
Processor::allocInst()
{
    if (!robOrder_.empty()) {
        TCSIM_ASSERT(nextSeq_ - robOrder_.front() <
                         kRobStorageSlots - 64,
                     "DynInst storage span exhausted");
    }
    DynInst &slot = robStorage_[nextSeq_ % kRobStorageSlots];
    slot.reset(nextSeq_);
    robOrder_.push_back(nextSeq_);
    ++nextSeq_;
    return slot;
}

// ----------------------------------------------------------------------
// Window-indexed lookups.
//
// robOrder_ is sorted ascending but has gaps (squashes pop the back
// without rewinding nextSeq_, preserving stale-reference detection),
// so positioning is O(log n) binary search. Address lookups go
// through small hashed seq-list buckets; membership invariants:
//   loadAddrIndex_   = fired, un-retired loads (keyed by memAddr)
//   storeAddrIndex_  = address-known, un-retired stores
//   unknownStores_   = dispatched stores whose address is unresolved
//   checkpointStack_ = active block-ending branches, ascending
// maintained at dispatch, address resolution, salvage activation,
// squash, and retire.
// ----------------------------------------------------------------------

std::deque<InstSeqNum>::const_iterator
Processor::robLowerBound(InstSeqNum seq) const
{
    return std::lower_bound(robOrder_.begin(), robOrder_.end(), seq);
}

std::uint32_t
Processor::addrBucket(Addr addr)
{
    // Fibonacci hash of the word address.
    return static_cast<std::uint32_t>(
               (addr * 0x9e3779b97f4a7c15ull) >> 32) &
           (kAddrIndexBuckets - 1);
}

void
Processor::addrIndexInsert(std::vector<std::vector<InstSeqNum>> &index,
                           Addr addr, InstSeqNum seq)
{
    index[addrBucket(addr)].push_back(seq);
}

void
Processor::addrIndexRemove(std::vector<std::vector<InstSeqNum>> &index,
                           Addr addr, InstSeqNum seq)
{
    std::vector<InstSeqNum> &bucket = index[addrBucket(addr)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i] == seq) {
            bucket[i] = bucket.back();
            bucket.pop_back(); // capacity kept: no steady-state alloc
            return;
        }
    }
    TCSIM_ASSERT(false, "seq %llu missing from address index",
                 static_cast<unsigned long long>(seq));
}

void
Processor::unknownStoreResolved(InstSeqNum seq)
{
    const auto it =
        std::lower_bound(unknownStores_.begin(), unknownStores_.end(), seq);
    TCSIM_ASSERT(it != unknownStores_.end() && *it == seq,
                 "resolved store missing from unknown-store list");
    unknownStores_.erase(it);
}

const DynInst *
Processor::oldestViolatingLoadAfter(const DynInst &store) const
{
    // Visibility filter matches the reference scan: discarded never,
    // inactive only within the store's own fetch group.
    const DynInst *violator = nullptr;
    for (const InstSeqNum seq : loadAddrIndex_[addrBucket(store.memAddr)]) {
        if (seq <= store.seq)
            continue;
        if (violator != nullptr && seq >= violator->seq)
            continue;
        const DynInst *cand = instFor(seq);
        TCSIM_ASSERT(cand != nullptr, "stale load-index entry");
        if (cand->memAddr != store.memAddr)
            continue; // bucket collision
        if (cand->discarded)
            continue;
        if (!cand->active && cand->fetchGroup != store.fetchGroup)
            continue;
        violator = cand;
    }
    return violator;
}

const DynInst *
Processor::youngestMatchingStoreBefore(const DynInst &load) const
{
    const DynInst *match = nullptr;
    for (const InstSeqNum seq : storeAddrIndex_[addrBucket(load.memAddr)]) {
        if (seq >= load.seq)
            continue;
        if (match != nullptr && seq <= match->seq)
            continue;
        const DynInst *store = instFor(seq);
        TCSIM_ASSERT(store != nullptr, "stale store-index entry");
        if (store->memAddr != load.memAddr)
            continue; // bucket collision
        if (store->discarded)
            continue;
        if (!store->active && store->fetchGroup != load.fetchGroup)
            continue;
        match = store;
    }
    return match;
}

bool
Processor::loadMayProceed(const DynInst &load) const
{
    // The reference scan walks older stores youngest-first and acts on
    // the first *event*: a matching known-address store (wait if its
    // data is not ready, else forward and stop) or a blocking
    // unknown-address store (policy-dependent). Reproduce that by
    // finding each candidate event's seq and comparing.
    const DynInst *match = youngestMatchingStoreBefore(load);

    // Youngest older unknown-address store that blocks under the
    // active disambiguation policy.
    const DynInst *blocker = nullptr;
    if (!unknownStores_.empty() &&
        config_.disambiguation != Disambiguation::Speculative) {
        for (auto it = std::lower_bound(unknownStores_.begin(),
                                        unknownStores_.end(), load.seq);
             it != unknownStores_.begin();) {
            --it;
            const DynInst *store = instFor(*it);
            TCSIM_ASSERT(store != nullptr, "stale unknown-store entry");
            if (store->discarded)
                continue;
            if (!store->active && store->fetchGroup != load.fetchGroup)
                continue;
            if (config_.disambiguation == Disambiguation::Perfect &&
                (store->oracleMemAddr == kInvalidAddr ||
                 store->oracleMemAddr != load.memAddr)) {
                continue; // perfect model: known non-aliasing
            }
            blocker = store;
            break;
        }
    } else if (!unknownStores_.empty()) {
        // Speculative: bypass unknown stores entirely unless the load
        // must stay conservative (inactive issue, or conflict
        // history) — then any visible unknown store blocks.
        if (!load.active || memDepPredictsConflict(load.pc)) {
            for (auto it = std::lower_bound(unknownStores_.begin(),
                                            unknownStores_.end(), load.seq);
                 it != unknownStores_.begin();) {
                --it;
                const DynInst *store = instFor(*it);
                TCSIM_ASSERT(store != nullptr, "stale unknown-store entry");
                if (store->discarded)
                    continue;
                if (!store->active && store->fetchGroup != load.fetchGroup)
                    continue;
                blocker = store;
                break;
            }
        }
    }

    if (blocker != nullptr &&
        (match == nullptr || blocker->seq > match->seq)) {
        return false; // the blocking unknown store is the first event
    }
    if (match != nullptr && !match->executed)
        return false; // matching store, data not yet ready
    return true;
}

// ----------------------------------------------------------------------
// Reference implementations: the original O(window) scans, kept as
// ground truth. TCSIM_VERIFY_WINDOW_INDEX=1 runs them beside every
// indexed lookup and asserts agreement.
// ----------------------------------------------------------------------

const DynInst *
Processor::slowOldestViolatingLoadAfter(const DynInst &store) const
{
    const DynInst *violator = nullptr;
    for (auto it = robOrder_.rbegin(); it != robOrder_.rend(); ++it) {
        if (*it <= store.seq)
            break;
        const DynInst *cand = instFor(*it);
        if (cand == nullptr || cand->discarded)
            continue;
        if (!cand->active && cand->fetchGroup != store.fetchGroup)
            continue;
        if (cand->isLoad() && cand->fired &&
            cand->memAddr == store.memAddr) {
            violator = cand; // keep scanning: want the oldest violator
        }
    }
    return violator;
}

InstSeqNum
Processor::slowKeepSeqBefore(InstSeqNum seq) const
{
    for (auto it = robOrder_.rbegin(); it != robOrder_.rend(); ++it) {
        if (*it < seq)
            return *it;
    }
    return 0;
}

bool
Processor::slowLoadDisambiguation(const DynInst &load) const
{
    for (auto it = storeQueue_.rbegin(); it != storeQueue_.rend(); ++it) {
        if (*it >= load.seq)
            continue;
        const DynInst *store = instFor(*it);
        if (store == nullptr || store->discarded)
            continue;
        if (!store->active && store->fetchGroup != load.fetchGroup)
            continue;
        if (store->memAddrKnown) {
            if (store->memAddr == load.memAddr && !store->executed)
                return false;
            if (store->memAddr == load.memAddr)
                break;
            continue;
        }
        if (config_.disambiguation == Disambiguation::Conservative)
            return false;
        if (config_.disambiguation == Disambiguation::Speculative) {
            if (!load.active || memDepPredictsConflict(load.pc))
                return false;
            continue;
        }
        if (store->oracleMemAddr != kInvalidAddr &&
            store->oracleMemAddr == load.memAddr) {
            return false;
        }
    }
    return true;
}

const DynInst *
Processor::slowForwardingStore(const DynInst &load) const
{
    for (auto it = storeQueue_.rbegin(); it != storeQueue_.rend(); ++it) {
        if (*it >= load.seq)
            continue;
        const DynInst *store = instFor(*it);
        if (store == nullptr || store->discarded)
            continue;
        if (!store->active && store->fetchGroup != load.fetchGroup)
            continue;
        if (store->memAddrKnown && store->memAddr == load.memAddr)
            return store;
    }
    return nullptr;
}

const DynInst *
Processor::slowPreviousCheckpointFor(const DynInst &inst) const
{
    for (auto it = robOrder_.rbegin(); it != robOrder_.rend(); ++it) {
        if (*it >= inst.seq)
            continue;
        const DynInst *cand = instFor(*it);
        if (cand == nullptr || !cand->active || cand->discarded)
            continue;
        if (cand->endsBlock || cand->fetchGroup != inst.fetchGroup)
            return cand;
    }
    return nullptr;
}

const DynInst *
Processor::previousCheckpointFor(const DynInst &inst) const
{
    // The previous checkpoint is the youngest older instruction that
    // either ends a block or belongs to an older fetch group. Two
    // indexed candidates cover both cases:
    //  - s: the youngest checkpoint-stack entry below inst.seq (an
    //    active block-ending branch; stack entries are never
    //    discarded because discard only targets inactive suffixes);
    //  - c: the youngest active non-discarded instruction below the
    //    faulting fetch group's first seq (groups dispatch
    //    atomically, so seq < groupStartSeq <=> older group).
    // Any in-group candidate from the reference scan must end a block
    // (same group => the endsBlock clause), so it is on the stack; any
    // older-group candidate is bounded above by c. The reference scan
    // returns the youngest of all candidates = max(s, c).
    const DynInst *best = nullptr;
    {
        const auto it = std::lower_bound(checkpointStack_.begin(),
                                         checkpointStack_.end(), inst.seq);
        if (it != checkpointStack_.begin()) {
            best = instFor(*std::prev(it));
            TCSIM_ASSERT(best != nullptr, "stale checkpoint-stack entry");
        }
    }
    TCSIM_ASSERT(inst.groupStartSeq != kInvalidSeqNum);
    for (auto it = robLowerBound(inst.groupStartSeq);
         it != robOrder_.begin();) {
        --it;
        if (best != nullptr && *it <= best->seq)
            break; // the stack candidate is younger
        const DynInst *cand = instFor(*it);
        TCSIM_ASSERT(cand != nullptr);
        if (cand->active && !cand->discarded) {
            best = cand;
            break;
        }
    }
    return best;
}

// ----------------------------------------------------------------------
// Fetch.
// ----------------------------------------------------------------------

void
Processor::classifyFetchBatch(PendingBatch &pending)
{
    const fetch::FetchBatch &batch = pending.batch;
    pending.wasOnPath = onTruePath_;
    pending.oracleStart = oracleFetchIdx_;
    pending.correctPrefix = 0;
    if (!onTruePath_)
        return;

    const unsigned size = static_cast<unsigned>(batch.insts.size());
    extendOracle(oracleFetchIdx_ + size);

    unsigned k = 0;
    while (k < size &&
           oracleAt(oracleFetchIdx_ + k).pc == batch.insts[k].pc) {
        ++k;
    }
    pending.correctPrefix = k;
    TCSIM_ASSERT(k >= 1, "on-path fetch must match at least one inst");

    const bool stays_on =
        batch.nextFetchPc == oracleAt(oracleFetchIdx_ + k).pc;

    // Fetch-size histogram with termination reason (Figures 4/6).
    FetchReason reason;
    const fetch::FetchedInst &steer =
        batch.insts[std::min(k, size) - 1];
    if (batch.source == fetch::FetchSource::ICache) {
        if (!stays_on) {
            reason = FetchReason::MispredBR;
        } else if (size >= config_.fetchWidth) {
            reason = FetchReason::MaxSize;
        } else {
            reason = FetchReason::ICache;
        }
    } else {
        if (!stays_on) {
            if (isa::isReturn(steer.inst.op) ||
                isa::isIndirectJump(steer.inst.op)) {
                reason = FetchReason::RetIndirTrap;
            } else {
                reason = FetchReason::MispredBR;
            }
        } else if (k < size) {
            reason = FetchReason::PartialMatch;
        } else {
            switch (batch.segmentReason) {
              case trace::FillReason::MaxSize:
                reason = FetchReason::MaxSize;
                break;
              case trace::FillReason::MaxBranches:
                reason = FetchReason::MaximumBRs;
                break;
              case trace::FillReason::AtomicBlock:
              case trace::FillReason::Resync:
                reason = FetchReason::AtomicBlocks;
                break;
              case trace::FillReason::RetIndirTrap:
              default:
                reason = FetchReason::RetIndirTrap;
                break;
            }
        }
    }
    accounting_.usefulFetch(k, reason);
    ++fetchesNeedingPreds_[std::min<unsigned>(batch.predictionsUsed, 3)];
    predictionsUsedSum_ += batch.predictionsUsed;

    oracleFetchIdx_ += k;
    if (!stays_on) {
        onTruePath_ = false;
        offPathCause_ = (isa::isReturn(steer.inst.op) ||
                         isa::isIndirectJump(steer.inst.op))
                            ? CycleCategory::Misfetches
                            : CycleCategory::BranchMisses;
    }
}

void
Processor::fetchStage()
{
    if (serializeStall_) {
        accounting_.cycle(CycleCategory::Traps);
        return;
    }
    if (icacheStallUntil_ > cycle_) {
        accounting_.cycle(onTruePath_ ? CycleCategory::CacheMisses
                                      : offPathCause_);
        return;
    }

    // Structural stalls: queue space, ROB headroom, checkpoint pool.
    const bool queue_full = fetchQueue_.size() >= config_.fetchQueueBatches;
    const bool rob_full =
        robOrder_.size() + config_.fetchWidth > config_.robEntries;
    const bool ckpt_full =
        outstandingCheckpoints_ + trace::kMaxSegmentBranches >
        config_.checkpoints;
    if (queue_full || rob_full || ckpt_full) {
        accounting_.cycle(onTruePath_ ? CycleCategory::FullWindow
                                      : offPathCause_);
        return;
    }

    const bool was_on = onTruePath_;
    fetchEngine_->fetchCycle(fetchPc_, scratchBatch_, cycle_);

    if (scratchBatch_.icacheStall > 0) {
        icacheStallUntil_ = cycle_ + scratchBatch_.icacheStall;
        accounting_.cycle(was_on ? CycleCategory::CacheMisses
                                 : offPathCause_);
        return;
    }

    TCSIM_ASSERT(!scratchBatch_.insts.empty(),
                 "fetch produced neither stall nor instructions");

    PendingBatch pending;
    pending.batch = std::move(scratchBatch_);
    if (batchPool_.empty()) {
        scratchBatch_ = fetch::FetchBatch{};
    } else {
        scratchBatch_ = std::move(batchPool_.back());
        batchPool_.pop_back();
    }
    if (fillUnit_ != nullptr &&
        pending.batch.source == fetch::FetchSource::ICache) {
        fillUnit_->noteFetchMiss(fetchPc_);
    }
    pending.group = nextFetchGroup_++;
    pending.fetchCycle = cycle_;
    classifyFetchBatch(pending);

    fetchPc_ = pending.batch.nextFetchPc;
    if (pending.batch.sawSerialize)
        serializeStall_ = true;

    const bool useful = was_on && pending.correctPrefix > 0;
    accounting_.cycle(useful ? CycleCategory::UsefulFetch
                             : offPathCause_);
    fetchQueue_.push_back(std::move(pending));
}

// ----------------------------------------------------------------------
// Dispatch (issue stage: rename into node tables).
// ----------------------------------------------------------------------

void
Processor::dispatchStage()
{
    if (fetchQueue_.empty())
        return;
    PendingBatch &pb = fetchQueue_.front();
    const std::size_t batch_size = pb.batch.insts.size();

    // Whole batches dispatch atomically so trace-segment groups stay
    // contiguous in the window (inactive-issue salvage relies on it).
    if (robOrder_.size() + batch_size > config_.robEntries)
        return;
    const std::uint32_t rs_capacity =
        nodeTables_.numUnits() * config_.nodeTables.entriesPerUnit;
    if (nodeTables_.totalOccupied() + batch_size > rs_capacity)
        return;

    // Inactive-issue shadow rename context: a copy-on-write overlay
    // over rat_ instead of a full RAT copy on fork (the tail beyond a
    // divergence touches only a few registers).
    core::RenameOverlay<RatEntry, isa::kNumArchRegs> shadow;
    const InstSeqNum group_start = nextSeq_;

    for (std::size_t i = 0; i < batch_size; ++i) {
        const fetch::FetchedInst &fi = pb.batch.insts[i];
        DynInst &di = allocInst();
        di.inst = fi.inst;
        di.pc = fi.pc;
        di.fetchGroup = pb.group;
        di.groupStartSeq = group_start;
        di.fetchCycle = pb.fetchCycle;
        di.source = pb.batch.source;
        di.active = fi.active;
        di.promoted = fi.promoted;
        di.promotedDir = fi.promotedDir;
        di.endsBlock = fi.endsBlock;
        di.followedDir = fi.followedDir;
        di.embeddedTaken = fi.embeddedTaken;
        di.predictionValid = fi.predictionValid;
        di.usedHybrid = fi.usedHybrid;
        di.mbpCtx = fi.mbpCtx;
        di.hybridCtx = fi.hybridCtx;
        di.followedNextPc = fi.followedNextPc;

        di.onCorrectPath = pb.wasOnPath && i < pb.correctPrefix;
        if (di.onCorrectPath) {
            di.oracleIdx = pb.oracleStart + i;
            const workload::StepResult &step = oracleAt(di.oracleIdx);
            di.oracleMemAddr = step.memAddr;
        }

        // Inactive-issue shadow rename context.
        const bool use_shadow = !fi.active;
        if (use_shadow && !shadow.active())
            shadow.fork(rat_);

        // Source renaming.
        const bool reads[2] = {isa::readsRs1(fi.inst),
                               isa::readsRs2(fi.inst)};
        const RegIndex regs[2] = {fi.inst.rs1, fi.inst.rs2};
        for (unsigned op = 0; op < 2; ++op) {
            di.srcReady[op] = true;
            di.srcVal[op] = 0;
            if (!reads[op] || regs[op] == isa::kRegZero)
                continue;
            const RatEntry &entry = use_shadow ? shadow.get(regs[op])
                                               : rat_[regs[op]];
            if (entry.isValue) {
                di.srcVal[op] = entry.value;
            } else {
                DynInst *producer = instFor(entry.tag);
                TCSIM_ASSERT(producer != nullptr,
                             "RAT tag without live producer");
                if (producer->executed) {
                    di.srcVal[op] = producer->result;
                } else {
                    di.srcReady[op] = false;
                    di.srcDep[op] = entry.tag;
                    producer->waiters.push_back(di.seq);
                }
            }
        }

        // Destination renaming.
        if (isa::writesReg(fi.inst)) {
            const RatEntry renamed{false, 0, di.seq};
            if (use_shadow)
                shadow.set(fi.inst.rd, renamed);
            else
                rat_[fi.inst.rd] = renamed;
        }

        // Resources.
        const bool allocated = nodeTables_.allocate(di.rsTable);
        TCSIM_ASSERT(allocated, "node table allocation must succeed");
        if (di.isStore()) {
            storeQueue_.push_back(di.seq);
            unknownStores_.push_back(di.seq); // dispatch order: sorted
        }
        if (di.endsBlock) {
            ++outstandingCheckpoints_;
            if (di.active)
                checkpointStack_.push_back(di.seq);
        }

        di.readyCycle = cycle_ + 1;
        if (operandsReady(di))
            enqueueReady(di);
    }

    batchPool_.push_back(std::move(pb.batch));
    fetchQueue_.pop_front();
}

bool
Processor::operandsReady(const DynInst &inst) const
{
    return inst.srcReady[0] && inst.srcReady[1];
}

void
Processor::enqueueReady(DynInst &inst)
{
    if (inst.inReadyQueue || inst.fired)
        return;
    inst.inReadyQueue = true;
    nodeTables_.markReady(inst.rsTable, inst.seq);
}

// ----------------------------------------------------------------------
// Schedule + execute.
// ----------------------------------------------------------------------

void
Processor::executeInst(DynInst &inst)
{
    RegVal result = 0;
    Addr next_pc = 0;
    bool taken = false;
    FunctionalExecutor::computeResult(inst.inst, inst.pc, inst.srcVal[0],
                                      inst.srcVal[1], inst.result, result,
                                      next_pc, taken);
    // For loads inst.result was preloaded with the memory value by
    // tryScheduleMemory; computeResult passes it through.
    inst.result = result;
    inst.taken = taken;
    inst.actualNextPc = next_pc;
}

RegVal
Processor::loadValueFor(DynInst &load, bool &forwarded)
{
    forwarded = false;
    // The youngest older visible matching store forwards its data.
    const DynInst *store = youngestMatchingStoreBefore(load);
    if (verifyIndexed_) {
        TCSIM_ASSERT(store == slowForwardingStore(load),
                     "indexed forwarding diverges from reference scan "
                     "(load seq %llu)",
                     static_cast<unsigned long long>(load.seq));
    }
    if (store != nullptr) {
        if (!store->executed) {
            // Matching but data not ready: caller must not be here.
            panic("loadValueFor called while blocked");
        }
        forwarded = true;
        return store->storeData;
    }
    return memory_.load(load.memAddr);
}

bool
Processor::tryScheduleMemory(DynInst &inst)
{
    if (inst.isStore()) {
        inst.memAddr =
            FunctionalExecutor::effectiveAddr(inst.inst, inst.srcVal[0]);
        inst.memAddrKnown = true;
        inst.storeData = inst.srcVal[1];
        inst.completeCycle = cycle_ + config_.latAddrGen;
        // Address resolution: move the store from the unknown list
        // into the address index (runs once: the store fires after
        // this and never re-disambiguates).
        unknownStoreResolved(inst.seq);
        addrIndexInsert(storeAddrIndex_, inst.memAddr, inst.seq);
        if (config_.disambiguation == Disambiguation::Speculative)
            checkStoreOrderViolation(inst);
        return true;
    }

    TCSIM_ASSERT(inst.isLoad());
    inst.memAddr =
        FunctionalExecutor::effectiveAddr(inst.inst, inst.srcVal[0]);

    // Disambiguate against older visible stores. (Policy notes:
    // Conservative waits on any unknown-address store; Speculative
    // bypasses them unless the load is inactively issued — a salvaged
    // stale value would bypass the violation check — or has a
    // conflict history; Perfect "knows" the eventual addresses and
    // waits only on true dependences.)
    const bool proceed = loadMayProceed(inst);
    if (verifyIndexed_) {
        TCSIM_ASSERT(proceed == slowLoadDisambiguation(inst),
                     "indexed disambiguation diverges from reference "
                     "scan (load seq %llu)",
                     static_cast<unsigned long long>(inst.seq));
    }
    if (!proceed)
        return false;

    bool forwarded = false;
    const RegVal value = loadValueFor(inst, forwarded);
    inst.result = value;

    std::uint32_t latency = config_.latAddrGen;
    if (forwarded) {
        latency += 1;
    } else {
        latency += config_.latDCacheHit +
                   hierarchy_.dcache().access(inst.memAddr, false, cycle_);
    }
    inst.completeCycle = cycle_ + latency;
    return true;
}

void
Processor::scheduleStage()
{
    for (std::uint32_t unit = 0; unit < nodeTables_.numUnits(); ++unit) {
        auto &queue = nodeTables_.readyQueue(
            static_cast<std::uint8_t>(unit));
        unsigned attempts = 0;
        while (!queue.empty() && attempts < 8) {
            const InstSeqNum seq = queue.front();
            queue.pop_front();
            DynInst *di = instFor(seq);
            if (di == nullptr || di->fired || !di->inReadyQueue)
                continue; // stale or already handled
            if (di->readyCycle > cycle_) {
                queue.push_back(seq);
                ++attempts;
                continue;
            }

            if (isa::isMem(di->inst.op)) {
                if (!tryScheduleMemory(*di)) {
                    di->readyCycle = cycle_ + 1;
                    queue.push_back(seq);
                    ++attempts;
                    continue;
                }
            } else {
                std::uint32_t latency;
                switch (isa::instClass(di->inst.op)) {
                  case isa::InstClass::IntMult:
                    latency = config_.latIntMult;
                    break;
                  case isa::InstClass::IntDiv:
                    latency = config_.latIntDiv;
                    break;
                  default:
                    latency = config_.latIntAlu;
                    break;
                }
                di->completeCycle = cycle_ + latency;
            }

            if (di->isLoad()) {
                // Result (the loaded value) was set by
                // tryScheduleMemory; keep it for completion.
            } else {
                executeInst(*di);
            }

            di->fired = true;
            if (di->isLoad()) {
                // Fired loads enter the violation-check index.
                addrIndexInsert(loadAddrIndex_, di->memAddr, di->seq);
            }
            di->inReadyQueue = false;
            nodeTables_.release(di->rsTable);
            completionHeap_.emplace_back(di->completeCycle, di->seq);
            std::push_heap(completionHeap_.begin(),
                           completionHeap_.end(),
                           std::greater<>());
            break; // this unit started its one op for the cycle
        }
    }
}

// ----------------------------------------------------------------------
// Complete (writeback): broadcast results, resolve control.
// ----------------------------------------------------------------------

void
Processor::wakeDependents(DynInst &producer)
{
    for (const InstSeqNum waiter_seq : producer.waiters) {
        DynInst *consumer = instFor(waiter_seq);
        if (consumer == nullptr)
            continue;
        bool changed = false;
        for (unsigned op = 0; op < 2; ++op) {
            if (!consumer->srcReady[op] &&
                consumer->srcDep[op] == producer.seq) {
                consumer->srcReady[op] = true;
                consumer->srcVal[op] = producer.result;
                changed = true;
            }
        }
        if (changed && operandsReady(*consumer) && !consumer->fired) {
            consumer->readyCycle = std::max(consumer->readyCycle, cycle_);
            enqueueReady(*consumer);
        }
    }
    producer.waiters.clear();
}

void
Processor::resolveControl(DynInst &inst)
{
    if (!inst.active || inst.discarded)
        return;

    const Opcode op = inst.inst.op;

    if (isa::isCondBranch(op)) {
        if (inst.promoted) {
            if (inst.taken != inst.followedDir) {
                // Promoted-branch fault: back up to the previous
                // fetch-block checkpoint (or the retire boundary) and
                // refetch with a direction override.
                inst.resolvedFault = true;
                ++promotedFaults_;
                TCSIM_TPOINT(tracer_, Bpred, "fault",
                             "pc=0x%llx seq=%llu taken=%d",
                             static_cast<unsigned long long>(inst.pc),
                             static_cast<unsigned long long>(inst.seq),
                             inst.taken ? 1 : 0);

                RecoveryRequest req;
                req.originSeq = inst.seq;
                req.cause = CycleCategory::BranchMisses;
                req.countResolution = true;
                req.predictedCycle = inst.fetchCycle;
                req.overrideValid = true;
                req.overridePc = inst.pc;
                req.overrideDir = inst.taken;

                // Find the previous checkpoint among older in-flight
                // instructions: the nearest block-ending branch, or
                // failing that the boundary of the faulting fetch
                // group (the machine checkpoints each fetch block it
                // supplies, so a group boundary is always one).
                const DynInst *checkpoint = previousCheckpointFor(inst);
                if (verifyIndexed_) {
                    TCSIM_ASSERT(
                        checkpoint == slowPreviousCheckpointFor(inst),
                        "checkpoint stack diverges from reference scan "
                        "(fault seq %llu)",
                        static_cast<unsigned long long>(inst.seq));
                }
                if (checkpoint != nullptr) {
                    req.keepSeq = checkpoint->seq;
                    req.redirect = checkpoint->followedNextPc;
                } else {
                    // The faulting group is the oldest in flight:
                    // back up to the retire boundary and refetch from
                    // the group's first surviving instruction.
                    req.keepSeq = 0;
                    req.redirect = inst.pc;
                    for (const InstSeqNum other : robOrder_) {
                        const DynInst *cand = instFor(other);
                        if (cand != nullptr && cand->active &&
                            !cand->discarded) {
                            req.redirect = cand->pc;
                            break;
                        }
                    }
                }
                // The replay refetches any earlier dynamic instances
                // of this PC; the override must pass over them and hit
                // exactly the faulting instance.
                for (auto it = robLowerBound(req.keepSeq + 1);
                     it != robOrder_.end() && *it < inst.seq; ++it) {
                    const DynInst *prior = instFor(*it);
                    if (prior != nullptr && prior->pc == inst.pc &&
                        prior->isCondBranch() && prior->active &&
                        !prior->discarded) {
                        ++req.overrideSkip;
                    }
                }
                requestRecovery(req);
            } else if (inst.followedDir != inst.embeddedTaken) {
                // An override flipped this promoted branch off the
                // segment's embedded path and the flip was right: the
                // inactively issued suffix loses.
                for (auto it = robLowerBound(inst.seq + 1);
                     it != robOrder_.end(); ++it) {
                    DynInst *cand = instFor(*it);
                    if (cand == nullptr)
                        continue;
                    if (cand->fetchGroup != inst.fetchGroup)
                        break;
                    if (!cand->active)
                        cand->discarded = true;
                    else
                        break;
                }
            }
            return;
        }

        if (inst.taken != inst.followedDir) {
            inst.resolvedMispredict = true;
            TCSIM_TPOINT(tracer_, Bpred, "mispredict",
                         "pc=0x%llx seq=%llu taken=%d",
                         static_cast<unsigned long long>(inst.pc),
                         static_cast<unsigned long long>(inst.seq),
                         inst.taken ? 1 : 0);
            // The machine now follows the corrected direction; later
            // recoveries that anchor on this branch (promoted faults
            // backing up to the previous checkpoint) must resume on
            // the corrected path.
            inst.followedDir = inst.taken;
            inst.followedNextPc = inst.actualNextPc;

            RecoveryRequest req;
            req.originSeq = inst.seq;
            req.cause = CycleCategory::BranchMisses;
            req.countResolution = true;
            req.predictedCycle = inst.fetchCycle;

            // Inactive-issue salvage: when the segment's embedded path
            // agrees with the actual outcome, the inactively issued
            // suffix of this fetch group is already in the window.
            InstSeqNum last_suffix = kInvalidSeqNum;
            if (inst.endsBlock && inst.taken == inst.embeddedTaken) {
                for (auto it = robLowerBound(inst.seq + 1);
                     it != robOrder_.end(); ++it) {
                    const DynInst *cand = instFor(*it);
                    if (cand == nullptr)
                        continue;
                    if (cand->fetchGroup != inst.fetchGroup)
                        break; // groups are contiguous
                    if (!cand->active && !cand->discarded)
                        last_suffix = cand->seq;
                    else
                        break;
                }
            }
            if (last_suffix != kInvalidSeqNum) {
                req.salvage = true;
                req.salvageFrom = inst.seq;
                req.keepSeq = last_suffix;
                req.redirect = kInvalidAddr; // computed during rebuild
            } else {
                req.keepSeq = inst.seq;
                req.redirect = inst.actualNextPc;
            }
            requestRecovery(req);
        } else if (!inst.promoted && inst.endsBlock &&
                   inst.followedDir != inst.embeddedTaken) {
            // Correct prediction that diverged from the segment: the
            // inactively issued suffix loses and is discarded.
            for (auto it = robLowerBound(inst.seq + 1);
                 it != robOrder_.end(); ++it) {
                DynInst *cand = instFor(*it);
                if (cand == nullptr)
                    continue;
                if (cand->fetchGroup != inst.fetchGroup)
                    break;
                if (!cand->active)
                    cand->discarded = true;
                else
                    break;
            }
        }
        return;
    }

    if (isa::isReturn(op) || isa::isIndirectJump(op)) {
        if (inst.actualNextPc != inst.followedNextPc) {
            inst.resolvedMisfetch = true;
            inst.followedNextPc = inst.actualNextPc;
            RecoveryRequest req;
            req.originSeq = inst.seq;
            req.keepSeq = inst.seq;
            req.redirect = inst.actualNextPc;
            req.cause = CycleCategory::Misfetches;
            req.countResolution = false;
            requestRecovery(req);
        }
        return;
    }
}

void
Processor::completeStage()
{
    while (!completionHeap_.empty() &&
           completionHeap_.front().first <= cycle_) {
        std::pop_heap(completionHeap_.begin(), completionHeap_.end(),
                      std::greater<>());
        const auto [when, seq] = completionHeap_.back();
        completionHeap_.pop_back();
        (void)when;

        DynInst *di = instFor(seq);
        if (di == nullptr || di->executed || !di->fired)
            continue; // squashed or stale
        di->executed = true;
        di->resolveCycle = cycle_;
        wakeDependents(*di);
        if (isa::isControl(di->inst.op))
            resolveControl(*di);
    }
}

// ----------------------------------------------------------------------
// Recovery.
// ----------------------------------------------------------------------

void
Processor::requestRecovery(const RecoveryRequest &request)
{
    if (recoveryPending_ && recovery_.originSeq <= request.originSeq)
        return; // the architecturally older resolution wins
    recovery_ = request;
    recoveryPending_ = true;
}

void
Processor::squashYoungerThan(InstSeqNum keep_seq)
{
    while (!robOrder_.empty() && robOrder_.back() > keep_seq) {
        const InstSeqNum seq = robOrder_.back();
        robOrder_.pop_back();
        DynInst *di = instFor(seq);
        TCSIM_ASSERT(di != nullptr);
        if (!di->fired)
            nodeTables_.release(di->rsTable);
        if (di->endsBlock) {
            TCSIM_ASSERT(outstandingCheckpoints_ > 0);
            --outstandingCheckpoints_;
        }
        // Unindex before invalidating the seq (unknown stores are
        // bulk-trimmed below, like storeQueue_).
        if (di->isStore()) {
            if (di->memAddrKnown)
                addrIndexRemove(storeAddrIndex_, di->memAddr, seq);
        } else if (di->isLoad() && di->fired) {
            addrIndexRemove(loadAddrIndex_, di->memAddr, seq);
        }
        di->seq = kInvalidSeqNum; // invalidate stale references
    }
    while (!storeQueue_.empty() && storeQueue_.back() > keep_seq)
        storeQueue_.pop_back();
    while (!unknownStores_.empty() && unknownStores_.back() > keep_seq)
        unknownStores_.pop_back();
    while (!checkpointStack_.empty() && checkpointStack_.back() > keep_seq)
        checkpointStack_.pop_back();
}

Addr
Processor::rebuildSpeculativeState(const DynInst *tail)
{
    // RAT from architectural values plus surviving in-flight writers.
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        rat_[r] = RatEntry{true, archRegs_[r], kInvalidSeqNum};

    std::uint64_t history = archHistory_;
    std::vector<Addr> &ras = rasScratch_;
    ras.assign(archRas_.begin(), archRas_.end());
    Addr salvage_redirect = kInvalidAddr;
    bool saw_serializer = false;

    for (const InstSeqNum seq : robOrder_) {
        DynInst *di = instFor(seq);
        TCSIM_ASSERT(di != nullptr);
        if (!di->active || di->discarded)
            continue;

        if (isa::writesReg(di->inst))
            rat_[di->inst.rd] = RatEntry{false, 0, di->seq};
        if (isa::isSerializing(di->inst.op))
            saw_serializer = true;

        const Opcode op = di->inst.op;
        if (isa::isCondBranch(op)) {
            history = (history << 1) |
                      static_cast<std::uint64_t>(di->followedDir);
        } else if (isa::isCall(op)) {
            ras.push_back(di->pc + isa::kInstBytes);
        } else if (isa::isReturn(op)) {
            Addr target = kInvalidAddr;
            if (!ras.empty()) {
                target = ras.back();
                ras.pop_back();
            }
            if (tail != nullptr && di->seq == tail->seq) {
                salvage_redirect = target == kInvalidAddr
                                       ? di->pc + isa::kInstBytes
                                       : target;
                di->followedNextPc = salvage_redirect;
            }
        }

        if (tail != nullptr && di->seq == tail->seq &&
            salvage_redirect == kInvalidAddr) {
            if (isa::isIndirectJump(op)) {
                const Addr predicted = frontEnd_.indirect.predict(di->pc);
                salvage_redirect = predicted == kInvalidAddr
                                       ? di->pc + isa::kInstBytes
                                       : predicted;
                di->followedNextPc = salvage_redirect;
            } else {
                salvage_redirect = di->followedNextPc;
            }
        }
    }

    frontEnd_.history.restore(history);
    // Swap buffers: the front end's old stack becomes next recovery's
    // scratch, so steady-state rebuilds never allocate.
    frontEnd_.ras.assignSwap(ras);
    // Serialization: a surviving in-flight trap keeps fetch stalled.
    // (Folded into this walk — the recovery path is the only caller.)
    serializeStall_ = saw_serializer;
    return salvage_redirect;
}

void
Processor::applyRecovery()
{
    if (!recoveryPending_)
        return;
    recoveryPending_ = false;
    const RecoveryRequest req = recovery_;
    if (DynInst *origin = instFor(req.originSeq))
        origin->recoveryApplied = true;
    debugRecoveryLog_.emplace_back(cycle_, req.keepSeq, req.redirect,
                                   (int)req.cause, req.salvage);
    if (debugRecoveryLog_.size() > 24) debugRecoveryLog_.pop_front();

    squashYoungerThan(req.keepSeq);
    for (PendingBatch &pb : fetchQueue_)
        batchPool_.push_back(std::move(pb.batch));
    fetchQueue_.clear();

    // Salvage: activate the surviving inactive suffix.
    DynInst *tail = nullptr;
    if (req.salvage) {
        for (auto it = robLowerBound(req.salvageFrom + 1);
             it != robOrder_.end(); ++it) {
            DynInst *di = instFor(*it);
            TCSIM_ASSERT(di != nullptr);
            if (!di->active) {
                di->active = true;
                // Newly activated block-ending branches become
                // checkpoints. The squash above already trimmed the
                // stack past keepSeq, so pushes stay sorted.
                if (di->endsBlock)
                    checkpointStack_.push_back(di->seq);
            }
        }
        tail = instFor(req.keepSeq);
        TCSIM_ASSERT(tail != nullptr, "salvage tail vanished");
    }

    const Addr salvage_redirect = rebuildSpeculativeState(tail);
    Addr redirect = req.redirect;
    if (req.salvage) {
        TCSIM_ASSERT(salvage_redirect != kInvalidAddr);
        redirect = salvage_redirect;
    }

    if (req.overrideValid) {
        frontEnd_.overrides[req.overridePc] =
            fetch::FrontEndState::Override{req.overrideSkip,
                                           req.overrideDir};
    }

    fetchPc_ = redirect;
    icacheStallUntil_ = 0;
    TCSIM_TPOINT(tracer_, Core, "recover",
                 "keep=%llu redirect=0x%llx cause=%d salvage=%d",
                 static_cast<unsigned long long>(req.keepSeq),
                 static_cast<unsigned long long>(redirect),
                 static_cast<int>(req.cause), req.salvage ? 1 : 0);

    // Oracle resynchronization. The resync anchor is the youngest
    // surviving instruction on the followed path: the keep instruction
    // itself may be discarded (memory-order replays can keep a
    // discarded predecessor) or already retired (deferred requests),
    // in which case the anchor falls back to an older survivor or the
    // retire boundary.
    const DynInst *anchor = nullptr;
    if (req.keepSeq != 0) {
        for (auto it = robOrder_.rbegin(); it != robOrder_.rend(); ++it) {
            const DynInst *cand = instFor(*it);
            if (cand != nullptr && cand->active && !cand->discarded) {
                anchor = cand;
                break;
            }
        }
    }
    if (anchor == nullptr) {
        onTruePath_ = redirect == oracleAt(oracleRetireIdx_).pc;
        oracleFetchIdx_ = oracleRetireIdx_;
    } else {
        if (anchor->onCorrectPath &&
            oracleAt(anchor->oracleIdx).nextPc == redirect) {
            onTruePath_ = true;
            oracleFetchIdx_ = anchor->oracleIdx + 1;
        } else {
            onTruePath_ = false;
            offPathCause_ = req.cause;
        }
    }
    if (!onTruePath_)
        offPathCause_ = req.cause;

    // Resolution-time bookkeeping (Figure 15).
    if (req.countResolution) {
        resolutionTimeSum_ += cycle_ - req.predictedCycle;
        ++resolutionTimeCount_;
    }

    // Salvaged instructions that already executed may themselves have
    // resolved against the machine's new path; re-run their checks.
    if (req.salvage) {
        for (auto it = robLowerBound(req.salvageFrom + 1);
             it != robOrder_.end(); ++it) {
            DynInst *di = instFor(*it);
            if (di != nullptr && di->executed &&
                isa::isControl(di->inst.op)) {
                resolveControl(*di);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Retire.
// ----------------------------------------------------------------------

void
Processor::retireOne(DynInst &inst)
{
    if (inst.discarded) {
        if (inst.endsBlock) {
            TCSIM_ASSERT(outstandingCheckpoints_ > 0);
            --outstandingCheckpoints_;
            // Discarded implies never activated: not on the stack.
        }
        if (inst.isStore()) {
            TCSIM_ASSERT(!storeQueue_.empty() &&
                         storeQueue_.front() == inst.seq);
            storeQueue_.pop_front();
            // Retiring implies executed implies address-resolved.
            TCSIM_ASSERT(inst.memAddrKnown);
            addrIndexRemove(storeAddrIndex_, inst.memAddr, inst.seq);
        } else if (inst.isLoad() && inst.fired) {
            addrIndexRemove(loadAddrIndex_, inst.memAddr, inst.seq);
        }
        return;
    }

    // The retired stream must equal the functional oracle's stream.
    // (Pointer, not reference: the debug dump below can extend — and
    // so reallocate — the oracle ring.)
    const workload::StepResult *golden = &oracleAt(oracleRetireIdx_);
    if (golden->pc != inst.pc && std::getenv("TCSIM_DEBUG_RETIRE")) {
        for (std::uint64_t i = oracleRetireIdx_ >= 3 ? oracleRetireIdx_-3 : 0;
             i <= oracleRetireIdx_ + 3; ++i) {
            if (i < oracleBase_) continue;
            const auto &e = oracleAt(i);
            std::fprintf(stderr, "  oracle[%llu] pc=%llx op=%s taken=%d next=%llx\n",
                (unsigned long long)i, (unsigned long long)e.pc,
                isa::opcodeName(e.inst.op), (int)e.taken,
                (unsigned long long)e.nextPc);
        }
        std::fprintf(stderr, "divergence at retire idx %llu: got %llx want %llx seq=%llu op=%s group=%llu active=%d\n",
            (unsigned long long)oracleRetireIdx_, (unsigned long long)inst.pc,
            (unsigned long long)golden->pc, (unsigned long long)inst.seq,
            isa::opcodeName(inst.inst.op), (unsigned long long)inst.fetchGroup, (int)inst.active);
        for (auto &d : debugRetireLog_) {
            const auto meta = std::get<3>(d);
            std::fprintf(stderr, "  retired pc=%llx op=%s seq=%llu grp=%llu act=%d eb=%d fd=%d et=%d tk=%d tc=%d\n",
                (unsigned long long)std::get<0>(d), isa::opcodeName(std::get<1>(d)),
                (unsigned long long)std::get<2>(d), (unsigned long long)(meta & 0xffffffffffffULL),
                (int)((meta>>56)&1), (int)((meta>>57)&1), (int)((meta>>58)&1),
                (int)((meta>>59)&1), (int)((meta>>60)&1), (int)((meta>>61)&1));
        }
        for (auto &r : debugRecoveryLog_)
            std::fprintf(stderr, "  recovery cyc=%llu keep=%llu redirect=%llx cause=%d salvage=%d\n",
                (unsigned long long)std::get<0>(r), (unsigned long long)std::get<1>(r),
                (unsigned long long)std::get<2>(r), std::get<3>(r), std::get<4>(r));
        golden = &oracleAt(oracleRetireIdx_); // ring may have grown
    }
    TCSIM_ASSERT(golden->pc == inst.pc,
                 "retired pc 0x%llx diverges from oracle pc 0x%llx "
                 "at retire index %llu",
                 static_cast<unsigned long long>(inst.pc),
                 static_cast<unsigned long long>(golden->pc),
                 static_cast<unsigned long long>(oracleRetireIdx_));
    TCSIM_ASSERT(!isa::writesReg(inst.inst) || golden->result == inst.result,
                 "retired value %llx diverges from oracle %llx at pc %llx "
                 "op=%s seq=%llu idx=%llu",
                 static_cast<unsigned long long>(inst.result),
                 static_cast<unsigned long long>(golden->result),
                 static_cast<unsigned long long>(inst.pc),
                 isa::opcodeName(inst.inst.op),
                 static_cast<unsigned long long>(inst.seq),
                 static_cast<unsigned long long>(oracleRetireIdx_));
    TCSIM_ASSERT(!isa::isMem(inst.inst.op) || golden->memAddr == inst.memAddr,
                 "retired mem addr diverges at pc %llx",
                 static_cast<unsigned long long>(inst.pc));
    TCSIM_ASSERT(!isa::isCondBranch(inst.inst.op) ||
                     golden->taken == inst.taken,
                 "retired branch direction diverges at pc %llx seq %llu",
                 static_cast<unsigned long long>(inst.pc),
                 static_cast<unsigned long long>(inst.seq));
    static const bool debug_retire =
        std::getenv("TCSIM_DEBUG_RETIRE") != nullptr;
    if (debug_retire) {
        debugRetireLog_.emplace_back(
            inst.pc, inst.inst.op, inst.seq,
            inst.fetchGroup | (uint64_t(inst.active) << 56) |
                (uint64_t(inst.endsBlock) << 57) |
                (uint64_t(inst.followedDir) << 58) |
                (uint64_t(inst.embeddedTaken) << 59) |
                (uint64_t(inst.taken) << 60) |
                (uint64_t(inst.source == fetch::FetchSource::TraceCache)
                 << 61));
        if (debugRetireLog_.size() > 48)
            debugRetireLog_.pop_front();
    }
    ++oracleRetireIdx_;
    // Retired entries are dead: fetch never looks below the retire
    // boundary (recoveries resynchronize at or above it). Ring slots
    // are reclaimed by arithmetic; no per-entry work.
    if (oracleRetireIdx_ > oracleBase_) {
        const std::uint64_t dead =
            std::min(oracleRetireIdx_ - oracleBase_, oracleCount_);
        oracleBase_ += dead;
        oracleCount_ -= dead;
    }

    const Opcode op = inst.inst.op;

    // Architectural effects.
    if (isa::writesReg(inst.inst)) {
        archRegs_[inst.inst.rd] = inst.result;
        if (!rat_[inst.inst.rd].isValue &&
            rat_[inst.inst.rd].tag == inst.seq) {
            rat_[inst.inst.rd] = RatEntry{true, inst.result,
                                          kInvalidSeqNum};
        }
    }
    if (inst.isStore()) {
        memory_.store(inst.memAddr, inst.storeData);
        hierarchy_.dcache().access(inst.memAddr, true, cycle_);
        TCSIM_ASSERT(!storeQueue_.empty() &&
                     storeQueue_.front() == inst.seq);
        storeQueue_.pop_front();
        TCSIM_ASSERT(inst.memAddrKnown);
        addrIndexRemove(storeAddrIndex_, inst.memAddr, inst.seq);
    } else if (inst.isLoad() && inst.fired) {
        addrIndexRemove(loadAddrIndex_, inst.memAddr, inst.seq);
    }

    // Speculative-structure training and architectural mirrors.
    if (isa::isCondBranch(op)) {
        ++retiredCondBranches_;
        archHistory_ = (archHistory_ << 1) |
                       static_cast<std::uint64_t>(inst.taken);
        if (inst.predictionValid) {
            if (inst.usedHybrid)
                hybrid_->update(inst.pc, inst.hybridCtx, inst.taken);
            else
                mbp_->update(inst.mbpCtx, inst.taken);
        }
        if (inst.promoted)
            ++promotedRetired_;
        if (inst.resolvedMispredict)
            ++condMispredicts_;
    } else if (isa::isCall(op)) {
        archRas_.push_back(inst.pc + isa::kInstBytes);
    } else if (isa::isReturn(op)) {
        if (!archRas_.empty())
            archRas_.pop_back();
        ++retiredReturns_;
        if (inst.resolvedMisfetch) {
            ++indirectMispredicts_;
            ++returnMisfetches_;
        }
    } else if (isa::isIndirectJump(op)) {
        frontEnd_.indirect.update(inst.pc, inst.actualNextPc);
        ++retiredIndirects_;
        if (inst.resolvedMisfetch)
            ++indirectMispredicts_;
    } else if (op == Opcode::Trap) {
        // Resume fetch unless another in-flight serializer remains.
        serializeStall_ = false;
        for (const InstSeqNum other : robOrder_) {
            const DynInst *di = instFor(other);
            if (di != nullptr && di->seq != inst.seq && di->active &&
                !di->discarded && isa::isSerializing(di->inst.op)) {
                serializeStall_ = true;
                break;
            }
        }
    } else if (op == Opcode::Halt) {
        haltRetired_ = true;
        done_ = true;
    }

    if (inst.endsBlock) {
        TCSIM_ASSERT(outstandingCheckpoints_ > 0);
        --outstandingCheckpoints_;
        // A retiring non-discarded instruction is active, so this
        // branch is the oldest checkpoint-stack entry.
        TCSIM_ASSERT(!checkpointStack_.empty() &&
                     checkpointStack_.front() == inst.seq,
                     "checkpoint stack out of sync at retire");
        checkpointStack_.pop_front();
    }

    // Feed the fill unit from the retired stream.
    if (fillUnit_ != nullptr) {
        trace::RetiredInst retired;
        retired.inst = inst.inst;
        retired.pc = inst.pc;
        retired.taken = inst.taken;
        if (profiler_ == nullptr) {
            fillUnit_->retire(retired);
        } else {
            const std::uint64_t t0 = obs::SelfProfiler::nowNs();
            fillUnit_->retire(retired);
            profiler_->addPhase(obs::Phase::Fill,
                                obs::SelfProfiler::nowNs() - t0);
        }
    }

    ++retiredInsts_;
}

void
Processor::retireStage()
{
    unsigned retired = 0;
    while (!robOrder_.empty() && retired < config_.retireWidth) {
        const InstSeqNum seq = robOrder_.front();
        // Never retire past a pending recovery point: everything
        // younger is about to be squashed.
        if (recoveryPending_ && seq > recovery_.keepSeq)
            break;
        DynInst *di = instFor(seq);
        TCSIM_ASSERT(di != nullptr);
        if (!di->executed)
            break;
        // An inactive instruction at the head is awaiting salvage
        // activation (applied at end of cycle); hold it.
        if (!di->active && !di->discarded)
            break;
        // Safety net: a resolution whose recovery request lost
        // arbitration (to an older origin whose squash did not cover
        // it) reaches the head unhandled; re-issue it now. In-order
        // retire guarantees no wrong-path instruction can slip past.
        if (di->active && !di->discarded && !di->recoveryApplied &&
            (di->resolvedMispredict || di->resolvedFault ||
             di->resolvedMisfetch)) {
            di->followedDir = di->taken;
            di->followedNextPc = di->actualNextPc;
            RecoveryRequest req;
            req.originSeq = di->seq;
            req.keepSeq = di->seq;
            req.redirect = di->actualNextPc;
            req.cause = di->resolvedMisfetch
                            ? CycleCategory::Misfetches
                            : CycleCategory::BranchMisses;
            requestRecovery(req);
            break;
        }
        retireOne(*di);
        robOrder_.pop_front();
        di->seq = kInvalidSeqNum;
        ++retired;
        if (done_)
            break;
    }
}

// ----------------------------------------------------------------------
// Top level.
// ----------------------------------------------------------------------

void
Processor::step()
{
    ++cycle_;
    if (profiler_ == nullptr) {
        retireStage();
        if (!done_) {
            completeStage();
            scheduleStage();
            dispatchStage();
            fetchStage();
            applyRecovery();
        }
    } else {
        // Same stage sequence with each stage bracketed by host-clock
        // reads; the fill unit's share is accounted inside retireOne.
        std::uint64_t t = obs::SelfProfiler::nowNs();
        retireStage();
        t = profiler_->lap(obs::Phase::Retire, t);
        if (!done_) {
            completeStage();
            t = profiler_->lap(obs::Phase::Complete, t);
            scheduleStage();
            t = profiler_->lap(obs::Phase::Schedule, t);
            dispatchStage();
            t = profiler_->lap(obs::Phase::Dispatch, t);
            fetchStage();
            t = profiler_->lap(obs::Phase::Fetch, t);
            applyRecovery();
            profiler_->lap(obs::Phase::Recovery, t);
        }
    }
    if (!done_ && maxInsts_ != 0 && retiredInsts_ >= maxInsts_)
        done_ = true;
    if (intervals_ != nullptr && retiredInsts_ >= intervalNextAt_) {
        intervals_->snapshot(intervalCounters());
        intervalNextAt_ = intervals_->nextBoundaryAfter(retiredInsts_);
    }
}

SimResult
Processor::run(std::uint64_t max_insts)
{
    maxInsts_ = max_insts;
    // A previous run() may have stopped at its instruction budget;
    // resume unless the program actually halted.
    if (!haltRetired_ &&
        (maxInsts_ == 0 || retiredInsts_ < maxInsts_)) {
        done_ = false;
    }
    const std::uint64_t cycle_budget =
        (max_insts == 0 ? std::uint64_t{1} << 40
                        : max_insts * kMaxCyclesPerInst + 1'000'000);
    Cycle last_progress_cycle = 0;
    std::uint64_t last_retired = 0;
    while (!done_) {
        step();
        if (profiler_ != nullptr)
            profiler_->maybeSample(retiredInsts_);
        if (retiredInsts_ != last_retired) {
            last_retired = retiredInsts_;
            last_progress_cycle = cycle_;
        } else if (cycle_ - last_progress_cycle > 99'980 &&
                   std::getenv("TCSIM_TRACE") != nullptr) {
            std::fprintf(stderr,
                         "cyc=%llu pc=%llx rob=%zu fq=%zu ckpt=%u "
                         "stall=%llu ser=%d rec=%d onP=%d ofi=%llu "
                         "ori=%llu\n",
                         (unsigned long long)cycle_,
                         (unsigned long long)fetchPc_, robOrder_.size(),
                         fetchQueue_.size(), outstandingCheckpoints_,
                         (unsigned long long)icacheStallUntil_,
                         (int)serializeStall_, (int)recoveryPending_,
                         (int)onTruePath_,
                         (unsigned long long)oracleFetchIdx_,
                         (unsigned long long)oracleRetireIdx_);
        }
        if (cycle_ - last_progress_cycle > 100'000) {
            fatal("no retirement progress for 100k cycles at cycle %llu "
                  "(%llu retired; rob=%zu fetchq=%zu serialize=%d "
                  "recovery=%d ckpts=%u icacheStall=%llu pc=%llx "
                  "onPath=%d)",
                  static_cast<unsigned long long>(cycle_),
                  static_cast<unsigned long long>(retiredInsts_),
                  robOrder_.size(), fetchQueue_.size(),
                  static_cast<int>(serializeStall_),
                  static_cast<int>(recoveryPending_),
                  outstandingCheckpoints_,
                  static_cast<unsigned long long>(icacheStallUntil_),
                  static_cast<unsigned long long>(fetchPc_),
                  static_cast<int>(onTruePath_));
        }
        if (cycle_ > cycle_budget) {
            fatal("cycle budget exhausted: %llu cycles, %llu retired "
                  "(deadlock?)",
                  static_cast<unsigned long long>(cycle_),
                  static_cast<unsigned long long>(retiredInsts_));
        }
    }
    if (intervals_ != nullptr)
        intervals_->finish(intervalCounters());
    if (tracer_ != nullptr)
        tracer_->flush();
    return makeResult();
}

void
Processor::attachTracer(obs::Tracer *tracer)
{
    tracer_ = tracer;
    if (tracer != nullptr)
        tracer->attachClock(&cycle_);
    fetchEngine_->setTracer(tracer);
    if (traceCache_ != nullptr)
        traceCache_->setTracer(tracer);
    if (fillUnit_ != nullptr)
        fillUnit_->setTracer(tracer);
    hierarchy_.icache().setTracer(tracer);
    hierarchy_.dcache().setTracer(tracer);
    hierarchy_.l2().setTracer(tracer);
    hierarchy_.dram().setTracer(tracer);
}

void
Processor::attachIntervalRecorder(obs::IntervalRecorder *recorder)
{
    intervals_ = recorder;
    if (recorder != nullptr) {
        // Baseline at attach so the first interval's deltas exclude
        // anything already simulated (e.g. a warm-up phase).
        recorder->setBase(intervalCounters());
        intervalNextAt_ = recorder->nextBoundaryAfter(retiredInsts_);
    }
}

obs::IntervalCounters
Processor::intervalCounters() const
{
    obs::IntervalCounters c;
    c.cycles = cycle_;
    c.insts = retiredInsts_;
    c.usefulFetches = accounting_.usefulFetches();
    c.fetchedInsts = accounting_.fetchedInsts();
    c.condBranches = retiredCondBranches_;
    c.condMispredicts = condMispredicts_ + promotedFaults_;
    c.promotedFaults = promotedFaults_;
    c.promotedRetired = promotedRetired_;
    if (fillUnit_ != nullptr) {
        c.promotions = fillUnit_->biasTable().promotions();
        c.demotions = fillUnit_->biasTable().demotions();
        c.segmentsBuilt = fillUnit_->segmentsBuilt();
    }
    if (traceCache_ != nullptr) {
        c.tcLookups = traceCache_->lookups();
        c.tcHits = traceCache_->hits();
    }
    c.icacheMisses = hierarchy_.icache().misses();
    c.predictionsUsed = predictionsUsedSum_;
    c.memOrderViolations = memOrderViolations_;
    c.l2Misses = hierarchy_.l2().misses();
    c.writebacks = hierarchy_.icache().writebacks() +
                   hierarchy_.dcache().writebacks() +
                   hierarchy_.l2().writebacks();
    c.dramBusWaitCycles = hierarchy_.dram().busWaitCycles();
    c.dramMshrStallCycles = hierarchy_.dram().mshrStallCycles();
    return c;
}

void
Processor::warmStart(const workload::ArchCheckpoint &ckpt)
{
    TCSIM_ASSERT(cycle_ == 0 && retiredInsts_ == 0 && robOrder_.empty(),
                 "warmStart requires a pristine processor");
    TCSIM_ASSERT(!ckpt.halted, "cannot warm-start at a halted program");

    // Reposition the oracle at the checkpoint.
    oracle_->memory().clear();
    for (const auto &[index, bytes] : ckpt.pages)
        oracle_->memory().writePage(index, bytes.data());
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        oracle_->setReg(static_cast<RegIndex>(r), ckpt.regs[r]);
    oracle_->restoreExecPoint(ckpt.pc, ckpt.instIndex, ckpt.halted);

    // Committed mirrors.
    memory_.copyFrom(oracle_->memory());
    archRegs_ = ckpt.regs;
    archHistory_ = ckpt.history;
    archRas_.assign(ckpt.ras.begin(), ckpt.ras.end());

    // The oracle ring is empty and starts at the checkpoint index.
    oracleBase_ = ckpt.instIndex;
    oracleCount_ = 0;
    oracleFetchIdx_ = ckpt.instIndex;
    oracleRetireIdx_ = ckpt.instIndex;
    onTruePath_ = true;

    // Speculative state from the committed mirrors — the rebuild
    // recovery performs, minus in-flight writers (the window is
    // empty).
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        rat_[r] = RatEntry{true, archRegs_[r], kInvalidSeqNum};
    frontEnd_.history.restore(archHistory_);
    rasScratch_.assign(archRas_.begin(), archRas_.end());
    frontEnd_.ras.assignSwap(rasScratch_);
    fetchPc_ = ckpt.pc;

    retiredInsts_ = ckpt.instIndex;
    statBaseCycle_ = cycle_;
    statBaseInsts_ = retiredInsts_;
    if (intervals_ != nullptr)
        intervalNextAt_ = intervals_->nextBoundaryAfter(retiredInsts_);
}

void
Processor::functionalWarmup(std::uint64_t until)
{
    TCSIM_ASSERT(cycle_ == 0 && robOrder_.empty() && oracleCount_ == 0,
                 "functionalWarmup requires a pre-run processor");
    TCSIM_ASSERT(oracle_->instCount() == retiredInsts_,
                 "oracle out of sync with the committed position");
    TCSIM_ASSERT(until >= retiredInsts_);

    // Leader = the fetch-group start address the detailed front end
    // would use for a segment beginning at this block. Training the
    // position-0 counter at (leader, history-at-leader) warms exactly
    // the entries segment-start predictions consult.
    Addr leader = oracle_->pc();
    std::uint64_t leader_hist = archHistory_;
    while (oracle_->instCount() < until && !oracle_->halted()) {
        const workload::StepResult step = oracle_->step();
        const Opcode op = step.inst.op;

        hierarchy_.icache().access(step.pc, false, cycle_);
        if (isa::isMem(op) && step.memAddr != kInvalidAddr)
            hierarchy_.dcache().access(step.memAddr, isa::isStore(op),
                                       cycle_);

        if (isa::isCondBranch(op)) {
            if (mbp_ != nullptr) {
                bpred::MbpCtx ctx;
                ctx.fetchAddr = leader;
                ctx.history = leader_hist;
                ctx.position = 0;
                ctx.path = 0;
                ctx.prediction = mbp_->predict(leader, leader_hist, 0, 0);
                mbp_->update(ctx, step.taken);
            }
            if (hybrid_ != nullptr) {
                const bpred::HybridCtx ctx =
                    hybrid_->predict(step.pc, archHistory_);
                hybrid_->update(step.pc, ctx, step.taken);
            }
            archHistory_ = (archHistory_ << 1) |
                           static_cast<std::uint64_t>(step.taken);
        } else if (isa::isCall(op)) {
            archRas_.push_back(step.pc + isa::kInstBytes);
        } else if (isa::isReturn(op)) {
            if (!archRas_.empty())
                archRas_.pop_back();
        } else if (isa::isIndirectJump(op)) {
            frontEnd_.indirect.update(step.pc, step.nextPc);
        }

        if (fillUnit_ != nullptr) {
            trace::RetiredInst retired;
            retired.inst = step.inst;
            retired.pc = step.pc;
            retired.taken = step.taken;
            fillUnit_->retire(retired);
        }

        if (isa::isControl(op)) {
            leader = step.nextPc;
            leader_hist = archHistory_;
        }
    }
    TCSIM_ASSERT(oracle_->instCount() == until,
                 "program halted inside the functional warm-up window");

    // Committed mirrors and speculative resync, as in warmStart().
    memory_.copyFrom(oracle_->memory());
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        archRegs_[r] = oracle_->reg(static_cast<RegIndex>(r));
    oracleBase_ = oracle_->instCount();
    oracleCount_ = 0;
    oracleFetchIdx_ = oracleBase_;
    oracleRetireIdx_ = oracleBase_;
    onTruePath_ = true;
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        rat_[r] = RatEntry{true, archRegs_[r], kInvalidSeqNum};
    frontEnd_.history.restore(archHistory_);
    rasScratch_.assign(archRas_.begin(), archRas_.end());
    frontEnd_.ras.assignSwap(rasScratch_);
    fetchPc_ = oracle_->pc();
    retiredInsts_ = oracleBase_;
    statBaseCycle_ = cycle_;
    statBaseInsts_ = retiredInsts_;
    if (intervals_ != nullptr)
        intervalNextAt_ = intervals_->nextBoundaryAfter(retiredInsts_);
}

namespace
{

workload::BtraceClass
btraceClassOf(Opcode op)
{
    if (isa::isCondBranch(op))
        return workload::BtraceClass::Cond;
    if (isa::isCall(op))
        return workload::BtraceClass::Call;
    if (isa::isReturn(op))
        return workload::BtraceClass::Ret;
    if (isa::isIndirectJump(op))
        return workload::BtraceClass::IndirectJump;
    if (op == Opcode::Trap)
        return workload::BtraceClass::Trap;
    if (op == Opcode::Halt)
        return workload::BtraceClass::Halt;
    return workload::BtraceClass::Jump;
}

} // namespace

Processor::ControlFlowResult
Processor::controlFlowPass(
    const std::function<bool(workload::StepResult &)> &source,
    Addr start_pc, workload::BtraceWriter *writer)
{
    TCSIM_ASSERT(cycle_ == 0 && robOrder_.empty() && oracleCount_ == 0,
                 "control-flow passes require a pre-run processor");

    ControlFlowResult result;
    result.outcomeHash = kFnvOffsetBasis;

    // Leader handling mirrors functionalWarmup(): the multi-branch
    // predictor trains at (fetch-group leader, history-at-leader), and
    // each new leader costs one trace-cache lookup — the fetch-rate /
    // miss-rate signal the replay stats report.
    Addr leader = start_pc;
    std::uint64_t leader_hist = archHistory_;
    bool leader_pending = true;

    workload::StepResult step;
    while (source(step)) {
        const Opcode op = step.inst.op;
        if (leader_pending) {
            if (traceCache_ != nullptr)
                traceCache_->lookup(leader);
            leader_pending = false;
        }
        hierarchy_.icache().access(step.pc, false, cycle_);
        ++result.instructions;

        if (isa::isCondBranch(op)) {
            ++result.condBranches;
            if (mbp_ != nullptr) {
                bpred::MbpCtx ctx;
                ctx.fetchAddr = leader;
                ctx.history = leader_hist;
                ctx.position = 0;
                ctx.path = 0;
                ctx.prediction = mbp_->predict(leader, leader_hist, 0, 0);
                if (ctx.prediction != step.taken)
                    ++result.condMispredicts;
                mbp_->update(ctx, step.taken);
            }
            if (hybrid_ != nullptr) {
                const bpred::HybridCtx ctx =
                    hybrid_->predict(step.pc, archHistory_);
                if (ctx.prediction != step.taken)
                    ++result.condMispredicts;
                hybrid_->update(step.pc, ctx, step.taken);
            }
            archHistory_ = (archHistory_ << 1) |
                           static_cast<std::uint64_t>(step.taken);
        } else if (isa::isCall(op)) {
            archRas_.push_back(step.pc + isa::kInstBytes);
        } else if (isa::isReturn(op)) {
            ++result.returns;
            if (archRas_.empty() || archRas_.back() != step.nextPc)
                ++result.returnMispredicts;
            if (!archRas_.empty())
                archRas_.pop_back();
        } else if (isa::isIndirectJump(op)) {
            ++result.indirectJumps;
            if (frontEnd_.indirect.predict(step.pc) != step.nextPc)
                ++result.indirectMispredicts;
            frontEnd_.indirect.update(step.pc, step.nextPc);
        } else if (op == Opcode::Trap) {
            ++result.traps;
        }

        if (isa::isControl(op)) {
            ++result.records;
            result.outcomeHash =
                fnv1aAppendScalar(result.outcomeHash, step.pc);
            result.outcomeHash =
                fnv1aAppendScalar(result.outcomeHash, step.nextPc);
            result.outcomeHash = fnv1aAppendScalar(
                result.outcomeHash,
                static_cast<std::uint8_t>(step.taken ? 1 : 0));
            if (writer != nullptr) {
                workload::BtraceRecord record;
                record.pc = step.pc;
                record.target = step.nextPc;
                record.cls = btraceClassOf(op);
                record.taken = step.taken;
                writer->append(record);
            }
        }

        if (fillUnit_ != nullptr) {
            trace::RetiredInst retired;
            retired.inst = step.inst;
            retired.pc = step.pc;
            retired.taken = step.taken;
            fillUnit_->retire(retired);
        }

        if (isa::isControl(op)) {
            leader = step.nextPc;
            leader_hist = archHistory_;
            leader_pending = true;
        }
        if (step.halted) {
            result.halted = true;
            break;
        }
    }

    result.finalHistory = archHistory_;
    result.icacheAccesses = hierarchy_.icache().accesses();
    result.icacheMisses = hierarchy_.icache().misses();
    if (traceCache_ != nullptr) {
        result.tcLookups = traceCache_->lookups();
        result.tcHits = traceCache_->hits();
    }
    return result;
}

Processor::ControlFlowResult
Processor::recordTrace(workload::BtraceWriter &writer,
                       std::uint64_t max_insts)
{
    const auto source = [this,
                         max_insts](workload::StepResult &out) -> bool {
        if (oracle_->halted() || oracle_->instCount() >= max_insts)
            return false;
        out = oracle_->step();
        return true;
    };
    const ControlFlowResult result =
        controlFlowPass(source, oracle_->pc(), &writer);
    writer.close(result.instructions);
    return result;
}

Processor::ControlFlowResult
Processor::replayTrace(const workload::BtraceReader &reader)
{
    const workload::BtraceHeader &header = reader.header();
    Addr pc = header.entryPc;
    std::uint64_t rec_idx = 0;
    std::uint64_t covered = 0;
    const auto source = [this, &reader, &header, &pc, &rec_idx,
                         &covered](workload::StepResult &out) -> bool {
        if (covered >= header.instCount)
            return false;
        if (!program_.isCode(pc)) {
            fatal("btrace replay walked outside the program image at "
                  "pc 0x%llx",
                  static_cast<unsigned long long>(pc));
        }
        out.pc = pc;
        out.inst = program_.fetch(pc);
        const Opcode op = out.inst.op;
        out.memAddr = kInvalidAddr;
        out.halted = op == Opcode::Halt;
        if (isa::isControl(op)) {
            if (rec_idx >= reader.recordCount()) {
                fatal("btrace ran out of records at pc 0x%llx "
                      "(instCount says more follow)",
                      static_cast<unsigned long long>(pc));
            }
            const workload::BtraceRecord record = reader.record(rec_idx);
            ++rec_idx;
            if (record.pc != pc) {
                fatal("btrace divergence: walked to pc 0x%llx but the "
                      "next record is for pc 0x%llx (record %llu)",
                      static_cast<unsigned long long>(pc),
                      static_cast<unsigned long long>(record.pc),
                      static_cast<unsigned long long>(rec_idx - 1));
            }
            out.taken = record.taken;
            out.nextPc = record.target;
        } else {
            out.taken = false;
            out.nextPc = pc + isa::kInstBytes;
        }
        pc = out.nextPc;
        ++covered;
        return true;
    };
    const ControlFlowResult result =
        controlFlowPass(source, header.entryPc, nullptr);
    if (result.instructions != header.instCount && !result.halted) {
        fatal("btrace replay covered %llu instructions but the header "
              "promises %llu",
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(header.instCount));
    }
    return result;
}

void
Processor::resetStats()
{
    accounting_.reset();
    statBaseCycle_ = cycle_;
    statBaseInsts_ = retiredInsts_;
    retiredCondBranches_ = 0;
    condMispredicts_ = 0;
    promotedFaults_ = 0;
    indirectMispredicts_ = 0;
    returnMisfetches_ = 0;
    retiredReturns_ = 0;
    retiredIndirects_ = 0;
    promotedRetired_ = 0;
    resolutionTimeSum_ = 0;
    resolutionTimeCount_ = 0;
    memOrderViolations_ = 0;
    for (auto &count : fetchesNeedingPreds_)
        count = 0;
    predictionsUsedSum_ = 0;
    hierarchy_.icache().resetStats();
    hierarchy_.dcache().resetStats();
    hierarchy_.l2().resetStats();
    hierarchy_.dram().resetStats();
    if (traceCache_ != nullptr)
        traceCache_->resetStats();
    if (fillUnit_ != nullptr)
        fillUnit_->resetStats();
}

namespace
{

constexpr char kPredStateMagic[8] = {'T', 'C', 'P', 'R', 'E', 'D', 'v', '1'};

} // namespace

void
Processor::exportPredictorState(std::ostream &os) const
{
    binio::writeMagic(os, kPredStateMagic);
    binio::writeScalar<std::uint8_t>(os, mbp_ ? 1 : 0);
    if (mbp_ != nullptr)
        mbp_->saveState(os);
    binio::writeScalar<std::uint8_t>(os, hybrid_ ? 1 : 0);
    if (hybrid_ != nullptr)
        hybrid_->saveState(os);
    binio::writeScalar<std::uint8_t>(os, fillUnit_ ? 1 : 0);
    if (fillUnit_ != nullptr)
        fillUnit_->saveTrainingState(os);
}

bool
Processor::importPredictorState(std::istream &is)
{
    if (!binio::expectMagic(is, kPredStateMagic))
        return false;
    std::uint8_t have_mbp = 0, have_hybrid = 0, have_bias = 0;
    if (!binio::readScalar(is, have_mbp) ||
        (have_mbp != 0) != (mbp_ != nullptr)) {
        return false;
    }
    if (mbp_ != nullptr && !mbp_->restoreState(is))
        return false;
    if (!binio::readScalar(is, have_hybrid) ||
        (have_hybrid != 0) != (hybrid_ != nullptr)) {
        return false;
    }
    if (hybrid_ != nullptr && !hybrid_->restoreState(is))
        return false;
    if (!binio::readScalar(is, have_bias) ||
        (have_bias != 0) != (fillUnit_ != nullptr)) {
        return false;
    }
    if (fillUnit_ != nullptr && !fillUnit_->restoreTrainingState(is))
        return false;
    return true;
}

namespace
{

constexpr char kWarmStateMagic[8] = {'T', 'C', 'W', 'A', 'R', 'M', 'v', '1'};

} // namespace

void
Processor::exportWarmState(std::ostream &os) const
{
    binio::writeMagic(os, kWarmStateMagic);
    exportPredictorState(os);
    frontEnd_.indirect.saveState(os);
    hierarchy_.icache().saveState(os);
    hierarchy_.dcache().saveState(os);
    hierarchy_.l2().saveState(os);
    binio::writeScalar<std::uint8_t>(os, traceCache_ ? 1 : 0);
    if (traceCache_ != nullptr)
        traceCache_->saveState(os);
}

bool
Processor::importWarmState(std::istream &is)
{
    if (!binio::expectMagic(is, kWarmStateMagic))
        return false;
    if (!importPredictorState(is))
        return false;
    if (!frontEnd_.indirect.restoreState(is))
        return false;
    if (!hierarchy_.icache().restoreState(is) ||
        !hierarchy_.dcache().restoreState(is) ||
        !hierarchy_.l2().restoreState(is)) {
        return false;
    }
    std::uint8_t have_tc = 0;
    if (!binio::readScalar(is, have_tc) ||
        (have_tc != 0) != (traceCache_ != nullptr)) {
        return false;
    }
    if (traceCache_ != nullptr && !traceCache_->restoreState(is))
        return false;
    return true;
}

SimResult
Processor::makeResult() const
{
    SimResult result;
    result.benchmark = program_.name();
    result.config = config_.name;
    result.instructions = retiredInsts_ - statBaseInsts_;
    const Cycle window_cycles = cycle_ - statBaseCycle_;
    result.cycles = window_cycles;
    result.ipc = window_cycles == 0
                     ? 0.0
                     : static_cast<double>(result.instructions) /
                           window_cycles;
    result.effectiveFetchRate = accounting_.effectiveFetchRate();

    result.condBranches = retiredCondBranches_;
    result.condMispredicts = condMispredicts_ + promotedFaults_;
    result.promotedFaults = promotedFaults_;
    result.indirectMispredicts = indirectMispredicts_;
    result.condMispredictRate =
        retiredCondBranches_ == 0
            ? 0.0
            : static_cast<double>(result.condMispredicts) /
                  retiredCondBranches_;
    result.meanResolutionTime =
        resolutionTimeCount_ == 0
            ? 0.0
            : static_cast<double>(resolutionTimeSum_) /
                  resolutionTimeCount_;

    result.usefulFetches = accounting_.usefulFetches();
    result.fetchedInsts = accounting_.fetchedInsts();
    result.resolutionTimeSum = resolutionTimeSum_;
    result.resolutionTimeCount = resolutionTimeCount_;
    for (unsigned n = 0; n < 4; ++n)
        result.fetchesNeedingPreds[n] = fetchesNeedingPreds_[n];

    const std::uint64_t useful = accounting_.usefulFetches();
    if (useful > 0) {
        result.fetchesNeeding01 =
            static_cast<double>(fetchesNeedingPreds_[0] +
                                fetchesNeedingPreds_[1]) /
            useful;
        result.fetchesNeeding2 =
            static_cast<double>(fetchesNeedingPreds_[2]) / useful;
        result.fetchesNeeding3 =
            static_cast<double>(fetchesNeedingPreds_[3]) / useful;
    }

    for (unsigned c = 0;
         c < static_cast<unsigned>(CycleCategory::NumCategories); ++c) {
        result.cycleCat[c] =
            accounting_.categoryCycles(static_cast<CycleCategory>(c));
    }
    for (unsigned r = 0;
         r < static_cast<unsigned>(FetchReason::NumReasons); ++r) {
        for (unsigned w = 0; w <= Accounting::kMaxFetchWidth; ++w) {
            result.fetchHist[r][w] = accounting_.fetchCount(
                static_cast<FetchReason>(r), w);
        }
    }

    if (traceCache_ != nullptr) {
        result.tcLookups = traceCache_->lookups();
        result.tcHits = traceCache_->hits();
    }
    result.icacheMisses = hierarchy_.icache().misses();
    result.promotedRetired = promotedRetired_;

    StatDump &dump = result.stats;
    dump.add("sim.cycles", static_cast<double>(cycle_));
    dump.add("sim.insts", static_cast<double>(retiredInsts_));
    dump.add("sim.ipc", result.ipc);
    dump.add("fetch.effective_rate", result.effectiveFetchRate);
    dump.add("bpred.cond_branches",
             static_cast<double>(retiredCondBranches_));
    dump.add("bpred.cond_mispredicts",
             static_cast<double>(result.condMispredicts));
    dump.add("bpred.promoted_faults",
             static_cast<double>(promotedFaults_));
    dump.add("bpred.mispredict_rate", result.condMispredictRate);
    dump.add("bpred.mean_resolution_time", result.meanResolutionTime);
    dump.add("bpred.retired_returns", static_cast<double>(retiredReturns_));
    dump.add("bpred.return_misfetches",
             static_cast<double>(returnMisfetches_));
    dump.add("bpred.retired_indirects",
             static_cast<double>(retiredIndirects_));
    dump.add("bpred.indirect_mispredicts",
             static_cast<double>(indirectMispredicts_));
    dump.add("mem.order_violations",
             static_cast<double>(memOrderViolations_));
    hierarchy_.dumpStats(dump);
    if (traceCache_ != nullptr)
        traceCache_->dumpStats(dump);
    if (fillUnit_ != nullptr)
        fillUnit_->dumpStats(dump);
    return result;
}

} // namespace tcsim::sim
