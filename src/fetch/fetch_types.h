/**
 * @file
 * Types shared between the fetch engines and the processor core.
 */

#ifndef TCSIM_FETCH_FETCH_TYPES_H
#define TCSIM_FETCH_FETCH_TYPES_H

#include <cstdint>
#include <vector>

#include "bpred/hybrid.h"
#include "bpred/multi.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "trace/segment.h"

namespace tcsim::fetch
{

/** Where a fetch batch came from. */
enum class FetchSource : std::uint8_t
{
    TraceCache,
    ICache,
};

/** One fetched instruction, annotated for the core. */
struct FetchedInst
{
    isa::Instruction inst;
    Addr pc = 0;

    /** False for inactive-issued segment instructions. */
    bool active = true;

    /** Promoted conditional branch with a static direction. */
    bool promoted = false;
    bool promotedDir = false;

    /** Block-ending (dynamically predicted) conditional branch. */
    bool endsBlock = false;

    /**
     * The direction the fetch engine assumed to continue: the dynamic
     * prediction for block-ending branches, the static direction for
     * promoted branches, and the segment's embedded direction for
     * inactive branches.
     */
    bool followedDir = false;

    /** Trace-segment embedded direction (conditional branches). */
    bool embeddedTaken = false;

    /** Predictor training context (valid if predictionValid). */
    bool predictionValid = false;
    bpred::MbpCtx mbpCtx;
    bpred::HybridCtx hybridCtx;
    bool usedHybrid = false;

    /**
     * The address the machine believes follows this instruction along
     * the path it fetched (for active instructions this is the next
     * fetch target when the instruction ends the batch).
     */
    Addr followedNextPc = 0;
};

/** The outcome of one fetch cycle. */
struct FetchBatch
{
    std::vector<FetchedInst> insts;

    /** The PC to fetch from next cycle (valid when insts non-empty). */
    Addr nextFetchPc = kInvalidAddr;

    FetchSource source = FetchSource::ICache;

    /** Fill-unit reason of the supplying segment (TraceCache source). */
    trace::FillReason segmentReason = trace::FillReason::MaxSize;

    /** Size of the full supplying segment (TraceCache source). */
    unsigned segmentSize = 0;

    /** Number of instructions delivered in the active portion. */
    unsigned activeCount = 0;

    /** Dynamic (non-promoted) predictions consumed this cycle. */
    unsigned predictionsUsed = 0;

    /**
     * True when the predicted path diverged from the segment's
     * embedded path, truncating the active portion (partial match).
     */
    bool partialMatch = false;

    /**
     * Cycles the front end must stall on an instruction-cache miss
     * before this fetch can deliver (insts is empty when non-zero).
     */
    std::uint32_t icacheStall = 0;

    /** Fetch stopped at a serializing instruction. */
    bool sawSerialize = false;

    void
    clear()
    {
        insts.clear();
        nextFetchPc = kInvalidAddr;
        source = FetchSource::ICache;
        segmentReason = trace::FillReason::MaxSize;
        segmentSize = 0;
        activeCount = 0;
        predictionsUsed = 0;
        partialMatch = false;
        icacheStall = 0;
        sawSerialize = false;
    }
};

} // namespace tcsim::fetch

#endif // TCSIM_FETCH_FETCH_TYPES_H
