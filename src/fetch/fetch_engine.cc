#include "fetch/fetch_engine.h"

#include "common/log.h"

namespace tcsim::fetch
{

using isa::Opcode;

FetchEngine::FetchEngine(const FetchEngineParams &params,
                         const workload::Program &program,
                         trace::TraceCache *trace_cache,
                         memory::Cache &icache,
                         bpred::MultipleBranchPredictor *mbp,
                         bpred::HybridPredictor *hybrid,
                         FrontEndState &state)
    : params_(params), program_(program), traceCache_(trace_cache),
      icache_(icache), mbp_(mbp), hybrid_(hybrid), state_(state)
{
    TCSIM_ASSERT(params_.fetchWidth >= 1 && params_.fetchWidth <= 16);
    if (params_.useTraceCache) {
        TCSIM_ASSERT(traceCache_ != nullptr && mbp_ != nullptr,
                     "trace-cache mode needs a TC and an MBP");
    } else {
        TCSIM_ASSERT(hybrid_ != nullptr,
                     "icache-only mode needs the hybrid predictor");
    }
}

std::optional<bool>
FetchEngine::consumeOverride(Addr pc)
{
    const auto it = state_.overrides.find(pc);
    if (it == state_.overrides.end())
        return std::nullopt;
    if (it->second.skip > 0) {
        // An earlier replayed instance of this PC; not ours yet.
        --it->second.skip;
        return std::nullopt;
    }
    const bool dir = it->second.dir;
    state_.overrides.erase(it);
    return dir;
}

Addr
FetchEngine::indirectTargetFor(const isa::Instruction &inst, Addr pc)
{
    if (isa::isReturn(inst.op)) {
        const Addr target = state_.ras.pop();
        return target == kInvalidAddr ? pc + isa::kInstBytes : target;
    }
    const Addr target = state_.indirect.predict(pc);
    return target == kInvalidAddr ? pc + isa::kInstBytes : target;
}

unsigned
FetchEngine::predictedMatchLength(Addr pc,
                                  const trace::TraceSegment &segment) const
{
    // Compare the predicted path against the segment's embedded path
    // word-wide: the block branches' builtTaken bits are packed into
    // blockBranchDirs at insert, so the loop runs once per block
    // branch (<= 3) against one u64 instead of scanning all 16
    // instruction slots for the endsBlock markers.
    unsigned matched = 0;
    unsigned path_bits = 0;
    const std::uint64_t hist = state_.history.value();
    const std::uint64_t dirs = segment.blockBranchDirs;
    for (unsigned position = 0; position < segment.numBlockBranches;
         ++position) {
        const bool pred = mbp_->predict(pc, hist, position, path_bits);
        path_bits |= static_cast<unsigned>(pred) << position;
        if (pred != (((dirs >> position) & 1u) != 0))
            break;
        ++matched;
    }
    return matched;
}

bool
FetchEngine::fullyMatches(Addr pc, const trace::TraceSegment &segment) const
{
    return predictedMatchLength(pc, segment) == segment.numBlockBranches;
}

void
FetchEngine::fetchCycle(Addr pc, FetchBatch &out, Cycle now)
{
    out.clear();
    if (params_.useTraceCache) {
        const trace::TraceSegment *segment = nullptr;
        if (params_.pathAssociativity) {
            // Select the same-start segment whose embedded path best
            // matches the current predictions.
            traceCache_->lookupAll(pc, candidates_);
            unsigned best = 0;
            for (const trace::TraceSegment *cand : candidates_) {
                const unsigned matched =
                    predictedMatchLength(pc, *cand) + 1;
                if (matched > best) {
                    best = matched;
                    segment = cand;
                }
            }
        } else {
            segment = traceCache_->lookup(pc);
        }
        if (segment != nullptr && !params_.partialMatching &&
            !fullyMatches(pc, *segment)) {
            // Without partial matching a diverging segment is useless:
            // treat the lookup as a miss.
            segment = nullptr;
        }
        if (segment != nullptr) {
            fetchFromSegment(pc, *segment, out);
            return;
        }
    }
    fetchFromICache(pc, out, now);
}

void
FetchEngine::fetchFromSegment(Addr pc, const trace::TraceSegment &segment,
                              FetchBatch &out)
{
    out.source = FetchSource::TraceCache;
    out.segmentReason = segment.reason;
    out.segmentSize = segment.size();

    const std::uint64_t hist_at_start = state_.history.value();
    bool diverged = false;
    unsigned path_bits = 0;
    Addr next_pc = kInvalidAddr;

    for (const trace::TraceInst &ti : segment.insts) {
        FetchedInst fi;
        fi.inst = ti.inst;
        fi.pc = ti.pc;
        fi.active = !diverged;
        fi.promoted = ti.promoted;
        fi.promotedDir = ti.promotedDir;
        fi.endsBlock = ti.endsBlock;
        fi.embeddedTaken = ti.builtTaken;
        fi.followedNextPc = ti.embeddedNextPc();

        const Opcode op = ti.inst.op;
        if (isa::isCondBranch(op)) {
            if (ti.promoted) {
                // Promoted branch: no dynamic prediction. A fault-
                // recovery override flips the direction for this one
                // refetched instance, invalidating the rest of the
                // segment (the embedded path assumed the other way).
                bool dir = ti.promotedDir;
                if (fi.active) {
                    if (const auto ov = consumeOverride(ti.pc)) {
                        dir = *ov;
                        fi.promotedDir = dir;
                    }
                    state_.history.push(dir);
                }
                fi.followedDir = dir;
                fi.followedNextPc =
                    dir ? isa::directTarget(ti.inst, ti.pc)
                        : ti.pc + isa::kInstBytes;
                if (fi.active &&
                    fi.followedNextPc != ti.embeddedNextPc()) {
                    diverged = true;
                    next_pc = fi.followedNextPc;
                    out.partialMatch = true;
                }
            } else if (fi.active) {
                // Block-ending branch: consult the predictor (or a
                // fault-recovery override).
                bool pred;
                if (const auto ov = consumeOverride(ti.pc)) {
                    pred = *ov;
                    fi.predictionValid = false;
                } else {
                    const unsigned position = out.predictionsUsed;
                    pred = mbp_->predict(pc, hist_at_start, position,
                                         path_bits);
                    fi.predictionValid = true;
                    fi.mbpCtx.fetchAddr = pc;
                    fi.mbpCtx.history = hist_at_start;
                    fi.mbpCtx.position =
                        static_cast<std::uint8_t>(position);
                    fi.mbpCtx.path =
                        static_cast<std::uint8_t>(path_bits);
                    fi.mbpCtx.prediction = pred;
                    path_bits |= static_cast<unsigned>(pred)
                                 << position;
                }
                ++out.predictionsUsed;
                fi.followedDir = pred;
                fi.followedNextPc =
                    pred ? isa::directTarget(ti.inst, ti.pc)
                         : ti.pc + isa::kInstBytes;
                state_.history.push(pred);
                if (pred != ti.builtTaken) {
                    diverged = true;
                    next_pc = fi.followedNextPc;
                    out.partialMatch = true;
                }
            } else {
                // Inactive branch: rides the embedded path.
                fi.followedDir = ti.builtTaken;
            }
        } else if (isa::isCall(op)) {
            if (fi.active)
                state_.ras.push(ti.pc + isa::kInstBytes);
        } else if (isa::isReturn(op) || isa::isIndirectJump(op)) {
            // Always the final instruction of a segment.
            if (fi.active) {
                fi.followedNextPc = indirectTargetFor(ti.inst, ti.pc);
                next_pc = fi.followedNextPc;
            }
        } else if (isa::isSerializing(op)) {
            // Only an active serializing instruction stalls fetch; an
            // inactive one is riding a losing path.
            if (fi.active)
                out.sawSerialize = true;
            fi.followedNextPc = ti.pc + isa::kInstBytes;
        }

        if (fi.active) {
            ++out.activeCount;
        } else if (!params_.inactiveIssue) {
            // Inactive issue disabled: nothing beyond the divergence
            // enters the machine.
            break;
        }
        out.insts.push_back(fi);
    }

    if (next_pc == kInvalidAddr) {
        // No divergence: continue after the last instruction along the
        // followed path.
        next_pc = out.insts.back().followedNextPc;
    }
    out.nextFetchPc = next_pc;
    TCSIM_TPOINT(tracer_, Fetch, "tc_supply",
                 "pc=0x%llx active=%u total=%zu partial=%d next=0x%llx",
                 static_cast<unsigned long long>(pc), out.activeCount,
                 out.insts.size(), out.partialMatch ? 1 : 0,
                 static_cast<unsigned long long>(out.nextFetchPc));
}

void
FetchEngine::fetchFromICache(Addr pc, FetchBatch &out, Cycle now)
{
    out.source = FetchSource::ICache;

    // First-line access: a miss stalls the front end.
    const std::uint32_t stall = icache_.access(pc, false, now);
    if (stall > 0) {
        out.icacheStall = stall;
        TCSIM_TPOINT(tracer_, Fetch, "icache_stall",
                     "pc=0x%llx cycles=%u",
                     static_cast<unsigned long long>(pc), stall);
        return;
    }

    const std::uint64_t hist_at_start = state_.history.value();
    const Addr first_line = pc / icache_.lineBytes();

    for (unsigned i = 0; i < params_.fetchWidth; ++i) {
        const Addr addr = pc + Addr{i} * isa::kInstBytes;

        // Split-line fetching: crossing into a missing second line
        // terminates the fetch at the boundary (paper footnote 2).
        if (addr / icache_.lineBytes() != first_line) {
            if (!icache_.probe(addr))
                break;
        }

        FetchedInst fi;
        fi.inst = program_.fetch(addr);
        fi.pc = addr;
        fi.followedNextPc = addr + isa::kInstBytes;

        const Opcode op = fi.inst.op;
        if (isa::isCondBranch(op)) {
            bool pred;
            if (const auto ov = consumeOverride(addr)) {
                pred = *ov;
                fi.predictionValid = false;
            } else if (hybrid_ != nullptr) {
                fi.hybridCtx =
                    hybrid_->predict(addr, state_.history.value());
                fi.usedHybrid = true;
                fi.predictionValid = true;
                pred = fi.hybridCtx.prediction;
            } else {
                pred = mbp_->predict(pc, hist_at_start, 0, 0);
                fi.predictionValid = true;
                fi.mbpCtx.fetchAddr = pc;
                fi.mbpCtx.history = hist_at_start;
                fi.mbpCtx.position = 0;
                fi.mbpCtx.path = 0;
                fi.mbpCtx.prediction = pred;
            }
            ++out.predictionsUsed;
            fi.endsBlock = true;
            fi.followedDir = pred;
            fi.embeddedTaken = pred;
            fi.followedNextPc =
                pred ? isa::directTarget(fi.inst, addr)
                     : addr + isa::kInstBytes;
            state_.history.push(pred);
            out.insts.push_back(fi);
            ++out.activeCount;
            break; // a fetch block ends at any control instruction
        }
        if (isa::isUncondDirect(op)) {
            if (isa::isCall(op))
                state_.ras.push(addr + isa::kInstBytes);
            fi.followedNextPc = isa::directTarget(fi.inst, addr);
            out.insts.push_back(fi);
            ++out.activeCount;
            break;
        }
        if (isa::isReturn(op) || isa::isIndirectJump(op)) {
            fi.followedNextPc = indirectTargetFor(fi.inst, addr);
            out.insts.push_back(fi);
            ++out.activeCount;
            break;
        }
        if (isa::isSerializing(op)) {
            out.sawSerialize = true;
            out.insts.push_back(fi);
            ++out.activeCount;
            break;
        }

        out.insts.push_back(fi);
        ++out.activeCount;
    }

    if (!out.insts.empty())
        out.nextFetchPc = out.insts.back().followedNextPc;
    TCSIM_TPOINT(tracer_, Fetch, "icache_supply",
                 "pc=0x%llx n=%zu next=0x%llx",
                 static_cast<unsigned long long>(pc), out.insts.size(),
                 static_cast<unsigned long long>(out.nextFetchPc));
}

} // namespace tcsim::fetch
