/**
 * @file
 * The front-end fetch engine.
 *
 * In trace-cache mode the trace cache and the supporting instruction
 * cache are probed in parallel: a trace-cache hit supplies up to a
 * full segment with partial matching and inactive issue (all segment
 * instructions are issued; those beyond the predicted path's
 * divergence from the segment's embedded path are issued inactively);
 * a miss falls back to one instruction-cache fetch block.
 *
 * In icache-only mode (the paper's reference front end) a large
 * dual-ported instruction cache supplies one fetch block per cycle,
 * predicted by an aggressive hybrid predictor.
 */

#ifndef TCSIM_FETCH_FETCH_ENGINE_H
#define TCSIM_FETCH_FETCH_ENGINE_H

#include <optional>
#include <unordered_map>

#include "bpred/history.h"
#include "bpred/hybrid.h"
#include "bpred/indirect.h"
#include "bpred/multi.h"
#include "bpred/ras.h"
#include "fetch/fetch_types.h"
#include "memory/cache.h"
#include "obs/trace.h"
#include "trace/trace_cache.h"
#include "workload/program.h"

namespace tcsim::fetch
{

/** Fetch engine configuration. */
struct FetchEngineParams
{
    /** Probe the trace cache (false = icache-only reference config). */
    bool useTraceCache = true;
    /** Maximum instructions per fetch. */
    unsigned fetchWidth = 16;
    /**
     * Partial matching [Friendly 97]: a segment whose embedded path
     * diverges from the predicted path still supplies its matching
     * prefix. When disabled, such a lookup is treated as a trace-cache
     * miss and the icache supplies one fetch block.
     */
    bool partialMatching = true;
    /**
     * Inactive issue [Friendly 97]: segment instructions beyond the
     * divergence point are issued inactively (salvaged if the branch
     * resolves along the segment's path). When disabled, delivery
     * stops at the divergence.
     */
    bool inactiveIssue = true;
    /**
     * Path associativity: choose among multiple segments with the
     * same start address by predicted-path match (the paper's section
     * 3 explicitly models a cache *without* it; this is the cited
     * alternative).
     */
    bool pathAssociativity = false;
};

/**
 * Mutable front-end state shared between the fetch engine and the
 * processor (which repairs it on recoveries).
 */
struct FrontEndState
{
    bpred::GlobalHistory history;
    bpred::ReturnAddressStack ras;
    bpred::IndirectPredictor indirect;
    /** A pending promoted-fault direction override. */
    struct Override
    {
        /** Dynamic instances of the PC to pass over before applying
         * (earlier instances replayed by the same recovery). */
        unsigned skip = 0;
        bool dir = false;
    };

    /**
     * One-shot per-PC direction overrides installed by promoted-branch
     * fault recovery: the refetched faulting instance executes in the
     * corrected direction.
     */
    std::unordered_map<Addr, Override> overrides;
};

/** The fetch engine proper. */
class FetchEngine
{
  public:
    /**
     * @param mbp multiple branch predictor (trace-cache mode), may be
     *        nullptr in icache-only mode
     * @param hybrid single-branch hybrid predictor (icache-only mode),
     *        may be nullptr in trace-cache mode
     */
    FetchEngine(const FetchEngineParams &params,
                const workload::Program &program,
                trace::TraceCache *trace_cache, memory::Cache &icache,
                bpred::MultipleBranchPredictor *mbp,
                bpred::HybridPredictor *hybrid, FrontEndState &state);

    /**
     * Run one fetch cycle starting at @p pc. Results land in @p out
     * (cleared first). When out.icacheStall is non-zero the cycle
     * produced nothing and the caller must stall that many cycles
     * before retrying the same pc.
     * @param now current cycle, threaded to the memory hierarchy so a
     *        contended backstop can charge queueing delay
     */
    void fetchCycle(Addr pc, FetchBatch &out, Cycle now = 0);

    /** Attach a tracer for `fetch` trace points (null disables). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

  private:
    void fetchFromSegment(Addr pc, const trace::TraceSegment &segment,
                          FetchBatch &out);
    void fetchFromICache(Addr pc, FetchBatch &out, Cycle now);

    /**
     * @return the number of block-ending branches of @p segment whose
     * embedded direction agrees with the predictor (stopping at the
     * first disagreement), without mutating any state.
     */
    unsigned predictedMatchLength(Addr pc,
                                  const trace::TraceSegment &segment) const;

    /** @return true if every block branch agrees with the predictor. */
    bool fullyMatches(Addr pc, const trace::TraceSegment &segment) const;

    /** Consume a one-shot override for @p pc if present. */
    std::optional<bool> consumeOverride(Addr pc);

    /** Predicted target of a return / indirect jump at fetch time. */
    Addr indirectTargetFor(const isa::Instruction &inst, Addr pc);

    FetchEngineParams params_;
    const workload::Program &program_;
    trace::TraceCache *traceCache_;
    memory::Cache &icache_;
    bpred::MultipleBranchPredictor *mbp_;
    bpred::HybridPredictor *hybrid_;
    FrontEndState &state_;
    /** Scratch for the path-associative probe; reused across fetches
     * so the per-cycle lookup never allocates. */
    std::vector<const trace::TraceSegment *> candidates_;

    obs::Tracer *tracer_ = nullptr;
};

} // namespace tcsim::fetch

#endif // TCSIM_FETCH_FETCH_ENGINE_H
