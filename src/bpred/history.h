/**
 * @file
 * Global branch history register with snapshot/restore for speculative
 * update and checkpoint repair.
 */

#ifndef TCSIM_BPRED_HISTORY_H
#define TCSIM_BPRED_HISTORY_H

#include <cstdint>

namespace tcsim::bpred
{

/**
 * A shift register of branch outcomes, most recent in bit 0.
 *
 * The fetch engine updates it speculatively with predicted (or
 * promoted-static) outcomes; recovery restores the value captured in
 * the faulting branch's checkpoint.
 */
class GlobalHistory
{
  public:
    /** Shift in one outcome (true = taken). */
    void
    push(bool taken)
    {
        bits_ = (bits_ << 1) | static_cast<std::uint64_t>(taken);
    }

    /** @return the raw history bits. */
    std::uint64_t value() const { return bits_; }

    /** Restore a previously captured value. */
    void restore(std::uint64_t bits) { bits_ = bits; }

  private:
    std::uint64_t bits_ = 0;
};

} // namespace tcsim::bpred

#endif // TCSIM_BPRED_HISTORY_H
