#include "bpred/multi.h"

#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::bpred
{

TreeMbp::TreeMbp(std::uint32_t entries)
    : entries_(entries), indexMask_(entries - 1)
{
    TCSIM_ASSERT(isPowerOf2(entries_));
    counters_.assign(static_cast<std::size_t>(entries_) * 7,
                     SaturatingCounter(2, 1));
}

std::uint32_t
TreeMbp::indexOf(Addr fetch_addr, std::uint64_t history) const
{
    return static_cast<std::uint32_t>(
               (fetch_addr / isa::kInstBytes) ^ history) &
           indexMask_;
}

bool
TreeMbp::predict(Addr fetch_addr, std::uint64_t history,
                 unsigned position, unsigned path) const
{
    TCSIM_ASSERT(position < 3);
    const std::size_t base =
        static_cast<std::size_t>(indexOf(fetch_addr, history)) * 7;
    return counters_[base + counterOf(position, path)].predictTaken();
}

void
TreeMbp::update(const MbpCtx &ctx, bool taken)
{
    const std::size_t base =
        static_cast<std::size_t>(indexOf(ctx.fetchAddr, ctx.history)) * 7;
    counters_[base + counterOf(ctx.position, ctx.path)].update(taken);
}

SplitMbp::SplitMbp(std::uint32_t first, std::uint32_t second,
                   std::uint32_t third)
{
    const std::uint32_t sizes[3] = {first, second, third};
    for (unsigned t = 0; t < 3; ++t) {
        TCSIM_ASSERT(isPowerOf2(sizes[t]));
        tables_[t].assign(sizes[t], SaturatingCounter(2, 1));
        indexMasks_[t] = sizes[t] - 1;
    }
}

std::uint32_t
SplitMbp::indexOf(Addr fetch_addr, std::uint64_t history,
                  unsigned position) const
{
    return static_cast<std::uint32_t>(
               (fetch_addr / isa::kInstBytes) ^ history) &
           indexMasks_[position];
}

bool
SplitMbp::predict(Addr fetch_addr, std::uint64_t history,
                  unsigned position, unsigned path) const
{
    TCSIM_ASSERT(position < 3);
    (void)path; // independent tables do not condition on the path
    return tables_[position][indexOf(fetch_addr, history, position)]
        .predictTaken();
}

void
SplitMbp::update(const MbpCtx &ctx, bool taken)
{
    tables_[ctx.position]
           [indexOf(ctx.fetchAddr, ctx.history, ctx.position)]
               .update(taken);
}

} // namespace tcsim::bpred
