#include "bpred/multi.h"

#include <istream>
#include <ostream>

#include "common/binio.h"
#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::bpred
{

namespace
{

constexpr char kTreeMagic[8] = {'T', 'C', 'M', 'B', 'T', 'R', 'E', 'E'};
constexpr char kSplitMagic[8] = {'T', 'C', 'M', 'B', 'S', 'P', 'L', 'T'};

/** Serialize a counter vector as one byte per counter value. */
void
saveCounters(std::ostream &os,
             const std::vector<SaturatingCounter> &counters)
{
    binio::writeScalar<std::uint64_t>(os, counters.size());
    for (const SaturatingCounter &counter : counters)
        binio::writeScalar<std::uint8_t>(
            os, static_cast<std::uint8_t>(counter.value()));
}

/**
 * Read a counter-vector record saved by saveCounters into @p values,
 * validating the element count and range against @p counters without
 * modifying them (so a failed restore leaves the tables untouched).
 */
bool
readCounterBytes(std::istream &is,
                 const std::vector<SaturatingCounter> &counters,
                 std::vector<std::uint8_t> &values)
{
    std::uint64_t count = 0;
    if (!binio::readScalar(is, count) || count != counters.size())
        return false;
    values.resize(counters.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (!binio::readScalar(is, values[i]) ||
            values[i] > counters[i].maxValue()) {
            return false;
        }
    }
    return true;
}

void
applyCounterBytes(std::vector<SaturatingCounter> &counters,
                  const std::vector<std::uint8_t> &values)
{
    for (std::size_t i = 0; i < counters.size(); ++i)
        counters[i].set(values[i]);
}

} // namespace

TreeMbp::TreeMbp(std::uint32_t entries)
    : entries_(entries), indexMask_(entries - 1)
{
    TCSIM_ASSERT(isPowerOf2(entries_));
    counters_.assign(static_cast<std::size_t>(entries_) * 7,
                     SaturatingCounter(2, 1));
}

std::uint32_t
TreeMbp::indexOf(Addr fetch_addr, std::uint64_t history) const
{
    return static_cast<std::uint32_t>(
               (fetch_addr / isa::kInstBytes) ^ history) &
           indexMask_;
}

bool
TreeMbp::predict(Addr fetch_addr, std::uint64_t history,
                 unsigned position, unsigned path) const
{
    TCSIM_ASSERT(position < 3);
    const std::size_t base =
        static_cast<std::size_t>(indexOf(fetch_addr, history)) * 7;
    return counters_[base + counterOf(position, path)].predictTaken();
}

void
TreeMbp::update(const MbpCtx &ctx, bool taken)
{
    const std::size_t base =
        static_cast<std::size_t>(indexOf(ctx.fetchAddr, ctx.history)) * 7;
    counters_[base + counterOf(ctx.position, ctx.path)].update(taken);
}

void
TreeMbp::saveState(std::ostream &os) const
{
    binio::writeMagic(os, kTreeMagic);
    binio::writeScalar<std::uint32_t>(os, entries_);
    saveCounters(os, counters_);
}

bool
TreeMbp::restoreState(std::istream &is)
{
    if (!binio::expectMagic(is, kTreeMagic))
        return false;
    std::uint32_t entries = 0;
    if (!binio::readScalar(is, entries) || entries != entries_)
        return false;
    std::vector<std::uint8_t> values;
    if (!readCounterBytes(is, counters_, values))
        return false;
    applyCounterBytes(counters_, values);
    return true;
}

SplitMbp::SplitMbp(std::uint32_t first, std::uint32_t second,
                   std::uint32_t third)
{
    const std::uint32_t sizes[3] = {first, second, third};
    for (unsigned t = 0; t < 3; ++t) {
        TCSIM_ASSERT(isPowerOf2(sizes[t]));
        tables_[t].assign(sizes[t], SaturatingCounter(2, 1));
        indexMasks_[t] = sizes[t] - 1;
    }
}

std::uint32_t
SplitMbp::indexOf(Addr fetch_addr, std::uint64_t history,
                  unsigned position) const
{
    return static_cast<std::uint32_t>(
               (fetch_addr / isa::kInstBytes) ^ history) &
           indexMasks_[position];
}

bool
SplitMbp::predict(Addr fetch_addr, std::uint64_t history,
                  unsigned position, unsigned path) const
{
    TCSIM_ASSERT(position < 3);
    (void)path; // independent tables do not condition on the path
    return tables_[position][indexOf(fetch_addr, history, position)]
        .predictTaken();
}

void
SplitMbp::update(const MbpCtx &ctx, bool taken)
{
    tables_[ctx.position]
           [indexOf(ctx.fetchAddr, ctx.history, ctx.position)]
               .update(taken);
}

void
SplitMbp::saveState(std::ostream &os) const
{
    binio::writeMagic(os, kSplitMagic);
    for (const auto &table : tables_)
        binio::writeScalar<std::uint32_t>(
            os, static_cast<std::uint32_t>(table.size()));
    for (const auto &table : tables_)
        saveCounters(os, table);
}

bool
SplitMbp::restoreState(std::istream &is)
{
    if (!binio::expectMagic(is, kSplitMagic))
        return false;
    for (const auto &table : tables_) {
        std::uint32_t size = 0;
        if (!binio::readScalar(is, size) || size != table.size())
            return false;
    }
    std::vector<std::uint8_t> values[3];
    for (unsigned t = 0; t < 3; ++t) {
        if (!readCounterBytes(is, tables_[t], values[t]))
            return false;
    }
    for (unsigned t = 0; t < 3; ++t)
        applyCounterBytes(tables_[t], values[t]);
    return true;
}

} // namespace tcsim::bpred
