#include "bpred/bias_table.h"

#include <bit>

#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::bpred
{

BranchBiasTable::BranchBiasTable(const BiasTableParams &params)
    : params_(params)
{
    TCSIM_ASSERT(isPowerOf2(params_.entries));
    TCSIM_ASSERT(params_.promoteThreshold >= 1);
    TCSIM_ASSERT(params_.counterMax >= params_.promoteThreshold);
    indexMask_ = params_.entries - 1;
    tagShift_ = static_cast<std::uint32_t>(
        std::countr_zero(params_.entries));
    entries_.resize(params_.entries);
}

std::uint32_t
BranchBiasTable::indexOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc / isa::kInstBytes) &
                                      indexMask_);
}

Addr
BranchBiasTable::tagOf(Addr pc) const
{
    return (pc / isa::kInstBytes) >> tagShift_;
}

void
BranchBiasTable::update(Addr pc, bool taken)
{
    Entry &entry = entries_[indexOf(pc)];
    const Addr tag = tagOf(pc);

    if (entry.tag != tag) {
        // Miss: the displaced branch loses any promoted status.
        if (entry.promoted) {
            TCSIM_TPOINT(tracer_, Promote, "displace", "pc=0x%llx",
                         static_cast<unsigned long long>(pc));
        }
        entry.tag = tag;
        entry.lastOutcome = taken;
        entry.count = 1;
        entry.promoted = false;
        entry.promotedDir = false;
        return;
    }

    if (entry.lastOutcome == taken) {
        if (entry.count < params_.counterMax)
            ++entry.count;
    } else {
        entry.lastOutcome = taken;
        entry.count = 1;
    }

    if (!entry.promoted && entry.count >= params_.promoteThreshold) {
        entry.promoted = true;
        entry.promotedDir = taken;
        ++promotions_;
        TCSIM_TPOINT(tracer_, Promote, "promote", "pc=0x%llx dir=%d",
                     static_cast<unsigned long long>(pc), taken ? 1 : 0);
    } else if (entry.promoted && taken != entry.promotedDir &&
               entry.count >= 2) {
        entry.promoted = false;
        ++demotions_;
        TCSIM_TPOINT(tracer_, Promote, "demote", "pc=0x%llx dir=%d",
                     static_cast<unsigned long long>(pc), taken ? 1 : 0);
    }
}

PromotionAdvice
BranchBiasTable::advice(Addr pc) const
{
    const Entry &entry = entries_[indexOf(pc)];
    PromotionAdvice result;
    if (entry.tag == tagOf(pc) && entry.promoted) {
        result.promote = true;
        result.direction = entry.promotedDir;
    }
    return result;
}

} // namespace tcsim::bpred
