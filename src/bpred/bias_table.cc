#include "bpred/bias_table.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/binio.h"
#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::bpred
{

BranchBiasTable::BranchBiasTable(const BiasTableParams &params)
    : params_(params)
{
    TCSIM_ASSERT(isPowerOf2(params_.entries));
    TCSIM_ASSERT(params_.promoteThreshold >= 1);
    TCSIM_ASSERT(params_.counterMax >= params_.promoteThreshold);
    TCSIM_ASSERT(params_.counterMax <= Entry::kCountMask,
                 "consecutive counter must fit the packed word");
    indexMask_ = params_.entries - 1;
    tagShift_ = static_cast<std::uint32_t>(
        std::countr_zero(params_.entries));
    entries_.resize(params_.entries);
}

std::uint32_t
BranchBiasTable::indexOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc / isa::kInstBytes) &
                                      indexMask_);
}

std::uint32_t
BranchBiasTable::tagOf(Addr pc) const
{
    const std::uint64_t tag = (pc / isa::kInstBytes) >> tagShift_;
    TCSIM_ASSERT(tag < Entry::kNoTag,
                 "branch pc beyond the 32-bit tag range");
    return static_cast<std::uint32_t>(tag);
}

void
BranchBiasTable::update(Addr pc, bool taken)
{
    Entry &entry = entries_[indexOf(pc)];
    const std::uint32_t tag = tagOf(pc);

    if (entry.tag != tag) {
        // Miss: the displaced branch loses any promoted status.
        if (entry.promoted()) {
            TCSIM_TPOINT(tracer_, Promote, "displace", "pc=0x%llx",
                         static_cast<unsigned long long>(pc));
        }
        entry.tag = tag;
        entry.meta = 1; // count=1, lastOutcome/promoted/dir clear
        entry.setFlag(Entry::kLastOutcomeBit, taken);
        return;
    }

    if (entry.lastOutcome() == taken) {
        if (entry.count() < params_.counterMax)
            entry.setCount(entry.count() + 1);
    } else {
        entry.setFlag(Entry::kLastOutcomeBit, taken);
        entry.setCount(1);
    }

    if (!entry.promoted() && entry.count() >= params_.promoteThreshold) {
        entry.setFlag(Entry::kPromotedBit, true);
        entry.setFlag(Entry::kPromotedDirBit, taken);
        ++promotions_;
        TCSIM_TPOINT(tracer_, Promote, "promote", "pc=0x%llx dir=%d",
                     static_cast<unsigned long long>(pc), taken ? 1 : 0);
    } else if (entry.promoted() && taken != entry.promotedDir() &&
               entry.count() >= 2) {
        entry.setFlag(Entry::kPromotedBit, false);
        ++demotions_;
        TCSIM_TPOINT(tracer_, Promote, "demote", "pc=0x%llx dir=%d",
                     static_cast<unsigned long long>(pc), taken ? 1 : 0);
    }
}

PromotionAdvice
BranchBiasTable::advice(Addr pc) const
{
    const Entry &entry = entries_[indexOf(pc)];
    PromotionAdvice result;
    if (entry.tag == tagOf(pc) && entry.promoted()) {
        result.promote = true;
        result.direction = entry.promotedDir();
    }
    return result;
}

namespace
{

using binio::readScalar;
using binio::writeScalar;

constexpr char kStateMagic[8] = {'T', 'C', 'B', 'I', 'A', 'S', 'v', '1'};

} // namespace

void
BranchBiasTable::saveState(std::ostream &os) const
{
    binio::writeMagic(os, kStateMagic);
    writeScalar<std::uint32_t>(os, params_.entries);
    writeScalar<std::uint32_t>(os, params_.promoteThreshold);
    writeScalar<std::uint32_t>(os, params_.counterMax);
    writeScalar<std::uint64_t>(os, promotions_);
    writeScalar<std::uint64_t>(os, demotions_);
    for (const Entry &entry : entries_) {
        // The checkpoint keeps the original 64-bit tag field so blobs
        // written before the 8-byte entry packing stay loadable; the
        // in-memory empty sentinel maps to the wide all-ones one.
        writeScalar<std::uint64_t>(os, entry.tag == Entry::kNoTag
                                           ? ~std::uint64_t{0}
                                           : entry.tag);
        writeScalar<std::uint32_t>(os, entry.meta);
    }
}

bool
BranchBiasTable::restoreState(std::istream &is)
{
    if (!binio::expectMagic(is, kStateMagic))
        return false;
    std::uint32_t entries = 0, threshold = 0, counter_max = 0;
    if (!readScalar(is, entries) || !readScalar(is, threshold) ||
        !readScalar(is, counter_max) || entries != params_.entries ||
        threshold != params_.promoteThreshold ||
        counter_max != params_.counterMax) {
        return false;
    }
    std::uint64_t promotions = 0, demotions = 0;
    if (!readScalar(is, promotions) || !readScalar(is, demotions))
        return false;
    std::vector<Entry> loaded(params_.entries);
    for (Entry &entry : loaded) {
        std::uint64_t tag = 0;
        if (!readScalar(is, tag) || !readScalar(is, entry.meta))
            return false;
        if (tag == ~std::uint64_t{0})
            entry.tag = Entry::kNoTag;
        else if (tag >= Entry::kNoTag)
            return false; // cannot represent in the packed entry
        else
            entry.tag = static_cast<std::uint32_t>(tag);
        if (entry.count() > params_.counterMax)
            return false;
    }
    entries_ = std::move(loaded);
    promotions_ = promotions;
    demotions_ = demotions;
    return true;
}

} // namespace tcsim::bpred
