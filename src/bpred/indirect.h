/**
 * @file
 * A last-target predictor for indirect jumps.
 *
 * The paper does not detail its indirect-target mechanism; indirect
 * jumps that miss here produce "misfetch" cycles (Figure 12's small
 * Misfetches component). A simple untagged last-target table is the
 * era-appropriate choice.
 */

#ifndef TCSIM_BPRED_INDIRECT_H
#define TCSIM_BPRED_INDIRECT_H

#include <cstdint>
#include <vector>

#include "common/binio.h"
#include "common/bitutils.h"
#include "common/log.h"
#include "common/types.h"
#include "isa/instruction.h"

namespace tcsim::bpred
{

/** Untagged last-target table for indirect jumps. */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(std::uint32_t entries = 512)
        : entries_(entries)
    {
        TCSIM_ASSERT(isPowerOf2(entries));
        targets_.resize(entries, kInvalidAddr);
    }

    /**
     * @return the predicted target of the indirect jump at @p pc, or
     * kInvalidAddr if the site has never resolved (a guaranteed
     * misfetch).
     */
    Addr
    predict(Addr pc) const
    {
        return targets_[indexOf(pc)];
    }

    /** Record the resolved target. */
    void
    update(Addr pc, Addr target)
    {
        targets_[indexOf(pc)] = target;
    }

    /**
     * Serialize / reload the target table for warm-start checkpoints.
     * restoreState() rejects a blob from a different table size.
     */
    void
    saveState(std::ostream &os) const
    {
        binio::writeScalar(os, entries_);
        for (const Addr target : targets_)
            binio::writeScalar(os, target);
    }
    bool
    restoreState(std::istream &is)
    {
        std::uint32_t entries = 0;
        if (!binio::readScalar(is, entries) || entries != entries_)
            return false;
        for (Addr &target : targets_) {
            if (!binio::readScalar(is, target))
                return false;
        }
        return true;
    }

  private:
    std::uint32_t
    indexOf(Addr pc) const
    {
        return static_cast<std::uint32_t>((pc / isa::kInstBytes) &
                                          (entries_ - 1));
    }

    std::uint32_t entries_;
    std::vector<Addr> targets_;
};

} // namespace tcsim::bpred

#endif // TCSIM_BPRED_INDIRECT_H
