/**
 * @file
 * Return address stack with checkpoint repair.
 *
 * The paper models an ideal RAS. We implement a speculatively
 * maintained stack that is repaired on recovery by restoring (depth,
 * top-entry); with unbounded depth this is correct in practice — any
 * residual corruption shows up as a (rare) return misfetch rather
 * than being silently ignored.
 */

#ifndef TCSIM_BPRED_RAS_H
#define TCSIM_BPRED_RAS_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace tcsim::bpred
{

/** A checkpointable return address stack. */
class ReturnAddressStack
{
  public:
    /** @param max_depth 0 means unbounded (the paper's ideal model). */
    explicit ReturnAddressStack(std::uint32_t max_depth = 0)
        : maxDepth_(max_depth)
    {
    }

    /** State captured at a checkpoint. */
    struct Checkpoint
    {
        std::uint32_t depth = 0;
        Addr top = kInvalidAddr;
    };

    /** Push a return address (at a call's fetch). */
    void
    push(Addr addr)
    {
        if (maxDepth_ != 0 && stack_.size() >= maxDepth_)
            stack_.erase(stack_.begin());
        stack_.push_back(addr);
    }

    /** Pop the predicted return target (at a return's fetch). */
    Addr
    pop()
    {
        if (stack_.empty())
            return kInvalidAddr;
        const Addr addr = stack_.back();
        stack_.pop_back();
        return addr;
    }

    /** @return the current depth. */
    std::uint32_t depth() const
    {
        return static_cast<std::uint32_t>(stack_.size());
    }

    /** Capture repair state. */
    Checkpoint
    snapshot() const
    {
        Checkpoint cp;
        cp.depth = depth();
        cp.top = stack_.empty() ? kInvalidAddr : stack_.back();
        return cp;
    }

    /** Repair to a previously captured state. */
    void
    restore(const Checkpoint &cp)
    {
        stack_.resize(cp.depth);
        if (cp.depth > 0 && cp.top != kInvalidAddr)
            stack_.back() = cp.top;
    }

    /** Replace the whole stack (rebuild-based recovery). */
    void assign(std::vector<Addr> contents) { stack_ = std::move(contents); }

    /** Replace the whole stack by swapping buffers: @p contents
     * receives the old stack's storage, so a caller that rebuilds
     * into a reused scratch vector never allocates in steady state. */
    void assignSwap(std::vector<Addr> &contents) { stack_.swap(contents); }

    /** @return the full stack contents, bottom first. */
    const std::vector<Addr> &contents() const { return stack_; }

  private:
    std::uint32_t maxDepth_;
    std::vector<Addr> stack_;
};

} // namespace tcsim::bpred

#endif // TCSIM_BPRED_RAS_H
