/**
 * @file
 * Multiple branch predictors: up to three conditional-branch
 * predictions per cycle, as required to sequence through trace
 * segments.
 *
 * Two organizations are modeled:
 *
 *  - TreeMbp (paper Figure 3, the baseline): a gshare-style pattern
 *    history table of 16K entries, each holding seven 2-bit counters
 *    arranged as a depth-3 binary tree. Counter 0 predicts the first
 *    branch; counters 1-2 predict the second branch conditioned on the
 *    first outcome; counters 3-6 predict the third conditioned on the
 *    first two. 32 KB of counter state.
 *
 *  - SplitMbp (paper section 4, used with promotion): three separate
 *    gshare tables of 64K / 16K / 8K 2-bit counters providing the
 *    first / second / third prediction respectively. 24 KB total,
 *    sized to match promotion's skew toward first predictions.
 *
 * Prediction and update use the fetch address and the global history
 * captured at fetch, which callers carry alongside each branch; for
 * retired branches the predicted intra-group path always equals the
 * actual path (later branches of a misfetched group never retire), so
 * updates train exactly the counters that were consulted.
 */

#ifndef TCSIM_BPRED_MULTI_H
#define TCSIM_BPRED_MULTI_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/saturating_counter.h"
#include "common/types.h"

namespace tcsim::bpred
{

/** Per-branch context carried from prediction to update. */
struct MbpCtx
{
    Addr fetchAddr = 0;       ///< fetch-group address
    std::uint64_t history = 0; ///< global history at fetch
    std::uint8_t position = 0; ///< 0..2 within the fetch group
    std::uint8_t path = 0;     ///< outcomes of earlier group branches
    bool prediction = false;
};

/** Abstract multi-prediction interface. */
class MultipleBranchPredictor
{
  public:
    virtual ~MultipleBranchPredictor() = default;

    /** @return the number of predictions available per cycle. */
    virtual unsigned maxPredictions() const = 0;

    /**
     * Predict the branch at @p position of the fetch group starting
     * at @p fetch_addr, given the predicted outcomes of the group's
     * earlier branches in @p path (bit i = branch i taken).
     */
    virtual bool predict(Addr fetch_addr, std::uint64_t history,
                         unsigned position, unsigned path) const = 0;

    /** Train with the resolved outcome of a retired branch. */
    virtual void update(const MbpCtx &ctx, bool taken) = 0;

    /**
     * Serialize the counter state for warm-start checkpoints.
     * restoreState() rejects a blob from a different organization or
     * geometry and returns false, leaving the tables untouched.
     */
    virtual void saveState(std::ostream &os) const = 0;
    virtual bool restoreState(std::istream &is) = 0;
};

/** The baseline 16K x 7-counter tree predictor (Figure 3). */
class TreeMbp : public MultipleBranchPredictor
{
  public:
    explicit TreeMbp(std::uint32_t entries = 16384);

    unsigned maxPredictions() const override { return 3; }
    bool predict(Addr fetch_addr, std::uint64_t history,
                 unsigned position, unsigned path) const override;
    void update(const MbpCtx &ctx, bool taken) override;
    void saveState(std::ostream &os) const override;
    bool restoreState(std::istream &is) override;

  private:
    std::uint32_t indexOf(Addr fetch_addr, std::uint64_t history) const;
    static unsigned
    counterOf(unsigned position, unsigned path)
    {
        return (1u << position) - 1 + (path & ((1u << position) - 1));
    }

    std::uint32_t entries_;
    std::uint32_t indexMask_; ///< entries_ - 1, hoisted off the hot path
    std::vector<SaturatingCounter> counters_; // entries_ x 7
};

/** The split three-table predictor used alongside promotion. */
class SplitMbp : public MultipleBranchPredictor
{
  public:
    SplitMbp(std::uint32_t first = 65536, std::uint32_t second = 16384,
             std::uint32_t third = 8192);

    unsigned maxPredictions() const override { return 3; }
    bool predict(Addr fetch_addr, std::uint64_t history,
                 unsigned position, unsigned path) const override;
    void update(const MbpCtx &ctx, bool taken) override;
    void saveState(std::ostream &os) const override;
    bool restoreState(std::istream &is) override;

  private:
    std::uint32_t indexOf(Addr fetch_addr, std::uint64_t history,
                          unsigned position) const;

    std::vector<SaturatingCounter> tables_[3];
    std::uint32_t indexMasks_[3]; ///< per-table size - 1, hoisted
};

} // namespace tcsim::bpred

#endif // TCSIM_BPRED_MULTI_H
