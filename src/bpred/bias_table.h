/**
 * @file
 * The branch bias table that drives branch promotion (paper Figure 5).
 *
 * A tagged, direct-mapped table indexed by branch address. Each entry
 * records the branch's previous outcome and an n-bit saturating count
 * of consecutive identical outcomes, plus the sticky promoted state:
 *
 *  - a branch is promoted once its consecutive-outcome count reaches
 *    the threshold;
 *  - a promoted branch is demoted when two or more consecutive
 *    outcomes land in the other direction, or on a bias-table miss
 *    (so a single off-direction outcome — a loop's final iteration —
 *    does not demote an otherwise strongly biased branch).
 */

#ifndef TCSIM_BPRED_BIAS_TABLE_H
#define TCSIM_BPRED_BIAS_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"

namespace tcsim::bpred
{

/** Configuration for the bias table. */
struct BiasTableParams
{
    std::uint32_t entries = 8192;
    /** Consecutive-outcome count that triggers promotion. */
    std::uint32_t promoteThreshold = 64;
    /** Saturation limit of the consecutive counter. */
    std::uint32_t counterMax = 1023;
};

/** Promotion advice for one branch site. */
struct PromotionAdvice
{
    bool promote = false;
    bool direction = false; // true = taken
};

/** The tagged branch bias table. */
class BranchBiasTable
{
  public:
    explicit BranchBiasTable(const BiasTableParams &params);

    /**
     * Record a retired conditional branch outcome and refresh the
     * site's promoted state.
     */
    void update(Addr pc, bool taken);

    /**
     * @return whether the fill unit should embed this branch as
     * promoted, and in which direction. Consulted when the branch is
     * added to the pending segment (at retire).
     */
    PromotionAdvice advice(Addr pc) const;

    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t demotions() const { return demotions_; }

    /** Attach a tracer for `promote` trace points (null disables). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    void
    dumpStats(StatDump &dump) const
    {
        dump.add("bias_table.promotions",
                 static_cast<double>(promotions_));
        dump.add("bias_table.demotions", static_cast<double>(demotions_));
    }

    /**
     * Serialize the training state (tags, counts, promoted bits) for
     * warm-start checkpoints. restore() rejects a blob whose geometry
     * or threshold parameters differ from this table's.
     */
    void saveState(std::ostream &os) const;
    bool restoreState(std::istream &is);

  private:
    /**
     * One table slot, packed to 8 bytes (8 per cache line vs. 2 for
     * the naive bool-padded layout) so the open-addressed
     * (direct-mapped, probe-free) lookup touches fewer lines. The tag
     * is stored narrow: with 4-byte instructions and >= 1K entries a
     * 32-bit tag covers any pc below 2^44, far beyond the synthetic
     * workloads' address space (tagOf() asserts the invariant), and
     * 0xFFFFFFFF is reserved as the empty sentinel. The
     * consecutive-outcome count and the three flags share one word:
     * count in bits [0,28), lastOutcome/promoted/promotedDir in bits
     * 28/29/30. Counter semantics are unchanged, and the TCBIASv1
     * checkpoint format still carries 64-bit tags on disk.
     */
    struct Entry
    {
        std::uint32_t tag = kNoTag;
        std::uint32_t meta = 0;

        static constexpr std::uint32_t kNoTag = ~std::uint32_t{0};
        static constexpr std::uint32_t kCountMask = (1u << 28) - 1;
        static constexpr std::uint32_t kLastOutcomeBit = 1u << 28;
        static constexpr std::uint32_t kPromotedBit = 1u << 29;
        static constexpr std::uint32_t kPromotedDirBit = 1u << 30;

        std::uint32_t count() const { return meta & kCountMask; }
        bool lastOutcome() const { return meta & kLastOutcomeBit; }
        bool promoted() const { return meta & kPromotedBit; }
        bool promotedDir() const { return meta & kPromotedDirBit; }

        void
        setCount(std::uint32_t count)
        {
            meta = (meta & ~kCountMask) | (count & kCountMask);
        }
        void
        setFlag(std::uint32_t bit, bool value)
        {
            meta = value ? meta | bit : meta & ~bit;
        }
    };
    static_assert(sizeof(Entry) == 8, "eight entries per cache line");

    std::uint32_t indexOf(Addr pc) const;
    std::uint32_t tagOf(Addr pc) const;

    BiasTableParams params_;
    std::uint32_t indexMask_; ///< entries - 1, hoisted
    std::uint32_t tagShift_;  ///< log2(entries): tag by shift, not divide
    std::vector<Entry> entries_;
    std::uint64_t promotions_ = 0;
    std::uint64_t demotions_ = 0;
    obs::Tracer *tracer_ = nullptr;
};

} // namespace tcsim::bpred

#endif // TCSIM_BPRED_BIAS_TABLE_H
