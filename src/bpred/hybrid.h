/**
 * @file
 * The aggressive single-branch hybrid predictor used with the
 * instruction-cache front end (paper section 3): a gshare component
 * with 15 bits of global history, a PAs component with 15 bits of
 * local history and a 4K-entry branch history table, and a selector
 * indexed like the gshare component. Roughly 32 KB of state.
 */

#ifndef TCSIM_BPRED_HYBRID_H
#define TCSIM_BPRED_HYBRID_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/saturating_counter.h"
#include "common/types.h"

namespace tcsim::bpred
{

/** Prediction context carried with each branch for a precise update. */
struct HybridCtx
{
    std::uint32_t gshareIdx = 0;
    std::uint32_t pasPatternIdx = 0;
    std::uint32_t selectorIdx = 0;
    bool gsharePred = false;
    bool pasPred = false;
    bool prediction = false;
};

/** Parameters for the hybrid predictor. */
struct HybridParams
{
    std::uint32_t historyBits = 15;  // gshare + selector index width
    std::uint32_t localHistoryBits = 15;
    std::uint32_t bhtEntries = 4096; // per-branch local histories
};

/** gshare + PAs with a gshare-indexed selector. */
class HybridPredictor
{
  public:
    explicit HybridPredictor(const HybridParams &params = HybridParams{});

    /** Predict the branch at @p pc given global history @p ghist. */
    HybridCtx predict(Addr pc, std::uint64_t ghist) const;

    /**
     * Train both components and the selector with the resolved
     * outcome. Local history is updated here (at retire).
     */
    void update(Addr pc, const HybridCtx &ctx, bool taken);

    /**
     * Serialize the component tables and local histories for
     * warm-start checkpoints. restoreState() rejects a blob from a
     * different geometry and returns false, leaving tables untouched.
     */
    void saveState(std::ostream &os) const;
    bool restoreState(std::istream &is);

  private:
    std::uint32_t gshareIndex(Addr pc, std::uint64_t ghist) const;
    std::uint32_t bhtIndex(Addr pc) const;

    HybridParams params_;
    std::uint32_t tableMask_;
    std::uint32_t localMask_; ///< mask(localHistoryBits), hoisted
    std::uint32_t bhtMask_;   ///< bhtEntries - 1, hoisted
    std::vector<SaturatingCounter> gshare_;
    std::vector<SaturatingCounter> pasPattern_;
    std::vector<SaturatingCounter> selector_; // toward max = use PAs
    std::vector<std::uint32_t> localHistory_;
};

} // namespace tcsim::bpred

#endif // TCSIM_BPRED_HYBRID_H
