#include "bpred/hybrid.h"

#include <istream>
#include <ostream>

#include "common/binio.h"
#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::bpred
{

namespace
{

constexpr char kHybridMagic[8] = {'T', 'C', 'H', 'Y', 'B', 'R', 'I', 'D'};

void
saveCounterTable(std::ostream &os,
                 const std::vector<SaturatingCounter> &counters)
{
    binio::writeScalar<std::uint64_t>(os, counters.size());
    for (const SaturatingCounter &counter : counters)
        binio::writeScalar<std::uint8_t>(
            os, static_cast<std::uint8_t>(counter.value()));
}

/** Read without mutating @p counters; values land in @p values. */
bool
readCounterTable(std::istream &is,
                 const std::vector<SaturatingCounter> &counters,
                 std::vector<std::uint8_t> &values)
{
    std::uint64_t count = 0;
    if (!binio::readScalar(is, count) || count != counters.size())
        return false;
    values.resize(counters.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (!binio::readScalar(is, values[i]) ||
            values[i] > counters[i].maxValue()) {
            return false;
        }
    }
    return true;
}

} // namespace

HybridPredictor::HybridPredictor(const HybridParams &params)
    : params_(params)
{
    TCSIM_ASSERT(params_.historyBits >= 1 && params_.historyBits <= 24);
    TCSIM_ASSERT(isPowerOf2(params_.bhtEntries));
    tableMask_ =
        static_cast<std::uint32_t>(mask(params_.historyBits));
    localMask_ =
        static_cast<std::uint32_t>(mask(params_.localHistoryBits));
    bhtMask_ = params_.bhtEntries - 1;
    gshare_.assign(tableMask_ + 1, SaturatingCounter(2, 1));
    pasPattern_.assign(static_cast<std::size_t>(localMask_) + 1,
                       SaturatingCounter(2, 1));
    selector_.assign(tableMask_ + 1, SaturatingCounter(2, 1));
    localHistory_.assign(params_.bhtEntries, 0);
}

std::uint32_t
HybridPredictor::gshareIndex(Addr pc, std::uint64_t ghist) const
{
    return static_cast<std::uint32_t>(
               (pc / isa::kInstBytes) ^ ghist) &
           tableMask_;
}

std::uint32_t
HybridPredictor::bhtIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc / isa::kInstBytes) & bhtMask_;
}

HybridCtx
HybridPredictor::predict(Addr pc, std::uint64_t ghist) const
{
    HybridCtx ctx;
    ctx.gshareIdx = gshareIndex(pc, ghist);
    ctx.selectorIdx = ctx.gshareIdx;
    const std::uint32_t local = localHistory_[bhtIndex(pc)];
    ctx.pasPatternIdx = local & localMask_;
    ctx.gsharePred = gshare_[ctx.gshareIdx].predictTaken();
    ctx.pasPred = pasPattern_[ctx.pasPatternIdx].predictTaken();
    ctx.prediction = selector_[ctx.selectorIdx].predictTaken()
                         ? ctx.pasPred
                         : ctx.gsharePred;
    return ctx;
}

void
HybridPredictor::update(Addr pc, const HybridCtx &ctx, bool taken)
{
    gshare_[ctx.gshareIdx].update(taken);
    pasPattern_[ctx.pasPatternIdx].update(taken);
    if (ctx.gsharePred != ctx.pasPred)
        selector_[ctx.selectorIdx].update(ctx.pasPred == taken);

    std::uint32_t &local = localHistory_[bhtIndex(pc)];
    local = ((local << 1) | static_cast<std::uint32_t>(taken)) &
            localMask_;
}

void
HybridPredictor::saveState(std::ostream &os) const
{
    binio::writeMagic(os, kHybridMagic);
    binio::writeScalar<std::uint32_t>(os, params_.historyBits);
    binio::writeScalar<std::uint32_t>(os, params_.localHistoryBits);
    binio::writeScalar<std::uint32_t>(os, params_.bhtEntries);
    saveCounterTable(os, gshare_);
    saveCounterTable(os, pasPattern_);
    saveCounterTable(os, selector_);
    for (std::uint32_t history : localHistory_)
        binio::writeScalar<std::uint32_t>(os, history);
}

bool
HybridPredictor::restoreState(std::istream &is)
{
    if (!binio::expectMagic(is, kHybridMagic))
        return false;
    std::uint32_t history_bits = 0, local_bits = 0, bht_entries = 0;
    if (!binio::readScalar(is, history_bits) ||
        !binio::readScalar(is, local_bits) ||
        !binio::readScalar(is, bht_entries) ||
        history_bits != params_.historyBits ||
        local_bits != params_.localHistoryBits ||
        bht_entries != params_.bhtEntries) {
        return false;
    }
    std::vector<std::uint8_t> gshare, pas, selector;
    if (!readCounterTable(is, gshare_, gshare) ||
        !readCounterTable(is, pasPattern_, pas) ||
        !readCounterTable(is, selector_, selector)) {
        return false;
    }
    std::vector<std::uint32_t> local(localHistory_.size());
    for (std::uint32_t &history : local) {
        if (!binio::readScalar(is, history) || (history & ~localMask_))
            return false;
    }
    for (std::size_t i = 0; i < gshare_.size(); ++i)
        gshare_[i].set(gshare[i]);
    for (std::size_t i = 0; i < pasPattern_.size(); ++i)
        pasPattern_[i].set(pas[i]);
    for (std::size_t i = 0; i < selector_.size(); ++i)
        selector_[i].set(selector[i]);
    localHistory_ = std::move(local);
    return true;
}

} // namespace tcsim::bpred
