#include "bpred/hybrid.h"

#include "common/bitutils.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace tcsim::bpred
{

HybridPredictor::HybridPredictor(const HybridParams &params)
    : params_(params)
{
    TCSIM_ASSERT(params_.historyBits >= 1 && params_.historyBits <= 24);
    TCSIM_ASSERT(isPowerOf2(params_.bhtEntries));
    tableMask_ =
        static_cast<std::uint32_t>(mask(params_.historyBits));
    localMask_ =
        static_cast<std::uint32_t>(mask(params_.localHistoryBits));
    bhtMask_ = params_.bhtEntries - 1;
    gshare_.assign(tableMask_ + 1, SaturatingCounter(2, 1));
    pasPattern_.assign(static_cast<std::size_t>(localMask_) + 1,
                       SaturatingCounter(2, 1));
    selector_.assign(tableMask_ + 1, SaturatingCounter(2, 1));
    localHistory_.assign(params_.bhtEntries, 0);
}

std::uint32_t
HybridPredictor::gshareIndex(Addr pc, std::uint64_t ghist) const
{
    return static_cast<std::uint32_t>(
               (pc / isa::kInstBytes) ^ ghist) &
           tableMask_;
}

std::uint32_t
HybridPredictor::bhtIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc / isa::kInstBytes) & bhtMask_;
}

HybridCtx
HybridPredictor::predict(Addr pc, std::uint64_t ghist) const
{
    HybridCtx ctx;
    ctx.gshareIdx = gshareIndex(pc, ghist);
    ctx.selectorIdx = ctx.gshareIdx;
    const std::uint32_t local = localHistory_[bhtIndex(pc)];
    ctx.pasPatternIdx = local & localMask_;
    ctx.gsharePred = gshare_[ctx.gshareIdx].predictTaken();
    ctx.pasPred = pasPattern_[ctx.pasPatternIdx].predictTaken();
    ctx.prediction = selector_[ctx.selectorIdx].predictTaken()
                         ? ctx.pasPred
                         : ctx.gsharePred;
    return ctx;
}

void
HybridPredictor::update(Addr pc, const HybridCtx &ctx, bool taken)
{
    gshare_[ctx.gshareIdx].update(taken);
    pasPattern_[ctx.pasPatternIdx].update(taken);
    if (ctx.gsharePred != ctx.pasPred)
        selector_[ctx.selectorIdx].update(ctx.pasPred == taken);

    std::uint32_t &local = localHistory_[bhtIndex(pc)];
    local = ((local << 1) | static_cast<std::uint32_t>(taken)) &
            localMask_;
}

} // namespace tcsim::bpred
