/**
 * @file
 * tcsim_run: the command-line driver for one-off simulations.
 *
 *   tcsim_run [options]
 *     --bench <name>        benchmark profile (default compress); or
 *                           'list' to enumerate
 *     --config <name>       icache | baseline | promotion | packing |
 *                           promo-pack (default baseline)
 *     --threshold <n>       promotion threshold (default 64)
 *     --packing <policy>    atomic | unregulated | cost | n2 | n4
 *     --insts <n>           instruction budget (default 1000000)
 *     --disambiguation <d>  conservative | speculative | perfect
 *     --path-assoc          enable trace-cache path associativity
 *     --no-partial-match    disable partial matching
 *     --no-inactive-issue   disable inactive issue
 *     --static-promotion    profile-driven static promotion
 *     --histogram           print the fetch-width histogram
 *     --stats               print the full statistics dump
 *
 *   Branch/fetch trace record & replay (tcsim-btrace-v1):
 *     --record-trace <file> run the control-flow pass through the
 *                           oracle, write every retired control
 *                           transfer to <file>, print btrace stats
 *     --replay-trace <file> drive the front end (icache, trace cache,
 *                           fill unit, predictors) directly from
 *                           <file>; prints a byte-identical stats
 *                           block to the recording run
 *
 *   Memory model (contended DRAM backstop; default is the flat
 *   50-cycle latency):
 *     --mem-contended       enable the bus/bank-contended DRAM model
 *                           (also issues dirty-victim writebacks from
 *                           L1d and L2)
 *     --mem-latency <n>     flat / unbanked core latency (default 50)
 *     --mem-bus-bytes <n>   data-bus bytes per cycle; 0 = infinite
 *                           (default 8)
 *     --mem-banks <n>       DRAM banks; 0 = unbanked (default 8)
 *     --mem-row-bytes <n>   open-row size in bytes (default 2048)
 *     --mem-row-hit <n>     open-row hit latency (default 20)
 *     --mem-row-miss <n>    row miss latency (default 50)
 *     --mem-mshrs <n>       outstanding-request limit; 0 = unlimited
 *                           (default 8)
 *
 *   Observability (src/obs):
 *     --trace <cats>        enable trace points: comma list of
 *                           fetch,tc,fill,promote,bpred,mem,core or
 *                           'all' (also accepts --trace=tc,promote)
 *     --trace-out <path>    trace destination (default stderr); the
 *                           format is inferred from the extension
 *                           (.jsonl -> JSONL, .json -> Chrome
 *                           trace_event, else text)
 *     --trace-format <f>    force text | jsonl | chrome
 *     --intervals <n>       sample interval metrics every n retired
 *                           instructions (tcsim-intervals-v1 JSON)
 *     --intervals-out <p>   intervals destination
 *                           (default tcsim-intervals.json)
 *     --profile             print per-phase host-time accounting and
 *                           sim MIPS after the run
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "common/fnv.h"
#include "obs/intervals.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/processor.h"
#include "workload/btrace.h"
#include "workload/characterize.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--bench <name>|list] [--config <name>] "
                 "[--threshold <n>] [--packing <policy>] [--insts <n>] "
                 "[--disambiguation <d>] [--path-assoc] "
                 "[--no-partial-match] [--no-inactive-issue] "
                 "[--static-promotion] [--histogram] [--stats] "
                 "[--record-trace <file>] [--replay-trace <file>] "
                 "[--mem-contended] [--mem-latency <n>] "
                 "[--mem-bus-bytes <n>] [--mem-banks <n>] "
                 "[--mem-row-bytes <n>] [--mem-row-hit <n>] "
                 "[--mem-row-miss <n>] [--mem-mshrs <n>] "
                 "[--trace <cats>] [--trace-out <path>] "
                 "[--trace-format text|jsonl|chrome] [--intervals <n>] "
                 "[--intervals-out <path>] [--profile]\n",
                 argv0);
    std::exit(2);
}

trace::PackingPolicy
parsePacking(const std::string &name, std::uint32_t &granule)
{
    if (name == "atomic")
        return trace::PackingPolicy::Atomic;
    if (name == "unregulated")
        return trace::PackingPolicy::Unregulated;
    if (name == "cost")
        return trace::PackingPolicy::CostRegulated;
    if (name == "n2") {
        granule = 2;
        return trace::PackingPolicy::NRegulated;
    }
    if (name == "n4") {
        granule = 4;
        return trace::PackingPolicy::NRegulated;
    }
    fatal("unknown packing policy '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = "compress";
    std::string config_name = "baseline";
    std::string packing = "";
    std::string disambiguation = "conservative";
    std::uint32_t threshold = 64;
    std::uint64_t insts = 1'000'000;
    std::uint64_t warmup = 0;
    bool path_assoc = false, no_partial = false, no_inactive = false;
    bool static_promotion = false, histogram = false, full_stats = false;
    std::string trace_cats, trace_out, trace_format;
    std::string intervals_out = "tcsim-intervals.json";
    std::uint64_t interval_insts = 0;
    bool profile = false;
    bool mem_contended = false;
    std::string record_trace, replay_trace;
    memory::DramParams dram;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        const auto value = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--bench")
            bench = value();
        else if (arg == "--config")
            config_name = value();
        else if (arg == "--threshold")
            threshold = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--packing")
            packing = value();
        else if (arg == "--insts")
            insts = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--warmup")
            warmup = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--disambiguation")
            disambiguation = value();
        else if (arg == "--path-assoc")
            path_assoc = true;
        else if (arg == "--no-partial-match")
            no_partial = true;
        else if (arg == "--no-inactive-issue")
            no_inactive = true;
        else if (arg == "--static-promotion")
            static_promotion = true;
        else if (arg == "--histogram")
            histogram = true;
        else if (arg == "--stats")
            full_stats = true;
        else if (arg == "--trace")
            trace_cats = value();
        else if (arg == "--trace-out")
            trace_out = value();
        else if (arg == "--trace-format")
            trace_format = value();
        else if (arg == "--intervals")
            interval_insts = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--intervals-out")
            intervals_out = value();
        else if (arg == "--profile")
            profile = true;
        else if (arg == "--record-trace")
            record_trace = value();
        else if (arg == "--replay-trace")
            replay_trace = value();
        else if (arg == "--mem-contended")
            mem_contended = true;
        else if (arg == "--mem-latency")
            dram.latency = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--mem-bus-bytes")
            dram.busBytesPerCycle = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--mem-banks")
            dram.banks = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--mem-row-bytes")
            dram.rowBytes = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--mem-row-hit")
            dram.rowHitLatency = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--mem-row-miss")
            dram.rowMissLatency = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--mem-mshrs")
            dram.maxOutstanding = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else
            usage(argv[0]);
    }

    if (bench == "list") {
        for (const auto &bench_profile : workload::benchmarkSuite())
            std::printf("%s\n", bench_profile.name.c_str());
        for (const auto &bench_profile : workload::serverSuite())
            std::printf("%s\n", bench_profile.name.c_str());
        return 0;
    }

    sim::ProcessorConfig config;
    if (config_name == "icache")
        config = sim::icacheConfig();
    else if (config_name == "baseline")
        config = sim::baselineConfig();
    else if (config_name == "promotion")
        config = sim::promotionConfig(threshold);
    else if (config_name == "packing")
        config = sim::packingConfig();
    else if (config_name == "promo-pack")
        config = sim::promotionPackingConfig(threshold);
    else
        fatal("unknown config '%s'", config_name.c_str());

    if (!packing.empty()) {
        std::uint32_t granule = 2;
        config.fillUnit.packing = parsePacking(packing, granule);
        config.fillUnit.packingGranule = granule;
    }
    if (disambiguation == "speculative")
        config.disambiguation = sim::Disambiguation::Speculative;
    else if (disambiguation == "perfect")
        config.disambiguation = sim::Disambiguation::Perfect;
    else if (disambiguation != "conservative")
        fatal("unknown disambiguation '%s'", disambiguation.c_str());
    config.traceCache.pathAssociativity = path_assoc;
    config.partialMatching = !no_partial;
    config.inactiveIssue = !no_inactive;
    if (mem_contended)
        config = sim::withContendedMemory(std::move(config), dram);

    const workload::BenchmarkProfile &bench_profile =
        workload::findProfile(bench);
    workload::Program program = workload::generateProgram(bench_profile);
    if (static_promotion) {
        config.fillUnit.staticPromotion = true;
        config.fillUnit.staticPromotions =
            workload::profileStronglyBiased(program, insts / 2);
    }

    sim::Processor processor(config, program);

    if (!record_trace.empty() && !replay_trace.empty())
        fatal("--record-trace and --replay-trace are mutually exclusive");
    if (!record_trace.empty() || !replay_trace.empty()) {
        sim::Processor::ControlFlowResult cf;
        if (!record_trace.empty()) {
            workload::BtraceWriter writer(
                record_trace, workload::kGeneratorVersion,
                workload::profileFingerprint(bench_profile),
                program.entry());
            cf = processor.recordTrace(writer, insts);
        } else {
            workload::BtraceReader reader;
            std::string error;
            if (!reader.open(replay_trace, &error)) {
                fatal("cannot replay '%s': %s", replay_trace.c_str(),
                      error.c_str());
            }
            if (reader.header().generatorVersion !=
                    workload::kGeneratorVersion ||
                reader.header().profileFingerprint !=
                    workload::profileFingerprint(bench_profile)) {
                fatal("btrace '%s' was recorded from a different "
                      "program than --bench %s (generator version or "
                      "profile fingerprint mismatch)",
                      replay_trace.c_str(), bench.c_str());
            }
            cf = processor.replayTrace(reader);
        }
        // One deterministic block, identical between the recording run
        // and its replay, so round trips can be checked with cmp.
        std::printf("btrace-stats %s %s\n", bench.c_str(),
                    config_name.c_str());
        std::printf("  instructions     %llu\n",
                    static_cast<unsigned long long>(cf.instructions));
        std::printf("  records          %llu\n",
                    static_cast<unsigned long long>(cf.records));
        std::printf("  cond branches    %llu  (mispredicts %llu)\n",
                    static_cast<unsigned long long>(cf.condBranches),
                    static_cast<unsigned long long>(cf.condMispredicts));
        std::printf("  returns          %llu  (mispredicts %llu)\n",
                    static_cast<unsigned long long>(cf.returns),
                    static_cast<unsigned long long>(cf.returnMispredicts));
        std::printf(
            "  indirect jumps   %llu  (mispredicts %llu)\n",
            static_cast<unsigned long long>(cf.indirectJumps),
            static_cast<unsigned long long>(cf.indirectMispredicts));
        std::printf("  traps            %llu\n",
                    static_cast<unsigned long long>(cf.traps));
        std::printf("  icache accesses  %llu  (misses %llu)\n",
                    static_cast<unsigned long long>(cf.icacheAccesses),
                    static_cast<unsigned long long>(cf.icacheMisses));
        std::printf("  tc lookups       %llu  (hits %llu)\n",
                    static_cast<unsigned long long>(cf.tcLookups),
                    static_cast<unsigned long long>(cf.tcHits));
        std::printf("  outcome hash     %s\n",
                    hashHex(cf.outcomeHash).c_str());
        std::printf("  final history    %s\n",
                    hashHex(cf.finalHistory).c_str());
        std::printf("  halted           %d\n", cf.halted ? 1 : 0);
        return 0;
    }

    obs::Tracer tracer;
    if (!trace_cats.empty()) {
        std::uint32_t mask = 0;
        std::string error;
        if (!obs::parseCategoryList(trace_cats, mask, &error))
            fatal("%s", error.c_str());
        tracer.setMask(mask);
        obs::SinkFormat format = obs::inferSinkFormat(trace_out);
        if (!trace_format.empty() &&
            !obs::sinkFormatFromName(trace_format, format)) {
            fatal("unknown trace format '%s'", trace_format.c_str());
        }
        auto sink = obs::makeSink(format, trace_out, &error);
        if (sink == nullptr)
            fatal("%s", error.c_str());
        tracer.addSink(std::move(sink));
        processor.attachTracer(&tracer);
    }

    std::unique_ptr<obs::SelfProfiler> profiler;
    if (profile) {
        profiler = std::make_unique<obs::SelfProfiler>();
        processor.attachProfiler(profiler.get());
    }

    if (warmup > 0) {
        processor.run(warmup);
        processor.resetStats();
    }

    // Intervals baseline after the warm-up so the series only covers
    // the measurement window.
    std::unique_ptr<obs::IntervalRecorder> intervals;
    if (interval_insts > 0) {
        intervals = std::make_unique<obs::IntervalRecorder>(interval_insts);
        processor.attachIntervalRecorder(intervals.get());
    }
    if (profiler != nullptr)
        profiler->beginRun();

    const sim::SimResult r = processor.run(warmup + insts);

    if (profiler != nullptr)
        profiler->endRun(processor.retiredInsts());

    std::printf("%-14s %-26s\n", r.benchmark.c_str(), r.config.c_str());
    std::printf("  instructions     %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  cycles           %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("  IPC              %.3f\n", r.ipc);
    std::printf("  eff fetch rate   %.2f\n", r.effectiveFetchRate);
    std::printf("  mispredict rate  %.2f%%  (faults %llu)\n",
                100 * r.condMispredictRate,
                static_cast<unsigned long long>(r.promotedFaults));
    std::printf("  resolution time  %.2f cycles\n", r.meanResolutionTime);
    std::printf("  preds 0-1/2/3    %.0f%% / %.0f%% / %.0f%%\n",
                100 * r.fetchesNeeding01, 100 * r.fetchesNeeding2,
                100 * r.fetchesNeeding3);
    if (r.tcLookups > 0) {
        std::printf("  trace cache hit  %.1f%%\n",
                    100.0 * r.tcHits / r.tcLookups);
    }
    std::printf("  cycles by class ");
    for (unsigned c = 0;
         c < static_cast<unsigned>(sim::CycleCategory::NumCategories);
         ++c) {
        std::printf(" %s=%.1f%%",
                    sim::cycleCategoryName(
                        static_cast<sim::CycleCategory>(c)),
                    100.0 * r.cycleCat[c] / r.cycles);
    }
    std::printf("\n");

    if (intervals != nullptr) {
        if (!intervals->writeJsonFile(intervals_out, r.benchmark, r.config))
            fatal("cannot write intervals to '%s'", intervals_out.c_str());
        std::printf("  intervals        %zu samples -> %s\n",
                    intervals->samples().size(), intervals_out.c_str());
    }
    if (!trace_cats.empty()) {
        tracer.flush();
        std::printf("  trace events     %llu -> %s\n",
                    static_cast<unsigned long long>(tracer.emitted()),
                    trace_out.empty() ? "stderr" : trace_out.c_str());
    }
    if (profiler != nullptr) {
        const double total = profiler->totalSeconds();
        std::printf("\nself-profile (host time):\n");
        for (unsigned p = 0; p < obs::kNumPhases; ++p) {
            const auto phase = static_cast<obs::Phase>(p);
            const double s = profiler->phaseSeconds(phase);
            std::printf("  %-10s %8.3f s  %5.1f%%\n", obs::phaseName(phase),
                        s, total > 0 ? 100.0 * s / total : 0.0);
        }
        std::printf("  %-10s %8.3f s\n", "total", total);
        std::printf("  sim speed  %8.3f MIPS\n",
                    profiler->simMips(processor.retiredInsts()));
    }

    if (histogram) {
        std::printf("\nfetch-width histogram (correct-path fetches):\n");
        std::uint64_t total = 0;
        std::uint64_t by_width[sim::Accounting::kMaxFetchWidth + 1] = {};
        for (unsigned reason = 0;
             reason < static_cast<unsigned>(sim::FetchReason::NumReasons);
             ++reason) {
            for (unsigned w = 0; w <= sim::Accounting::kMaxFetchWidth;
                 ++w) {
                by_width[w] += r.fetchHist[reason][w];
                total += r.fetchHist[reason][w];
            }
        }
        for (unsigned w = 1; w <= sim::Accounting::kMaxFetchWidth; ++w) {
            const double frac =
                total ? static_cast<double>(by_width[w]) / total : 0.0;
            std::printf("  %4u %-50.*s %.3f\n", w,
                        static_cast<int>(frac * 200),
                        "##################################################",
                        frac);
        }
    }
    if (full_stats) {
        std::ostringstream os;
        sim::printStatsWithDerivedRatios(r.stats, os);
        std::printf("\n%s", os.str().c_str());
    }
    return 0;
}
