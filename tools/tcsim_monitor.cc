/**
 * @file
 * tcsim_monitor: live telemetry for a running sweep farm.
 *
 * Polls a fragments directory — worker heartbeats plus landed result
 * fragments — and aggregates them into one farm view: per-worker
 * liveness and throughput, an EWMA-smoothed completion rate with an
 * ETA, and straggler flagging for in-flight units running longer than
 * k× the median completed-unit wall time.
 *
 *   tcsim_monitor --fragments-dir <dir> [matrix options]
 *       Refresh a terminal dashboard every --interval seconds until
 *       interrupted (or, with --until-complete, until every unit of
 *       the matrix has a fragment).
 *
 * The matrix options (--benchmarks/--configs/--insts/--warmup/
 * --sampled-*) must match the workers' so the monitor knows the
 * denominator and which fragments belong to this sweep.
 *
 * Outputs (combinable):
 *   --status-out <file>  rewrite a tcsim-farm-status-v1 snapshot
 *                        atomically on every poll
 *   --serve [addr:]port  embedded HTTP endpoint serving the latest
 *                        snapshot; every request must present the
 *                        bearer token from TCSIM_STATUS_TOKEN
 *                        (refuses to start when unset — an
 *                        unauthenticated endpoint is not a mode).
 *                        Port 0 binds an ephemeral port, printed as
 *                        "serving on <addr>:<port>" for scripts.
 *   --once               single poll: dashboard to stdout, exit 0
 *                        when the matrix is complete, 7 otherwise
 *
 * Aggregation knobs: --interval (default 2s), --stale-after (15s),
 * --straggler-k (4.0), --min-median-samples (3).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/sweep.h"
#include "obs/farm.h"
#include "obs/status_server.h"

namespace
{

using namespace tcsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --fragments-dir d [--benchmarks a,b] "
                 "[--configs x,y]\n"
                 "  [--insts n] [--warmup n] "
                 "[--sampled-interval n --sampled-max-k k] [--replay]\n"
                 "  [--interval sec] [--stale-after sec] "
                 "[--straggler-k f] [--min-median-samples n]\n"
                 "  [--status-out f] [--serve [addr:]port] [--once] "
                 "[--until-complete]\n",
                 argv0);
    std::exit(1);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

double
monoSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string fragments_dir, status_out, serve_spec;
    double interval_seconds = 2.0;
    bool once = false, until_complete = false;
    obs::FarmParams params;
    bench::SweepOptions options;
    std::vector<std::string> config_names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--fragments-dir") {
            fragments_dir = next();
        } else if (arg == "--benchmarks") {
            options.benchmarks = splitCommas(next());
        } else if (arg == "--configs") {
            config_names = splitCommas(next());
        } else if (arg == "--insts") {
            options.insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            options.warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sampled-interval") {
            options.sampled.enabled = true;
            options.sampled.interval =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sampled-max-k") {
            options.sampled.enabled = true;
            options.sampled.maxK = static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--replay") {
            options.replay = true;
        } else if (arg == "--interval") {
            interval_seconds = std::strtod(next(), nullptr);
        } else if (arg == "--stale-after") {
            params.staleAfterSeconds = std::strtod(next(), nullptr);
        } else if (arg == "--straggler-k") {
            params.stragglerK = std::strtod(next(), nullptr);
        } else if (arg == "--min-median-samples") {
            params.minCompletedForMedian = static_cast<std::size_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--status-out") {
            status_out = next();
        } else if (arg == "--serve") {
            serve_spec = next();
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--until-complete") {
            until_complete = true;
        } else {
            usage(argv[0]);
        }
    }
    if (fragments_dir.empty()) {
        std::fprintf(stderr, "--fragments-dir is required\n");
        return 1;
    }
    if (interval_seconds <= 0.0) {
        std::fprintf(stderr, "--interval must be positive\n");
        return 1;
    }
    if (options.sampled.enabled &&
        (options.sampled.interval == 0 || options.sampled.maxK == 0)) {
        std::fprintf(stderr, "--sampled-interval and --sampled-max-k "
                             "must be given together\n");
        return 1;
    }
    for (const std::string &name : config_names) {
        std::optional<sim::ProcessorConfig> config =
            bench::configByName(name);
        if (!config) {
            std::fprintf(stderr, "unknown config '%s'\n", name.c_str());
            return 1;
        }
        options.configs.push_back(std::move(*config));
    }

    obs::StatusServer server;
    if (!serve_spec.empty()) {
        const char *token_env = std::getenv("TCSIM_STATUS_TOKEN");
        const std::string token = token_env ? token_env : "";
        std::string addr = "127.0.0.1";
        std::string port_text = serve_spec;
        const std::size_t colon = serve_spec.rfind(':');
        if (colon != std::string::npos) {
            addr = serve_spec.substr(0, colon);
            port_text = serve_spec.substr(colon + 1);
        }
        const unsigned long port = std::strtoul(port_text.c_str(),
                                                nullptr, 10);
        if (port > 65535) {
            std::fprintf(stderr, "bad --serve port '%s'\n",
                         port_text.c_str());
            return 1;
        }
        if (!server.start(addr, static_cast<std::uint16_t>(port),
                          token)) {
            return 1;
        }
        // Scripts scrape this line to learn the resolved port.
        std::printf("serving on %s:%u\n", addr.c_str(),
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
    }

    obs::EwmaState ewma;
    bool complete = false;
    while (true) {
        const bench::FarmScan scan =
            bench::scanFarm(options, fragments_dir);
        std::vector<double> walls;
        walls.reserve(scan.completed.size());
        for (const bench::CompletedUnit &unit : scan.completed)
            walls.push_back(unit.wallSeconds);
        const obs::FarmStatus farm = obs::aggregateFarm(
            scan.workers, walls, scan.unitsTotal,
            scan.completed.size(), params, once ? nullptr : &ewma,
            monoSeconds());
        complete = scan.unitsTotal > 0 &&
                   scan.completed.size() >= scan.unitsTotal;

        const std::string dashboard = obs::renderFarmDashboard(farm);
        std::fputs(dashboard.c_str(), stdout);
        std::fputs("\n", stdout);
        std::fflush(stdout);

        std::string snapshot;
        if (!status_out.empty() || server.running()) {
            snapshot = obs::renderFarmStatus(
                farm, static_cast<std::int64_t>(std::time(nullptr)));
        }
        if (!status_out.empty() &&
            !writeFileAtomic(status_out, snapshot)) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         status_out.c_str());
        }
        if (server.running())
            server.publish(snapshot);

        if (once)
            return complete ? 0 : 7;
        if (until_complete && complete)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval_seconds));
    }
}
