/**
 * @file
 * tcsim_simpoints: standalone BBV profiling and simpoint selection.
 *
 * Runs the functional basic-block-vector profile for one benchmark,
 * clusters the intervals with the same deterministic seeded k-means
 * the sweep engine uses, and writes the resulting
 * tcsim-simpoints-v1 plan (and optionally the raw tcsim-bbv-v1
 * profile). Both documents are byte-identical to what a sampled
 * sweep produces internally, and the BBV profile flows through the
 * same content-addressed artifact cache entry, so a later sampled
 * sweep with --cache-dir pointing at the same directory skips the
 * profiling pass entirely.
 *
 *   tcsim_simpoints --bench compress --interval 10000
 *       [--insts n] [--max-k k] [--out plan.json] [--bbv-out bbv.json]
 *       [--cache-dir d]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "bench/artifact_cache.h"
#include "bench/harness.h"
#include "bench/sweep.h"
#include "common/fnv.h"
#include "obs/bbv.h"
#include "sample/simpoints.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --bench <name> --interval <n> [--insts n]\n"
                 "  [--max-k k] [--out f] [--bbv-out f] [--cache-dir d]\n",
                 argv0);
    std::exit(1);
}

bool
writeFileOrStdout(const std::string &path, const std::string &bytes)
{
    if (path == "-") {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench_name, out_path = "-", bbv_out;
    std::uint64_t insts = 0, interval = 0;
    std::uint32_t max_k = 8;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--bench") {
            bench_name = next();
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--interval") {
            interval = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--max-k") {
            max_k = static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--bbv-out") {
            bbv_out = next();
        } else if (arg == "--cache-dir") {
            setenv("TCSIM_CACHE_DIR", next(), 1);
        } else {
            usage(argv[0]);
        }
    }
    if (bench_name.empty() || interval == 0 || max_k == 0)
        usage(argv[0]);

    const workload::BenchmarkProfile &profile =
        workload::findProfile(bench_name);
    if (insts == 0)
        insts = profile.defaultMaxInsts;
    if (insts % interval != 0) {
        std::fprintf(stderr,
                     "--interval %llu must divide --insts %llu\n",
                     static_cast<unsigned long long>(interval),
                     static_cast<unsigned long long>(insts));
        return 1;
    }

    const workload::Program &program = bench::programFor(bench_name);
    const std::string bbv_json =
        bench::ArtifactCache::process().getOrCreate(
            "bbv", bench::bbvArtifactKey(bench_name, insts, interval),
            [&] {
                return sample::profileBbv(program, bench_name, insts,
                                          interval)
                    .toJson();
            });
    const std::optional<obs::BbvDocument> bbv =
        obs::BbvDocument::fromJson(bbv_json);
    if (!bbv) {
        std::fprintf(stderr, "internal error: BBV profile malformed\n");
        return 2;
    }
    if (!bbv_out.empty() && !writeFileOrStdout(bbv_out, bbv_json)) {
        std::fprintf(stderr, "cannot write %s\n", bbv_out.c_str());
        return 3;
    }

    const sample::SimpointPlan plan = sample::selectSimpoints(
        *bbv, hashHex(workload::profileFingerprint(profile)), max_k);
    if (!writeFileOrStdout(out_path, plan.toJson())) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 3;
    }

    std::fprintf(stderr,
                 "%s: %llu intervals of %llu insts -> k=%u "
                 "representative regions\n",
                 bench_name.c_str(),
                 static_cast<unsigned long long>(bbv->intervals.size()),
                 static_cast<unsigned long long>(interval),
                 plan.k);
    return 0;
}
