#!/usr/bin/env python3
"""Validate tcsim observability outputs (stdlib only; used by CI).

Checks any combination of:
  --trace-jsonl PATH   one JSON object per line with keys
                       t (int), cat (known category), ev, detail
  --chrome PATH        Chrome trace_event JSON: {"traceEvents": [...]}
  --intervals PATH     tcsim-intervals-v1 document
  --fragment PATH      tcsim-bench-fragment-v1 sweep work-unit fragment
  --results PATH       tcsim-bench-results-v1 merged sweep document
  --bbv PATH           tcsim-bbv-v1 basic-block-vector profile
  --simpoints PATH     tcsim-simpoints-v1 representative-region plan
  --error-report PATH  tcsim-sampling-error-v1 sampled-vs-full report
  --heartbeat PATH     tcsim-heartbeat-v1 sweep-worker heartbeat
  --farm-status PATH   tcsim-farm-status-v1 monitor snapshot
  --regression PATH    tcsim-regression-v1 perf-gate verdict
  --btrace PATH        tcsim-btrace-v1 binary branch/fetch trace

Exits 0 when every named file validates, 1 otherwise.
"""

import argparse
import json
import sys

CATEGORIES = {"fetch", "tc", "fill", "promote", "bpred", "mem", "core"}

DELTA_KEYS = {
    "cycles", "insts", "useful_fetches", "fetched_insts", "cond_branches",
    "cond_mispredicts", "promoted_faults", "promotions", "demotions",
    "promoted_retired", "tc_lookups", "tc_hits", "segments_built",
    "icache_misses", "predictions_used", "mem_order_violations",
    "l2_misses", "writebacks", "dram_bus_wait_cycles",
    "dram_mshr_stall_cycles",
}

RATE_KEYS = {
    "ipc", "fetch_rate", "tc_hit_rate", "mispredict_rate",
    "preds_per_fetch", "faults_per_kinst", "promotions_per_kinst",
    "demotions_per_kinst", "l2_mpki", "writebacks_per_kinst",
    "bus_wait_frac",
}


def fail(path, message):
    print(f"validate_obs: {path}: {message}", file=sys.stderr)
    return False


def validate_trace_jsonl(path):
    count = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                return fail(path, f"line {lineno}: invalid JSON: {err}")
            if set(record) != {"t", "cat", "ev", "detail"}:
                return fail(path, f"line {lineno}: keys {sorted(record)}")
            if not isinstance(record["t"], int) or record["t"] < 0:
                return fail(path, f"line {lineno}: bad cycle {record['t']}")
            if record["cat"] not in CATEGORIES:
                return fail(
                    path, f"line {lineno}: unknown category {record['cat']}")
            if not isinstance(record["ev"], str) or not record["ev"]:
                return fail(path, f"line {lineno}: bad event name")
            if not isinstance(record["detail"], str):
                return fail(path, f"line {lineno}: bad detail")
            count += 1
    if count == 0:
        return fail(path, "no trace records")
    print(f"validate_obs: {path}: OK ({count} records)")
    return True


def validate_chrome(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "missing or empty traceEvents")
    for i, event in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in event:
                return fail(path, f"event {i}: missing {key}")
        if event["cat"] not in CATEGORIES:
            return fail(path, f"event {i}: unknown category {event['cat']}")
    print(f"validate_obs: {path}: OK ({len(events)} events)")
    return True


def validate_intervals(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-intervals-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    for key in ("benchmark", "config", "interval_insts", "intervals"):
        if key not in doc:
            return fail(path, f"missing {key}")
    interval_insts = doc["interval_insts"]
    if not isinstance(interval_insts, int) or interval_insts <= 0:
        return fail(path, f"bad interval_insts {interval_insts!r}")
    intervals = doc["intervals"]
    if not isinstance(intervals, list) or not intervals:
        return fail(path, "missing or empty intervals")
    prev_insts = prev_cycle = -1
    for i, sample in enumerate(intervals):
        if set(sample) != {"end_cycle", "end_insts", "delta", "rates"}:
            return fail(path, f"interval {i}: keys {sorted(sample)}")
        if set(sample["delta"]) != DELTA_KEYS:
            missing = DELTA_KEYS.symmetric_difference(sample["delta"])
            return fail(path, f"interval {i}: delta keys differ: {missing}")
        if set(sample["rates"]) != RATE_KEYS:
            missing = RATE_KEYS.symmetric_difference(sample["rates"])
            return fail(path, f"interval {i}: rate keys differ: {missing}")
        if sample["end_insts"] <= prev_insts:
            return fail(path, f"interval {i}: end_insts not increasing")
        if sample["end_cycle"] <= prev_cycle:
            return fail(path, f"interval {i}: end_cycle not increasing")
        delta = sample["delta"]
        for key, value in delta.items():
            if not isinstance(value, int) or value < 0:
                return fail(path, f"interval {i}: delta.{key}={value!r}")
        if delta["tc_hits"] > delta["tc_lookups"]:
            return fail(path, f"interval {i}: tc_hits > tc_lookups")
        if delta["cond_mispredicts"] > delta["cond_branches"]:
            return fail(path, f"interval {i}: mispredicts > branches")
        # Every sample except the last must land within one retire
        # batch of a boundary; a tolerance of interval_insts is safe
        # for any plausible retire width.
        if i + 1 < len(intervals):
            overshoot = sample["end_insts"] % interval_insts
            if overshoot > interval_insts // 2 and interval_insts > 64:
                return fail(
                    path,
                    f"interval {i}: end_insts {sample['end_insts']} far "
                    f"from a boundary of {interval_insts}")
        prev_insts = sample["end_insts"]
        prev_cycle = sample["end_cycle"]
    print(f"validate_obs: {path}: OK ({len(intervals)} intervals)")
    return True


# Canonical sweep result record: key -> "int" | "float" | "str".
# Array-valued members are checked structurally below.
RESULT_SCALARS = {
    "benchmark": "str", "config": "str", "insts": "int", "warmup": "int",
    "hash": "str", "instructions": "int", "cycles": "int", "ipc": "float",
    "useful_fetches": "int", "fetched_insts": "int",
    "effective_fetch_rate": "float", "cond_branches": "int",
    "cond_mispredicts": "int", "promoted_faults": "int",
    "indirect_mispredicts": "int", "cond_mispredict_rate": "float",
    "resolution_time_sum": "int", "resolution_time_count": "int",
    "mean_resolution_time": "float", "fetches_needing_01": "float",
    "fetches_needing_2": "float", "fetches_needing_3": "float",
    "tc_lookups": "int", "tc_hits": "int", "tc_hit_ratio": "float",
    "icache_misses": "int", "promoted_retired": "int",
}

RESULT_ARRAYS = {"fetches_needing_preds", "cycle_cat", "fetch_hist"}

# Present only on sampled-execution records (both or neither).
SAMPLED_SCALARS = {"sampled_interval": "int", "sampled_max_k": "int"}


def check_result_record(path, where, record):
    if not isinstance(record, dict):
        return fail(path, f"{where}: not an object")
    sampled = "sampled_interval" in record
    expected = set(RESULT_SCALARS) | RESULT_ARRAYS
    if sampled:
        expected |= set(SAMPLED_SCALARS)
    if set(record) != expected:
        diff = expected.symmetric_difference(record)
        return fail(path, f"{where}: keys differ: {sorted(diff)}")
    if sampled:
        for key in SAMPLED_SCALARS:
            if not isinstance(record[key], int) or record[key] <= 0:
                return fail(path, f"{where}: {key}={record[key]!r}")
    for key, kind in RESULT_SCALARS.items():
        value = record[key]
        if kind == "int" and not isinstance(value, int):
            return fail(path, f"{where}: {key} not an integer")
        if kind == "float" and not isinstance(value, (int, float)):
            return fail(path, f"{where}: {key} not a number")
        if kind == "str" and not isinstance(value, str):
            return fail(path, f"{where}: {key} not a string")
    if len(record["hash"]) != 16:
        return fail(path, f"{where}: hash not 16 hex chars")
    if not isinstance(record["fetches_needing_preds"], list) or \
            len(record["fetches_needing_preds"]) != 4:
        return fail(path, f"{where}: fetches_needing_preds shape")
    if not isinstance(record["cycle_cat"], list):
        return fail(path, f"{where}: cycle_cat not an array")
    hist = record["fetch_hist"]
    if not isinstance(hist, list) or \
            any(not isinstance(row, list) for row in hist):
        return fail(path, f"{where}: fetch_hist not an array of arrays")
    if record["tc_hits"] > record["tc_lookups"]:
        return fail(path, f"{where}: tc_hits > tc_lookups")
    if record["cond_mispredicts"] > record["cond_branches"]:
        return fail(path, f"{where}: mispredicts > branches")
    if sampled:
        # Weighted region windows reconstruct the budget only up to
        # per-region retire-batch overshoot times cluster weights.
        slack = record["insts"] // 100 + 64
        if abs(record["instructions"] - record["insts"]) > slack:
            return fail(
                path,
                f"{where}: weighted instructions {record['instructions']} "
                f"not within {slack} of budget {record['insts']}")
    elif record["instructions"] < record["insts"]:
        return fail(path, f"{where}: ran fewer insts than budgeted")
    return True


def validate_fragment(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-bench-fragment-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    unit = doc.get("unit")
    if not isinstance(unit, dict):
        return fail(path, "missing unit object")
    for key in ("index", "id", "hash", "benchmark", "config", "insts",
                "warmup"):
        if key not in unit:
            return fail(path, f"unit missing {key}")
    expected_id = f"{unit['benchmark']}@{unit['config']}@{unit['insts']}"
    if "sampled_interval" in unit:
        expected_id += (f"@sampled-i{unit['sampled_interval']}"
                        f"-k{unit['sampled_max_k']}-w{unit['warmup']}")
    if unit["id"] != expected_id:
        return fail(path, f"unit id {unit['id']!r} != {expected_id!r}")
    if not check_result_record(path, "result", doc.get("result")):
        return False
    if doc["result"]["hash"] != unit["hash"]:
        return fail(path, "result hash != unit hash")
    timing = doc.get("timing")
    if not isinstance(timing, dict) or \
            set(timing) != {"wall_seconds", "cache_hits", "cache_misses"}:
        return fail(path, "missing or malformed timing section")
    print(f"validate_obs: {path}: OK (fragment {unit['id']})")
    return True


def validate_results(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-bench-results-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    matrix_hash = doc.get("matrix_hash")
    if not isinstance(matrix_hash, str) or len(matrix_hash) != 16:
        return fail(path, f"bad matrix_hash {matrix_hash!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return fail(path, "missing or empty results")
    if doc.get("units") != len(results):
        return fail(path, f"units {doc.get('units')!r} != {len(results)}")
    seen = set()
    for i, record in enumerate(results):
        if not check_result_record(path, f"result {i}", record):
            return False
        if record["hash"] in seen:
            return fail(path, f"result {i}: duplicate unit {record['hash']}")
        seen.add(record["hash"])
    print(f"validate_obs: {path}: OK ({len(results)} results)")
    return True


def validate_bbv(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-bbv-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    for key in ("benchmark", "interval_insts", "total_insts", "intervals"):
        if key not in doc:
            return fail(path, f"missing {key}")
    interval_insts = doc["interval_insts"]
    total_insts = doc["total_insts"]
    if not isinstance(interval_insts, int) or interval_insts <= 0:
        return fail(path, f"bad interval_insts {interval_insts!r}")
    if not isinstance(total_insts, int) or \
            total_insts % interval_insts != 0:
        return fail(path, f"total_insts {total_insts!r} not a multiple "
                          f"of interval_insts {interval_insts}")
    intervals = doc["intervals"]
    if not isinstance(intervals, list) or \
            len(intervals) != total_insts // interval_insts:
        return fail(path, "interval count != total_insts/interval_insts")
    for i, interval in enumerate(intervals):
        if set(interval) != {"end_insts", "blocks"}:
            return fail(path, f"interval {i}: keys {sorted(interval)}")
        if interval["end_insts"] != (i + 1) * interval_insts:
            return fail(path, f"interval {i}: end_insts "
                              f"{interval['end_insts']}")
        blocks = interval["blocks"]
        if not isinstance(blocks, list) or not blocks:
            return fail(path, f"interval {i}: missing blocks")
        total = 0
        for pair in blocks:
            if not isinstance(pair, list) or len(pair) != 2 or \
                    not all(isinstance(v, int) and v >= 0 for v in pair):
                return fail(path, f"interval {i}: bad block entry {pair!r}")
            total += pair[1]
        if total != interval_insts:
            return fail(path, f"interval {i}: block counts sum to "
                              f"{total}, want {interval_insts}")
    print(f"validate_obs: {path}: OK ({len(intervals)} intervals)")
    return True


def validate_simpoints(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-simpoints-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    for key in ("benchmark", "program_fingerprint", "algo_version",
                "interval_insts", "total_insts", "num_intervals", "k",
                "simpoints"):
        if key not in doc:
            return fail(path, f"missing {key}")
    points = doc["simpoints"]
    if not isinstance(points, list) or len(points) != doc["k"]:
        return fail(path, f"simpoints count != k {doc['k']!r}")
    weight = 0
    prev_index = -1
    for i, point in enumerate(points):
        expected = {"index", "start_insts", "cluster", "weight_num",
                    "weight_den"}
        if set(point) != expected:
            return fail(path, f"simpoint {i}: keys {sorted(point)}")
        if point["index"] <= prev_index:
            return fail(path, f"simpoint {i}: index not increasing")
        prev_index = point["index"]
        if point["index"] >= doc["num_intervals"]:
            return fail(path, f"simpoint {i}: index out of range")
        if point["start_insts"] != point["index"] * doc["interval_insts"]:
            return fail(path, f"simpoint {i}: start_insts mismatch")
        if point["cluster"] != i:
            return fail(path, f"simpoint {i}: cluster not renumbered")
        if point["weight_den"] != doc["num_intervals"]:
            return fail(path, f"simpoint {i}: weight_den mismatch")
        weight += point["weight_num"]
    if weight != doc["num_intervals"]:
        return fail(path, f"weights sum to {weight}, want "
                          f"{doc['num_intervals']}")
    print(f"validate_obs: {path}: OK (k={doc['k']})")
    return True


ERROR_STAT_KEYS = {"ipc", "fetch_rate", "mispredict_rate"}


def validate_error_report(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-sampling-error-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    for key in ("matrix_hash", "tolerance", "mispredict_tolerance",
                "units", "aggregate", "all_within_tolerance"):
        if key not in doc:
            return fail(path, f"missing {key}")
    units = doc["units"]
    if not isinstance(units, list) or not units:
        return fail(path, "missing or empty units")
    for i, unit in enumerate(units):
        expected = {"id", "sampled", "full", "rel_err",
                    "abs_err_mispredict_rate", "speedup",
                    "within_tolerance"}
        if set(unit) != expected:
            return fail(path, f"unit {i}: keys {sorted(unit)}")
        for side in ("sampled", "full"):
            if set(unit[side]) != ERROR_STAT_KEYS | {"wall_seconds"}:
                return fail(path, f"unit {i}: {side} keys "
                                  f"{sorted(unit[side])}")
        if set(unit["rel_err"]) != ERROR_STAT_KEYS:
            return fail(path, f"unit {i}: rel_err keys "
                              f"{sorted(unit['rel_err'])}")
        for key, value in unit["rel_err"].items():
            if not isinstance(value, (int, float)) or value < 0:
                return fail(path, f"unit {i}: rel_err.{key}={value!r}")
        abs_err = unit["abs_err_mispredict_rate"]
        if not isinstance(abs_err, (int, float)) or abs_err < 0:
            return fail(path, f"unit {i}: abs_err_mispredict_rate="
                              f"{abs_err!r}")
        gated = max(unit["rel_err"]["ipc"], unit["rel_err"]["fetch_rate"])
        within = (gated <= doc["tolerance"]
                  and abs_err <= doc["mispredict_tolerance"])
        if unit["within_tolerance"] != within:
            return fail(path, f"unit {i}: within_tolerance inconsistent")
    if doc["all_within_tolerance"] != all(
            u["within_tolerance"] for u in units):
        return fail(path, "all_within_tolerance inconsistent")
    print(f"validate_obs: {path}: OK ({len(units)} units, "
          f"all_within={doc['all_within_tolerance']})")
    return True


HEARTBEAT_KEYS = {
    "schema": str, "worker": str, "pid": int, "seq": int, "phase": str,
    "unit_id": str, "unit_hash": str, "start_mono": (int, float),
    "now_mono": (int, float), "unit_start_mono": (int, float),
    "units_done": int, "units_total": int, "retired_insts": int,
    "cache_hits": int, "cache_misses": int,
}


def validate_heartbeat(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-heartbeat-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if set(doc) != set(HEARTBEAT_KEYS):
        diff = set(HEARTBEAT_KEYS).symmetric_difference(doc)
        return fail(path, f"keys differ: {sorted(diff)}")
    for key, kind in HEARTBEAT_KEYS.items():
        if not isinstance(doc[key], kind):
            return fail(path, f"{key}={doc[key]!r} not {kind}")
    if doc["phase"] not in ("idle", "run", "done"):
        return fail(path, f"bad phase {doc['phase']!r}")
    if doc["phase"] == "run" and not doc["unit_id"]:
        return fail(path, "phase run with empty unit_id")
    if doc["phase"] != "run" and doc["unit_id"]:
        return fail(path, f"phase {doc['phase']} with a unit_id")
    if doc["units_done"] > doc["units_total"]:
        return fail(path, "units_done > units_total")
    if doc["now_mono"] < doc["start_mono"]:
        return fail(path, "now_mono before start_mono")
    print(f"validate_obs: {path}: OK (worker {doc['worker']}, "
          f"phase {doc['phase']})")
    return True


FARM_WORKER_KEYS = {
    "worker": str, "pid": int, "phase": str, "unit_id": str,
    "units_done": int, "units_total": int, "retired_insts": int,
    "cache_hits": int, "cache_misses": int, "sim_mips": (int, float),
    "age_seconds": (int, float), "current_unit_seconds": (int, float),
    "stale": bool, "straggler": bool,
}


def validate_farm_status(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-farm-status-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    for key in ("generated_unix", "units_total", "units_done",
                "units_running", "workers_stale",
                "throughput_units_per_sec", "eta_seconds",
                "median_unit_seconds", "straggler_threshold_seconds",
                "stragglers", "workers"):
        if key not in doc:
            return fail(path, f"missing {key}")
    if doc["units_done"] > doc["units_total"]:
        return fail(path, "units_done > units_total")
    if not isinstance(doc["stragglers"], list):
        return fail(path, "stragglers not an array")
    workers = doc["workers"]
    if not isinstance(workers, list):
        return fail(path, "workers not an array")
    stale = 0
    for i, worker in enumerate(workers):
        if set(worker) != set(FARM_WORKER_KEYS):
            diff = set(FARM_WORKER_KEYS).symmetric_difference(worker)
            return fail(path, f"worker {i}: keys differ: {sorted(diff)}")
        for key, kind in FARM_WORKER_KEYS.items():
            if not isinstance(worker[key], kind):
                return fail(path, f"worker {i}: {key}={worker[key]!r}")
        stale += worker["stale"]
    if stale != doc["workers_stale"]:
        return fail(path, f"workers_stale {doc['workers_stale']} != "
                          f"{stale} stale workers")
    print(f"validate_obs: {path}: OK ({doc['units_done']}/"
          f"{doc['units_total']} units, {len(workers)} workers)")
    return True


SCHED_WORKER_KEYS = {"worker": str, "active_leases": int,
                     "completed": int}


def validate_sched_status(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-sched-status-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    matrix_hash = doc.get("matrix_hash")
    if not isinstance(matrix_hash, str) or len(matrix_hash) != 16:
        return fail(path, f"bad matrix_hash {matrix_hash!r}")
    for key in ("units", "completed", "in_flight", "pending",
                "leases_issued", "leases_expired", "redispatches",
                "duplicates"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            return fail(path, f"{key}={doc.get(key)!r} not a count")
    for key in ("median_unit_seconds", "longest_in_flight_seconds"):
        if not isinstance(doc.get(key), (int, float)):
            return fail(path, f"{key}={doc.get(key)!r} not a number")
    if doc["completed"] + doc["in_flight"] + doc["pending"] != doc["units"]:
        return fail(path, "completed + in_flight + pending != units")
    if doc["leases_issued"] < doc["redispatches"]:
        return fail(path, "more redispatches than leases")
    workers = doc.get("workers")
    if not isinstance(workers, list):
        return fail(path, "workers not an array")
    for i, worker in enumerate(workers):
        if set(worker) != set(SCHED_WORKER_KEYS):
            diff = set(SCHED_WORKER_KEYS).symmetric_difference(worker)
            return fail(path, f"worker {i}: keys differ: {sorted(diff)}")
        for key, kind in SCHED_WORKER_KEYS.items():
            if not isinstance(worker[key], kind):
                return fail(path, f"worker {i}: {key}={worker[key]!r}")
    done = sum(w["completed"] for w in workers)
    if done > doc["completed"]:
        return fail(path, f"workers completed {done} > {doc['completed']}")
    print(f"validate_obs: {path}: OK ({doc['completed']}/{doc['units']} "
          f"units, {doc['redispatches']} redispatches, "
          f"{len(workers)} workers)")
    return True


def validate_store_manifest(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-store-manifest-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    for key in ("store", "prefix"):
        if not isinstance(doc.get(key), str):
            return fail(path, f"{key}={doc.get(key)!r} not a string")
    objects = doc.get("objects")
    if not isinstance(objects, list):
        return fail(path, "objects not an array")
    names = []
    for i, obj in enumerate(objects):
        if set(obj) != {"name", "size", "age_seconds"}:
            return fail(path, f"object {i}: keys {sorted(obj)}")
        if not isinstance(obj["name"], str) or not obj["name"]:
            return fail(path, f"object {i}: bad name {obj['name']!r}")
        if not isinstance(obj["size"], int) or obj["size"] < 0:
            return fail(path, f"object {i}: bad size {obj['size']!r}")
        if not isinstance(obj["age_seconds"], (int, float)):
            return fail(path, f"object {i}: bad age")
        names.append(obj["name"])
    if names != sorted(names):
        return fail(path, "objects not sorted by name")
    print(f"validate_obs: {path}: OK ({len(objects)} objects in "
          f"{doc['store']})")
    return True


def validate_partial(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-bench-partial-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    matrix_hash = doc.get("matrix_hash")
    if not isinstance(matrix_hash, str) or len(matrix_hash) != 16:
        return fail(path, f"bad matrix_hash {matrix_hash!r}")
    results = doc.get("results")
    if not isinstance(results, list):
        return fail(path, "missing results array")
    if doc.get("completed") != len(results):
        return fail(path,
                    f"completed {doc.get('completed')!r} != {len(results)}")
    if not isinstance(doc.get("units"), int) or \
            doc["completed"] > doc["units"]:
        return fail(path, "completed > units")
    seen = set()
    for i, record in enumerate(results):
        if not check_result_record(path, f"result {i}", record):
            return False
        if record["hash"] in seen:
            return fail(path, f"result {i}: duplicate unit {record['hash']}")
        seen.add(record["hash"])
    print(f"validate_obs: {path}: OK (partial {doc['completed']}/"
          f"{doc['units']})")
    return True


def check_metric_delta(path, where, metric):
    if not isinstance(metric, dict) or set(metric) != {
            "name", "baseline", "current", "rel_delta", "regressed"}:
        return fail(path, f"{where}: malformed metric")
    for key in ("baseline", "current", "rel_delta"):
        if not isinstance(metric[key], (int, float)):
            return fail(path, f"{where}: {key} not a number")
    if not isinstance(metric["regressed"], bool):
        return fail(path, f"{where}: regressed not a bool")
    return True


def validate_regression(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f"invalid JSON: {err}")
    if doc.get("schema") != "tcsim-regression-v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    for key in ("rel_threshold", "wall_threshold", "noise_k",
                "wall_noise_sigma", "wall_band", "regressed",
                "missing_in_baseline", "missing_in_current", "units"):
        if key not in doc:
            return fail(path, f"missing {key}")
    if doc["wall_band"] < doc["wall_threshold"]:
        return fail(path, "wall_band below wall_threshold")
    any_regressed = bool(doc["missing_in_current"])
    for i, unit in enumerate(doc["units"]):
        expected = {"id", "benchmark", "config", "regressed", "metrics"}
        if set(unit) - {"wall"} != expected:
            return fail(path, f"unit {i}: keys {sorted(unit)}")
        names = set()
        unit_regressed = False
        for j, metric in enumerate(unit["metrics"]):
            if not check_metric_delta(path, f"unit {i} metric {j}",
                                      metric):
                return False
            names.add(metric["name"])
            unit_regressed |= metric["regressed"]
        if names != {"ipc", "effective_fetch_rate",
                     "cond_mispredict_rate"}:
            return fail(path, f"unit {i}: metric names {sorted(names)}")
        if "wall" in unit:
            if not check_metric_delta(path, f"unit {i} wall",
                                      unit["wall"]):
                return False
            unit_regressed |= unit["wall"]["regressed"]
        if unit["regressed"] != unit_regressed:
            return fail(path, f"unit {i}: regressed flag inconsistent")
        any_regressed |= unit_regressed
    if doc["regressed"] != any_regressed:
        return fail(path, "top-level regressed flag inconsistent")
    print(f"validate_obs: {path}: OK ({len(doc['units'])} units, "
          f"regressed={doc['regressed']})")
    return True


BTRACE_MAGIC = b"TCBTRC01"
BTRACE_HEADER_BYTES = 64
BTRACE_RECORD_BYTES = 16
BTRACE_FORMAT_VERSION = 1
BTRACE_CLASSES = 7  # Cond..Halt


def fnv1a(data):
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def validate_btrace(path):
    import struct
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        return fail(path, str(e))
    if len(blob) < BTRACE_HEADER_BYTES:
        return fail(path, "shorter than the btrace header")
    if blob[:8] != BTRACE_MAGIC:
        return fail(path, "bad btrace magic")
    (fmt, gen, fingerprint, entry_pc, inst_count, record_count,
     records_fnv, header_fnv) = struct.unpack_from("<IIQQQQQQ", blob, 8)
    if fnv1a(blob[:56]) != header_fnv:
        return fail(path, "header checksum mismatch")
    if fmt != BTRACE_FORMAT_VERSION:
        return fail(path, f"unsupported format version {fmt}")
    expected = BTRACE_HEADER_BYTES + BTRACE_RECORD_BYTES * record_count
    if len(blob) != expected:
        return fail(path, f"size {len(blob)} does not match "
                          f"record count {record_count}")
    if fnv1a(blob[BTRACE_HEADER_BYTES:]) != records_fnv:
        return fail(path, "record checksum mismatch")
    if record_count > inst_count:
        return fail(path, "more records than instructions covered")
    for i in range(record_count):
        word0 = struct.unpack_from(
            "<Q", blob, BTRACE_HEADER_BYTES + BTRACE_RECORD_BYTES * i)[0]
        cls = (word0 >> 48) & 0xF
        if cls >= BTRACE_CLASSES:
            return fail(path, f"record {i}: unknown class {cls}")
    print(f"validate_obs: {path}: OK (btrace v{fmt}, generator v{gen}, "
          f"{record_count} records over {inst_count} insts, "
          f"entry=0x{entry_pc:x}, fingerprint=0x{fingerprint:016x})")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace-jsonl", action="append", default=[])
    parser.add_argument("--chrome", action="append", default=[])
    parser.add_argument("--intervals", action="append", default=[])
    parser.add_argument("--fragment", action="append", default=[])
    parser.add_argument("--results", action="append", default=[])
    parser.add_argument("--bbv", action="append", default=[])
    parser.add_argument("--simpoints", action="append", default=[])
    parser.add_argument("--error-report", action="append", default=[])
    parser.add_argument("--heartbeat", action="append", default=[])
    parser.add_argument("--farm-status", action="append", default=[])
    parser.add_argument("--regression", action="append", default=[])
    parser.add_argument("--sched-status", action="append", default=[])
    parser.add_argument("--store-manifest", action="append", default=[])
    parser.add_argument("--partial", action="append", default=[])
    parser.add_argument("--btrace", action="append", default=[])
    args = parser.parse_args()
    if not (args.trace_jsonl or args.chrome or args.intervals
            or args.fragment or args.results or args.bbv
            or args.simpoints or args.error_report or args.heartbeat
            or args.farm_status or args.regression or args.sched_status
            or args.store_manifest or args.partial or args.btrace):
        parser.error("nothing to validate")
    ok = True
    for path in args.trace_jsonl:
        ok &= validate_trace_jsonl(path)
    for path in args.chrome:
        ok &= validate_chrome(path)
    for path in args.intervals:
        ok &= validate_intervals(path)
    for path in args.fragment:
        ok &= validate_fragment(path)
    for path in args.results:
        ok &= validate_results(path)
    for path in args.bbv:
        ok &= validate_bbv(path)
    for path in args.simpoints:
        ok &= validate_simpoints(path)
    for path in args.error_report:
        ok &= validate_error_report(path)
    for path in args.heartbeat:
        ok &= validate_heartbeat(path)
    for path in args.farm_status:
        ok &= validate_farm_status(path)
    for path in args.regression:
        ok &= validate_regression(path)
    for path in args.sched_status:
        ok &= validate_sched_status(path)
    for path in args.store_manifest:
        ok &= validate_store_manifest(path)
    for path in args.partial:
        ok &= validate_partial(path)
    for path in args.btrace:
        ok &= validate_btrace(path)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
