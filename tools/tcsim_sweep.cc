/**
 * @file
 * tcsim_sweep: the sharded sweep driver.
 *
 * One binary, four modes over the same deterministically enumerated
 * (benchmark, configuration) work-unit matrix:
 *
 *   tcsim_sweep --list
 *       Print every work unit (index, content hash, id) plus the
 *       matrix hash, without simulating.
 *
 *   tcsim_sweep [--shard i/N | --worklist <file>] --fragments-dir <dir>
 *       Worker mode: simulate the selected units (all units when
 *       neither selector is given and no --out is set... see below)
 *       and write one atomic "<hash>.json" fragment per unit.
 *
 *   tcsim_sweep --out <file>
 *       Single-process mode: simulate the whole matrix in-process and
 *       write the canonical tcsim-bench-results-v1 document. Byte-
 *       identical to sharding the same matrix and merging.
 *
 *   tcsim_sweep --merge --fragments-dir <dir> --out <file>
 *       Combine fragments into the canonical results document.
 *       Reports stale/duplicate/corrupt fragments and fails (exit 2)
 *       listing missing units when the matrix is not fully covered.
 *
 *   tcsim_sweep --check --fragments-dir <dir> [--missing-out <file>]
 *       Like --merge but writes nothing: prints the hashes of missing
 *       units to stdout (one per line, consumed by run_benches.sh to
 *       build retry worklists); exit 0 when complete, 2 otherwise.
 *       --missing-out additionally writes those hashes to a file
 *       atomically — a ready-to-use retry worklist.
 *
 *   tcsim_sweep --pull <url>
 *       Pulled worker mode: lease units from a tcsim_sched at
 *       http://host:port (matrix flags must match the scheduler's —
 *       the lease handshake verifies the matrix hash), execute each
 *       under a renewed lease, and POST the fragment back. Fragments,
 *       heartbeats and (with TCSIM_CACHE_STORE) artifacts all flow
 *       through the scheduler's combined endpoint, so a pulled worker
 *       needs no shared filesystem. Requires TCSIM_FARM_TOKEN (or
 *       TCSIM_STATUS_TOKEN).
 *
 *   tcsim_sweep --status --fragments-dir <dir>
 *       One-shot farm snapshot: scan worker heartbeats and fragments,
 *       print the monitor dashboard to stdout and (with --status-out)
 *       write a tcsim-farm-status-v1 document. For a continuously
 *       refreshing view use tcsim_monitor.
 *
 * Matrix options (must match between workers and the merger; parsed
 * by the shared tools/matrix_args.h, so tcsim_sweep and tcsim_sched
 * cannot drift):
 *   --benchmarks a,b,c   subset of the suite (default: all)
 *   --configs x,y        preset names (default: icache, baseline,
 *                        promotion-t64, packing-unregulated,
 *                        promo-pack-unregulated)
 *   --insts <n>          per-unit budget (default: profile default)
 *   --insts-for sel=n    per-unit budget overrides ("bench" or
 *                        "bench@config"); skews the matrix
 *   --warmup <n>         predictor warm-up instructions; warmed
 *                        predictor state is cached and imported into a
 *                        fresh processor (0 = cold start)
 *   --sampled-interval n SimPoint-style sampled execution: BBV
 *   --sampled-max-k k    interval length (must divide --insts) and the
 *                        k-means cluster-count cap. Both must be given
 *                        together; they add a "@sampled-..." suffix to
 *                        every unit id and fold into the unit hashes.
 *   --replay             drive each unit's front end from a recorded
 *                        tcsim-btrace-v1 control-flow trace instead of
 *                        cycle simulation. The trace is recorded once
 *                        per (benchmark, insts) and cached as a
 *                        "btrace" artifact shared by every config;
 *                        unit ids gain an "@replay" suffix and hashes
 *                        fold the btrace format version. Only
 *                        front-end stats (mispredicts, trace-cache and
 *                        icache activity) are meaningful; cycles stay
 *                        zero. Excludes --warmup and sampled mode.
 *
 * Sampling-error report (single-process only):
 *   --error-out <file>   run the matrix both sampled and full, write
 *                        the tcsim-sampling-error-v1 comparison
 *   --error-tolerance f  per-unit IPC / fetch-rate relative-error
 *                        bound (default 0.05); exit 4 when any unit
 *                        exceeds it
 *   --mispredict-tolerance f
 *                        per-unit mispredict-rate ABSOLUTE error bound
 *                        (default 0.08, i.e. 8 percentage points —
 *                        per-region predictor warm-up bias shifts the
 *                        sampled rate by a few points regardless of
 *                        the base rate, so a relative bound diverges
 *                        at long budgets where the rate is smallest)
 *
 * Telemetry:
 *   --heartbeat <sec>    heartbeat interval for worker modes (default
 *                        2 seconds; 0 disables). Workers write an
 *                        atomic "heartbeat-<worker>.json" next to
 *                        their fragments; the merge layer ignores it.
 *   --status-out <file>  with --status: also write the
 *                        tcsim-farm-status-v1 snapshot JSON
 *
 * Artifact cache:
 *   --cache-dir <dir>    content-addressed cache for program images
 *                        and warmed predictor checkpoints (also via
 *                        TCSIM_CACHE_DIR)
 *   --no-cache           disable the cache even if the env var is set
 *
 * Storage:
 *   --store <spec>       route --merge/--check/--status through a
 *                        FragmentStore spec instead of a local
 *                        directory: "http://host:port" reads the
 *                        object-store shim (requires the farm token),
 *                        anything else is a directory. --fragments-dir
 *                        remains the local-directory shorthand.
 *
 * Diagnostics / testing:
 *   --timing-out <file>  non-canonical timing+cache-stats JSON
 *                        (tcsim-bench-timing-v1)
 *   --die-after <k>      worker raises SIGKILL after k units complete
 *                        (crash-recovery testing)
 *   --die-mid-unit <k>   pulled worker raises SIGKILL right after
 *                        acquiring its k-th lease, BEFORE executing —
 *                        the lease is left dangling, exercising lease
 *                        expiry and re-dispatch
 *   --inject-slow-ms <n> pulled worker sleeps n ms after executing
 *                        each unit (lease kept renewed) — makes it a
 *                        straggler, exercising speculative re-dispatch
 */

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/artifact_cache.h"
#include "bench/store.h"
#include "bench/sweep.h"
#include "common/json.h"
#include "obs/heartbeat.h"
#include "obs/http.h"
#include "tools/matrix_args.h"

namespace
{

using namespace tcsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--list | --shard i/N | --worklist f | "
                 "--pull url | --merge | --check | --status]\n"
                 "  [--fragments-dir d] [--store spec] [--out f] "
                 "[--benchmarks a,b] [--configs x,y]\n"
                 "  [--insts n] [--insts-for sel=n] [--warmup n] "
                 "[--cache-dir d] [--no-cache]\n"
                 "  [--sampled-interval n --sampled-max-k k] [--replay]\n"
                 "  [--error-out f] [--error-tolerance f] "
                 "[--mispredict-tolerance f]\n"
                 "  [--heartbeat sec] [--status-out f] "
                 "[--missing-out f] [--worker name]\n"
                 "  [--timing-out f] [--die-after k] "
                 "[--die-mid-unit k] [--inject-slow-ms n]\n",
                 argv0);
    std::exit(1);
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    if (path == "-") {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return true;
    }
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void
printReport(const bench::MergeReport &report)
{
    for (const std::string &file : report.stale)
        std::fprintf(stderr, "stale fragment: %s\n", file.c_str());
    for (const std::string &file : report.duplicates)
        std::fprintf(stderr, "duplicate fragment: %s\n", file.c_str());
    for (const std::string &file : report.corrupt)
        std::fprintf(stderr, "corrupt fragment: %s\n", file.c_str());
    for (const std::string &id : report.missing)
        std::fprintf(stderr, "missing unit: %s\n", id.c_str());
}

struct TimedUnit
{
    const bench::WorkUnit *unit = nullptr;
    double wallSeconds = 0.0;
};

void
writeTimingDoc(const std::string &path,
               const std::vector<TimedUnit> &timed, double total_seconds)
{
    const bench::ArtifactCacheStats cache =
        bench::ArtifactCache::process().stats();
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-bench-timing-v1\",\n";
    out += "  \"total_wall_seconds\": " +
           std::to_string(total_seconds) + ",\n";
    out += "  \"cache\": {\n";
    out += "    \"enabled\": ";
    out += bench::ArtifactCache::process().enabled() ? "true" : "false";
    out += ",\n";
    out += "    \"hits\": " + std::to_string(cache.hits) + ",\n";
    out += "    \"misses\": " + std::to_string(cache.misses) + ",\n";
    out += "    \"stores\": " + std::to_string(cache.stores) + ",\n";
    out += "    \"rejected\": " + std::to_string(cache.rejected) + "\n";
    out += "  },\n";
    out += "  \"units\": [\n";
    for (std::size_t i = 0; i < timed.size(); ++i) {
        out += "    {\"id\": \"" + timed[i].unit->id + "\", ";
        out += "\"hash\": \"" + timed[i].unit->hash + "\", ";
        out += "\"wall_seconds\": " +
               std::to_string(timed[i].wallSeconds) + "}";
        out += i + 1 < timed.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    if (!writeFileAtomic(path, out))
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
}

/**
 * One scheduler round trip with transport retries: the scheduler may
 * briefly be unreachable (starting up, momentary accept backlog)
 * without that costing the worker its whole run.
 */
std::optional<obs::HttpResult>
schedRequest(const std::string &host, std::uint16_t port,
             const std::string &path, const std::string &token,
             std::string_view body = {})
{
    for (int attempt = 0; attempt < 50; ++attempt) {
        if (auto result =
                obs::httpRequest(host, port, "POST", path, token, body))
            return result;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return std::nullopt;
}

/**
 * Pulled worker: lease units from a tcsim_sched until it says done.
 * Everything flows over the scheduler's combined endpoint — leases,
 * fragments (POST /complete) and heartbeats (PUT through the store
 * shim with overwrite, since heartbeats are rewritten by design).
 */
int
runPullWorker(const std::string &url,
              const std::vector<bench::WorkUnit> &units,
              const std::string &worker, double heartbeat_seconds,
              long die_mid_unit, long inject_slow_ms)
{
    std::string host;
    std::uint16_t port = 0;
    if (!obs::parseHttpUrl(url, host, port)) {
        std::fprintf(stderr, "--pull: bad url '%s'\n", url.c_str());
        return 1;
    }
    const std::string token = bench::farmToken();
    if (token.empty()) {
        std::fprintf(stderr, "--pull needs TCSIM_FARM_TOKEN (or "
                             "TCSIM_STATUS_TOKEN)\n");
        return 1;
    }
    const std::string matrix_hash = bench::matrixHash(units);

    bench::HttpStore store(host, port, token);
    obs::HeartbeatEmitter heart(
        [&store, worker](const obs::Heartbeat &hb) {
            store.put("heartbeat-" + worker + ".json",
                      obs::renderHeartbeat(hb), /*overwrite=*/true);
        },
        worker, heartbeat_seconds, units.size());

    using Clock = std::chrono::steady_clock;
    long leased = 0;
    bool contacted = false;
    // The scheduler exits the moment the last unit lands, so a worker
    // that loses a straggler race can find it gone mid-conversation.
    // Once we have spoken to it successfully, "unreachable" means the
    // sweep is over, not that we failed.
    const auto schedulerGone = [&]() -> int {
        if (!contacted) {
            std::fprintf(stderr, "worker %s: scheduler unreachable\n",
                         worker.c_str());
            return 1;
        }
        std::fprintf(stderr, "worker %s: scheduler gone; sweep "
                             "finished without us\n",
                     worker.c_str());
        return 0;
    };
    for (;;) {
        const auto lease = schedRequest(
            host, port, "/lease?worker=" + worker, token);
        if (!lease)
            return schedulerGone();
        if (lease->status != 200) {
            std::fprintf(stderr, "worker %s: lease refused (%d)\n",
                         worker.c_str(), lease->status);
            return 1;
        }
        contacted = true;
        const std::optional<json::Value> doc = json::parse(lease->body);
        if (!doc || !doc->isObject() ||
            doc->getString("schema") != "tcsim-sched-lease-v1") {
            std::fprintf(stderr, "worker %s: bad lease response\n",
                         worker.c_str());
            return 1;
        }
        if (doc->getString("matrix_hash") != matrix_hash) {
            // The scheduler enumerates a different matrix than our
            // flags do — completing anything would poison the merge.
            std::fprintf(stderr,
                         "worker %s: matrix mismatch (ours %s, "
                         "scheduler %s)\n",
                         worker.c_str(), matrix_hash.c_str(),
                         doc->getString("matrix_hash").c_str());
            return 1;
        }
        const std::string status = doc->getString("status");
        if (status == "done")
            break;
        if (status == "wait") {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
            continue;
        }
        const std::string hash = doc->getString("hash");
        const double renew_seconds =
            std::max(0.05, doc->getDouble("renew_seconds"));
        const bench::WorkUnit *unit = nullptr;
        for (const bench::WorkUnit &candidate : units) {
            if (candidate.hash == hash) {
                unit = &candidate;
                break;
            }
        }
        if (unit == nullptr) {
            std::fprintf(stderr, "worker %s: leased unknown hash %s\n",
                         worker.c_str(), hash.c_str());
            return 1;
        }

        ++leased;
        if (die_mid_unit >= 0 && leased >= die_mid_unit) {
            // Chaos injection: die holding the lease, before any work
            // lands — the scheduler must expire and re-dispatch it.
            std::fprintf(stderr,
                         "worker %s: --die-mid-unit %ld: raising "
                         "SIGKILL holding %s\n",
                         worker.c_str(), die_mid_unit, hash.c_str());
            raise(SIGKILL);
        }

        std::fprintf(stderr, "worker %s: leased %s\n", worker.c_str(),
                     unit->id.c_str());
        heart.beginUnit(unit->id, unit->hash);

        // Renew from a side thread for the whole execution, so a slow
        // (or deliberately slowed) unit keeps its lease and becomes a
        // straggler rather than an expiry.
        std::mutex renew_mutex;
        std::condition_variable renew_wake;
        bool renew_stop = false;
        std::thread renewer([&] {
            std::unique_lock<std::mutex> lock(renew_mutex);
            const auto interval =
                std::chrono::duration<double>(renew_seconds);
            while (!renew_wake.wait_for(lock, interval,
                                        [&] { return renew_stop; })) {
                lock.unlock();
                schedRequest(host, port,
                             "/renew?worker=" + worker + "&hash=" + hash,
                             token);
                lock.lock();
            }
        });

        const bench::ArtifactCacheStats before =
            bench::ArtifactCache::process().stats();
        const Clock::time_point start = Clock::now();
        const bench::ResultIntegers n =
            bench::executeUnitIntegers(*unit);
        if (inject_slow_ms > 0) {
            // Chaos injection: stay leased but slow, so the scheduler
            // classifies this unit a straggler and re-dispatches it.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(inject_slow_ms));
        }
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        const bench::ArtifactCacheStats after =
            bench::ArtifactCache::process().stats();

        bench::UnitTiming timing;
        timing.wallSeconds = seconds;
        timing.cacheHits = after.hits - before.hits;
        timing.cacheMisses = after.misses - before.misses;
        const std::string fragment =
            bench::renderFragment(*unit, n, timing);

        {
            std::lock_guard<std::mutex> lock(renew_mutex);
            renew_stop = true;
        }
        renew_wake.notify_all();
        renewer.join();

        const auto delivered = schedRequest(
            host, port, "/complete?worker=" + worker + "&hash=" + hash,
            token, fragment);
        if (!delivered)
            return schedulerGone();
        if (delivered->status != 200) {
            std::fprintf(stderr,
                         "worker %s: could not deliver %s (%d)\n",
                         worker.c_str(), unit->id.c_str(),
                         delivered->status);
            return 1;
        }
        heart.completeUnit(n.instructions, after.hits - before.hits,
                           after.misses - before.misses);
    }
    heart.finish();
    std::fprintf(stderr, "worker %s: scheduler reports done\n",
                 worker.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool list = false, merge = false, check = false, status = false;
    int shard_index = -1, shard_count = 0;
    std::string worklist_path, fragments_dir, out_path, timing_out;
    std::string error_out, status_out, missing_out, store_spec;
    std::string pull_url, worker_name;
    double error_tolerance = 0.05;
    double mispredict_tolerance = 0.08;
    double heartbeat_seconds = 2.0;
    long die_after = -1, die_mid_unit = -1, inject_slow_ms = 0;
    bool no_cache = false;
    tools::MatrixArgs matrix;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (matrix.consume(arg, next)) {
            continue;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--merge") {
            merge = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--status") {
            status = true;
        } else if (arg == "--status-out") {
            status_out = next();
        } else if (arg == "--missing-out") {
            missing_out = next();
        } else if (arg == "--heartbeat") {
            heartbeat_seconds = std::strtod(next(), nullptr);
        } else if (arg == "--shard") {
            if (std::sscanf(next(), "%d/%d", &shard_index,
                            &shard_count) != 2 ||
                shard_count <= 0 || shard_index < 0 ||
                shard_index >= shard_count) {
                std::fprintf(stderr, "bad --shard (want i/N)\n");
                return 1;
            }
        } else if (arg == "--worklist") {
            worklist_path = next();
        } else if (arg == "--pull") {
            pull_url = next();
        } else if (arg == "--worker") {
            worker_name = next();
        } else if (arg == "--fragments-dir") {
            fragments_dir = next();
        } else if (arg == "--store") {
            store_spec = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--error-out") {
            error_out = next();
        } else if (arg == "--error-tolerance") {
            error_tolerance = std::strtod(next(), nullptr);
        } else if (arg == "--mispredict-tolerance") {
            mispredict_tolerance = std::strtod(next(), nullptr);
        } else if (arg == "--cache-dir") {
            setenv("TCSIM_CACHE_DIR", next(), 1);
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--timing-out") {
            timing_out = next();
        } else if (arg == "--die-after") {
            die_after = std::strtol(next(), nullptr, 10);
        } else if (arg == "--die-mid-unit") {
            die_mid_unit = std::strtol(next(), nullptr, 10);
        } else if (arg == "--inject-slow-ms") {
            inject_slow_ms = std::strtol(next(), nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    if (no_cache) {
        unsetenv("TCSIM_CACHE_DIR");
        unsetenv("TCSIM_CACHE_STORE");
    }
    if (!matrix.finalize())
        return 1;
    bench::SweepOptions &options = matrix.options;

    if (!error_out.empty() && !options.sampled.enabled) {
        std::fprintf(stderr, "--error-out needs --sampled-interval / "
                             "--sampled-max-k\n");
        return 1;
    }

    const std::vector<bench::WorkUnit> units =
        bench::enumerateUnits(options);

    if (!pull_url.empty()) {
        if (worker_name.empty())
            worker_name = "pid" + std::to_string(getpid());
        return runPullWorker(pull_url, units, worker_name,
                             heartbeat_seconds, die_mid_unit,
                             inject_slow_ms);
    }

    if (list) {
        std::printf("matrix %s (%zu units)\n",
                    bench::matrixHash(units).c_str(), units.size());
        for (const bench::WorkUnit &unit : units)
            std::printf("%4u  %s  %s\n", unit.index, unit.hash.c_str(),
                        unit.id.c_str());
        return 0;
    }

    // Reader modes (--merge/--check/--status) accept either a local
    // --fragments-dir or any --store spec (http://host:port reads the
    // object-store shim).
    std::unique_ptr<bench::FragmentStore> read_store;
    const auto openReadStore = [&](const char *mode) -> bool {
        if (!store_spec.empty())
            read_store = bench::openStore(store_spec);
        else if (!fragments_dir.empty())
            read_store =
                std::make_unique<bench::LocalDirStore>(fragments_dir);
        else
            std::fprintf(stderr,
                         "--%s needs --fragments-dir or --store\n",
                         mode);
        return read_store != nullptr;
    };

    if (status) {
        if (!openReadStore("status"))
            return 1;
        const bench::FarmScan scan =
            bench::scanFarm(options, *read_store);
        std::vector<double> walls;
        for (const bench::CompletedUnit &unit : scan.completed)
            walls.push_back(unit.wallSeconds);
        const double now_mono = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now()
                                        .time_since_epoch())
                                    .count();
        const obs::FarmStatus farm = obs::aggregateFarm(
            scan.workers, walls, scan.unitsTotal, scan.completed.size(),
            obs::FarmParams{}, nullptr, now_mono);
        std::fputs(obs::renderFarmDashboard(farm).c_str(), stdout);
        if (!status_out.empty()) {
            const std::string doc = obs::renderFarmStatus(
                farm, static_cast<std::int64_t>(std::time(nullptr)));
            if (!writeFileAtomic(status_out, doc)) {
                std::fprintf(stderr, "cannot write %s\n",
                             status_out.c_str());
                return 3;
            }
        }
        return 0;
    }

    if (merge || check) {
        if (!openReadStore(merge ? "merge" : "check"))
            return 1;
        bench::MergeReport report;
        const std::optional<std::string> doc =
            bench::mergeFragments(options, *read_store, report);
        printReport(report);
        if (check) {
            // Missing hashes: the launcher's retry worklist, on
            // stdout and (with --missing-out) as a file.
            std::string worklist;
            for (const bench::WorkUnit &unit : units) {
                for (const std::string &id : report.missing) {
                    if (id == unit.id) {
                        std::printf("%s\n", unit.hash.c_str());
                        worklist += unit.hash + "\n";
                    }
                }
            }
            if (!missing_out.empty() &&
                !writeFileAtomic(missing_out, worklist)) {
                std::fprintf(stderr, "cannot write %s\n",
                             missing_out.c_str());
                return 3;
            }
            return report.complete() ? 0 : 2;
        }
        if (!doc)
            return 2;
        if (out_path.empty())
            out_path = "-";
        if (!writeFileAtomic(out_path, *doc)) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 3;
        }
        return 0;
    }

    if (!error_out.empty()) {
        // Calibration mode: run the matrix both sampled and full and
        // report per-unit relative error plus the speedup.
        bool all_within = false;
        const std::string report = bench::samplingErrorReport(
            options, error_tolerance, mispredict_tolerance,
            &all_within);
        if (!writeFileAtomic(error_out, report)) {
            std::fprintf(stderr, "cannot write %s\n", error_out.c_str());
            return 3;
        }
        if (!all_within) {
            std::fprintf(stderr,
                         "sampling error exceeds tolerance %.3f "
                         "(mispredict %.3f)\n",
                         error_tolerance, mispredict_tolerance);
            return 4;
        }
        return 0;
    }

    // Worker / single-process execution modes.
    std::vector<const bench::WorkUnit *> selected;
    if (shard_count > 0) {
        for (const bench::WorkUnit &unit : units) {
            if (unit.index % static_cast<unsigned>(shard_count) ==
                static_cast<unsigned>(shard_index)) {
                selected.push_back(&unit);
            }
        }
    } else if (!worklist_path.empty()) {
        std::ifstream in(worklist_path);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n",
                         worklist_path.c_str());
            return 1;
        }
        std::string line;
        while (std::getline(in, line)) {
            while (!line.empty() &&
                   (line.back() == '\r' || line.back() == ' '))
                line.pop_back();
            if (line.empty() || line[0] == '#')
                continue;
            const bench::WorkUnit *found = nullptr;
            for (const bench::WorkUnit &unit : units) {
                if (unit.hash == line || unit.id == line) {
                    found = &unit;
                    break;
                }
            }
            if (found == nullptr) {
                std::fprintf(stderr,
                             "worklist entry '%s' is not in the matrix\n",
                             line.c_str());
                return 1;
            }
            selected.push_back(found);
        }
    } else {
        for (const bench::WorkUnit &unit : units)
            selected.push_back(&unit);
    }

    const bool sharded = shard_count > 0 || !worklist_path.empty();
    if (sharded && fragments_dir.empty()) {
        std::fprintf(stderr, "worker modes need --fragments-dir\n");
        return 1;
    }

    // Heartbeats go next to the fragments, so they exist exactly when
    // another process could be watching the directory.
    std::string worker_label;
    if (shard_count > 0)
        worker_label = "shard" + std::to_string(shard_index);
    else
        worker_label = "pid" + std::to_string(getpid());
    obs::HeartbeatEmitter heart(fragments_dir, worker_label,
                                heartbeat_seconds, selected.size());

    using Clock = std::chrono::steady_clock;
    const Clock::time_point run_start = Clock::now();
    std::vector<bench::ResultIntegers> integers;
    std::vector<TimedUnit> timed;
    long completed = 0;
    for (const bench::WorkUnit *unit : selected) {
        std::fprintf(stderr, "[%ld/%zu] %s\n", completed + 1,
                     selected.size(), unit->id.c_str());
        heart.beginUnit(unit->id, unit->hash);
        const bench::ArtifactCacheStats before =
            bench::ArtifactCache::process().stats();
        const Clock::time_point start = Clock::now();
        const bench::ResultIntegers n =
            bench::executeUnitIntegers(*unit);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        const bench::ArtifactCacheStats after =
            bench::ArtifactCache::process().stats();
        if (!fragments_dir.empty()) {
            bench::UnitTiming timing;
            timing.wallSeconds = seconds;
            timing.cacheHits = after.hits - before.hits;
            timing.cacheMisses = after.misses - before.misses;
            if (!bench::writeFragment(fragments_dir, *unit, n, timing)) {
                std::fprintf(stderr, "cannot write fragment for %s\n",
                             unit->id.c_str());
                return 3;
            }
        }
        integers.push_back(n);
        timed.push_back({unit, seconds});
        ++completed;
        heart.completeUnit(n.instructions, after.hits - before.hits,
                           after.misses - before.misses);
        if (die_after >= 0 && completed >= die_after) {
            // Crash-recovery testing: die the hard way, mid-sweep,
            // with no destructors or atexit handlers.
            std::fprintf(stderr, "--die-after %ld: raising SIGKILL\n",
                         die_after);
            raise(SIGKILL);
        }
    }
    heart.finish();
    const double total_seconds =
        std::chrono::duration<double>(Clock::now() - run_start).count();

    if (!sharded && !out_path.empty()) {
        const std::string doc = bench::renderResultsDoc(units, integers);
        if (!writeFileAtomic(out_path, doc)) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 3;
        }
    }
    if (!timing_out.empty())
        writeTimingDoc(timing_out, timed, total_seconds);

    const bench::ArtifactCacheStats cache =
        bench::ArtifactCache::process().stats();
    std::fprintf(stderr,
                 "done: %ld units in %.2fs (cache: %llu hits, %llu "
                 "misses, %llu stores, %llu rejected)\n",
                 completed, total_seconds,
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.misses),
                 static_cast<unsigned long long>(cache.stores),
                 static_cast<unsigned long long>(cache.rejected));
    return 0;
}
