/**
 * @file
 * tcsim_sweep: the sharded sweep driver.
 *
 * One binary, four modes over the same deterministically enumerated
 * (benchmark, configuration) work-unit matrix:
 *
 *   tcsim_sweep --list
 *       Print every work unit (index, content hash, id) plus the
 *       matrix hash, without simulating.
 *
 *   tcsim_sweep [--shard i/N | --worklist <file>] --fragments-dir <dir>
 *       Worker mode: simulate the selected units (all units when
 *       neither selector is given and no --out is set... see below)
 *       and write one atomic "<hash>.json" fragment per unit.
 *
 *   tcsim_sweep --out <file>
 *       Single-process mode: simulate the whole matrix in-process and
 *       write the canonical tcsim-bench-results-v1 document. Byte-
 *       identical to sharding the same matrix and merging.
 *
 *   tcsim_sweep --merge --fragments-dir <dir> --out <file>
 *       Combine fragments into the canonical results document.
 *       Reports stale/duplicate/corrupt fragments and fails (exit 2)
 *       listing missing units when the matrix is not fully covered.
 *
 *   tcsim_sweep --check --fragments-dir <dir>
 *       Like --merge but writes nothing: prints the hashes of missing
 *       units to stdout (one per line, consumed by run_benches.sh to
 *       build retry worklists); exit 0 when complete, 2 otherwise.
 *
 *   tcsim_sweep --status --fragments-dir <dir>
 *       One-shot farm snapshot: scan worker heartbeats and fragments,
 *       print the monitor dashboard to stdout and (with --status-out)
 *       write a tcsim-farm-status-v1 document. For a continuously
 *       refreshing view use tcsim_monitor.
 *
 * Matrix options (must match between workers and the merger):
 *   --benchmarks a,b,c   subset of the suite (default: all)
 *   --configs x,y        preset names (default: icache, baseline,
 *                        promotion-t64, packing-unregulated,
 *                        promo-pack-unregulated)
 *   --insts <n>          per-unit budget (default: profile default)
 *   --warmup <n>         predictor warm-up instructions; warmed
 *                        predictor state is cached and imported into a
 *                        fresh processor (0 = cold start)
 *   --sampled-interval n SimPoint-style sampled execution: BBV
 *   --sampled-max-k k    interval length (must divide --insts) and the
 *                        k-means cluster-count cap. Both must be given
 *                        together; they add a "@sampled-..." suffix to
 *                        every unit id and fold into the unit hashes.
 *
 * Sampling-error report (single-process only):
 *   --error-out <file>   run the matrix both sampled and full, write
 *                        the tcsim-sampling-error-v1 comparison
 *   --error-tolerance f  per-unit IPC / fetch-rate relative-error
 *                        bound (default 0.05); exit 4 when any unit
 *                        exceeds it
 *   --mispredict-tolerance f
 *                        per-unit mispredict-rate ABSOLUTE error bound
 *                        (default 0.08, i.e. 8 percentage points —
 *                        per-region predictor warm-up bias shifts the
 *                        sampled rate by a few points regardless of
 *                        the base rate, so a relative bound diverges
 *                        at long budgets where the rate is smallest)
 *
 * Telemetry:
 *   --heartbeat <sec>    heartbeat interval for worker modes (default
 *                        2 seconds; 0 disables). Workers write an
 *                        atomic "heartbeat-<worker>.json" next to
 *                        their fragments; the merge layer ignores it.
 *   --status-out <file>  with --status: also write the
 *                        tcsim-farm-status-v1 snapshot JSON
 *
 * Artifact cache:
 *   --cache-dir <dir>    content-addressed cache for program images
 *                        and warmed predictor checkpoints (also via
 *                        TCSIM_CACHE_DIR)
 *   --no-cache           disable the cache even if the env var is set
 *
 * Diagnostics / testing:
 *   --timing-out <file>  non-canonical timing+cache-stats JSON
 *                        (tcsim-bench-timing-v1)
 *   --die-after <k>      worker raises SIGKILL after k units complete
 *                        (crash-recovery testing)
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/artifact_cache.h"
#include "bench/sweep.h"
#include "obs/heartbeat.h"

namespace
{

using namespace tcsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--list | --shard i/N | --worklist f | "
                 "--merge | --check | --status]\n"
                 "  [--fragments-dir d] [--out f] [--benchmarks a,b] "
                 "[--configs x,y]\n"
                 "  [--insts n] [--warmup n] [--cache-dir d] "
                 "[--no-cache]\n"
                 "  [--sampled-interval n --sampled-max-k k]\n"
                 "  [--error-out f] [--error-tolerance f] "
                 "[--mispredict-tolerance f]\n"
                 "  [--heartbeat sec] [--status-out f]\n"
                 "  [--timing-out f] [--die-after k]\n",
                 argv0);
    std::exit(1);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    if (path == "-") {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return true;
    }
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void
printReport(const bench::MergeReport &report)
{
    for (const std::string &file : report.stale)
        std::fprintf(stderr, "stale fragment: %s\n", file.c_str());
    for (const std::string &file : report.duplicates)
        std::fprintf(stderr, "duplicate fragment: %s\n", file.c_str());
    for (const std::string &file : report.corrupt)
        std::fprintf(stderr, "corrupt fragment: %s\n", file.c_str());
    for (const std::string &id : report.missing)
        std::fprintf(stderr, "missing unit: %s\n", id.c_str());
}

struct TimedUnit
{
    const bench::WorkUnit *unit = nullptr;
    double wallSeconds = 0.0;
};

void
writeTimingDoc(const std::string &path,
               const std::vector<TimedUnit> &timed, double total_seconds)
{
    const bench::ArtifactCacheStats cache =
        bench::ArtifactCache::process().stats();
    std::string out = "{\n";
    out += "  \"schema\": \"tcsim-bench-timing-v1\",\n";
    out += "  \"total_wall_seconds\": " +
           std::to_string(total_seconds) + ",\n";
    out += "  \"cache\": {\n";
    out += "    \"enabled\": ";
    out += bench::ArtifactCache::process().enabled() ? "true" : "false";
    out += ",\n";
    out += "    \"hits\": " + std::to_string(cache.hits) + ",\n";
    out += "    \"misses\": " + std::to_string(cache.misses) + ",\n";
    out += "    \"stores\": " + std::to_string(cache.stores) + ",\n";
    out += "    \"rejected\": " + std::to_string(cache.rejected) + "\n";
    out += "  },\n";
    out += "  \"units\": [\n";
    for (std::size_t i = 0; i < timed.size(); ++i) {
        out += "    {\"id\": \"" + timed[i].unit->id + "\", ";
        out += "\"hash\": \"" + timed[i].unit->hash + "\", ";
        out += "\"wall_seconds\": " +
               std::to_string(timed[i].wallSeconds) + "}";
        out += i + 1 < timed.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    if (!writeFileAtomic(path, out))
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool list = false, merge = false, check = false, status = false;
    int shard_index = -1, shard_count = 0;
    std::string worklist_path, fragments_dir, out_path, timing_out;
    std::string error_out, status_out;
    double error_tolerance = 0.05;
    double mispredict_tolerance = 0.08;
    double heartbeat_seconds = 2.0;
    long die_after = -1;
    bool no_cache = false;
    bench::SweepOptions options;
    std::vector<std::string> config_names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--merge") {
            merge = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--status") {
            status = true;
        } else if (arg == "--status-out") {
            status_out = next();
        } else if (arg == "--heartbeat") {
            heartbeat_seconds = std::strtod(next(), nullptr);
        } else if (arg == "--shard") {
            if (std::sscanf(next(), "%d/%d", &shard_index,
                            &shard_count) != 2 ||
                shard_count <= 0 || shard_index < 0 ||
                shard_index >= shard_count) {
                std::fprintf(stderr, "bad --shard (want i/N)\n");
                return 1;
            }
        } else if (arg == "--worklist") {
            worklist_path = next();
        } else if (arg == "--fragments-dir") {
            fragments_dir = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--benchmarks") {
            options.benchmarks = splitCommas(next());
        } else if (arg == "--configs") {
            config_names = splitCommas(next());
        } else if (arg == "--insts") {
            options.insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            options.warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sampled-interval") {
            options.sampled.enabled = true;
            options.sampled.interval =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sampled-max-k") {
            options.sampled.enabled = true;
            options.sampled.maxK = static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--error-out") {
            error_out = next();
        } else if (arg == "--error-tolerance") {
            error_tolerance = std::strtod(next(), nullptr);
        } else if (arg == "--mispredict-tolerance") {
            mispredict_tolerance = std::strtod(next(), nullptr);
        } else if (arg == "--cache-dir") {
            setenv("TCSIM_CACHE_DIR", next(), 1);
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--timing-out") {
            timing_out = next();
        } else if (arg == "--die-after") {
            die_after = std::strtol(next(), nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    if (no_cache)
        unsetenv("TCSIM_CACHE_DIR");

    if (options.sampled.enabled &&
        (options.sampled.interval == 0 || options.sampled.maxK == 0)) {
        std::fprintf(stderr, "--sampled-interval and --sampled-max-k "
                             "must be given together\n");
        return 1;
    }
    if (!error_out.empty() && !options.sampled.enabled) {
        std::fprintf(stderr, "--error-out needs --sampled-interval / "
                             "--sampled-max-k\n");
        return 1;
    }

    for (const std::string &name : config_names) {
        std::optional<sim::ProcessorConfig> config =
            bench::configByName(name);
        if (!config) {
            std::fprintf(stderr, "unknown config '%s'\n", name.c_str());
            return 1;
        }
        options.configs.push_back(std::move(*config));
    }

    const std::vector<bench::WorkUnit> units =
        bench::enumerateUnits(options);

    if (list) {
        std::printf("matrix %s (%zu units)\n",
                    bench::matrixHash(units).c_str(), units.size());
        for (const bench::WorkUnit &unit : units)
            std::printf("%4u  %s  %s\n", unit.index, unit.hash.c_str(),
                        unit.id.c_str());
        return 0;
    }

    if (status) {
        if (fragments_dir.empty()) {
            std::fprintf(stderr, "--status needs --fragments-dir\n");
            return 1;
        }
        const bench::FarmScan scan =
            bench::scanFarm(options, fragments_dir);
        std::vector<double> walls;
        for (const bench::CompletedUnit &unit : scan.completed)
            walls.push_back(unit.wallSeconds);
        const double now_mono = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now()
                                        .time_since_epoch())
                                    .count();
        const obs::FarmStatus farm = obs::aggregateFarm(
            scan.workers, walls, scan.unitsTotal, scan.completed.size(),
            obs::FarmParams{}, nullptr, now_mono);
        std::fputs(obs::renderFarmDashboard(farm).c_str(), stdout);
        if (!status_out.empty()) {
            const std::string doc = obs::renderFarmStatus(
                farm, static_cast<std::int64_t>(std::time(nullptr)));
            if (!writeFileAtomic(status_out, doc)) {
                std::fprintf(stderr, "cannot write %s\n",
                             status_out.c_str());
                return 3;
            }
        }
        return 0;
    }

    if (merge || check) {
        if (fragments_dir.empty()) {
            std::fprintf(stderr, "--%s needs --fragments-dir\n",
                         merge ? "merge" : "check");
            return 1;
        }
        bench::MergeReport report;
        const std::optional<std::string> doc =
            bench::mergeFragments(options, fragments_dir, report);
        printReport(report);
        if (check) {
            // Missing hashes on stdout: the launcher's retry worklist.
            for (const bench::WorkUnit &unit : units) {
                for (const std::string &id : report.missing) {
                    if (id == unit.id)
                        std::printf("%s\n", unit.hash.c_str());
                }
            }
            return report.complete() ? 0 : 2;
        }
        if (!doc)
            return 2;
        if (out_path.empty())
            out_path = "-";
        if (!writeFileAtomic(out_path, *doc)) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 3;
        }
        return 0;
    }

    if (!error_out.empty()) {
        // Calibration mode: run the matrix both sampled and full and
        // report per-unit relative error plus the speedup.
        bool all_within = false;
        const std::string report = bench::samplingErrorReport(
            options, error_tolerance, mispredict_tolerance,
            &all_within);
        if (!writeFileAtomic(error_out, report)) {
            std::fprintf(stderr, "cannot write %s\n", error_out.c_str());
            return 3;
        }
        if (!all_within) {
            std::fprintf(stderr,
                         "sampling error exceeds tolerance %.3f "
                         "(mispredict %.3f)\n",
                         error_tolerance, mispredict_tolerance);
            return 4;
        }
        return 0;
    }

    // Worker / single-process execution modes.
    std::vector<const bench::WorkUnit *> selected;
    if (shard_count > 0) {
        for (const bench::WorkUnit &unit : units) {
            if (unit.index % static_cast<unsigned>(shard_count) ==
                static_cast<unsigned>(shard_index)) {
                selected.push_back(&unit);
            }
        }
    } else if (!worklist_path.empty()) {
        std::ifstream in(worklist_path);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n",
                         worklist_path.c_str());
            return 1;
        }
        std::string line;
        while (std::getline(in, line)) {
            while (!line.empty() &&
                   (line.back() == '\r' || line.back() == ' '))
                line.pop_back();
            if (line.empty() || line[0] == '#')
                continue;
            const bench::WorkUnit *found = nullptr;
            for (const bench::WorkUnit &unit : units) {
                if (unit.hash == line || unit.id == line) {
                    found = &unit;
                    break;
                }
            }
            if (found == nullptr) {
                std::fprintf(stderr,
                             "worklist entry '%s' is not in the matrix\n",
                             line.c_str());
                return 1;
            }
            selected.push_back(found);
        }
    } else {
        for (const bench::WorkUnit &unit : units)
            selected.push_back(&unit);
    }

    const bool sharded = shard_count > 0 || !worklist_path.empty();
    if (sharded && fragments_dir.empty()) {
        std::fprintf(stderr, "worker modes need --fragments-dir\n");
        return 1;
    }

    // Heartbeats go next to the fragments, so they exist exactly when
    // another process could be watching the directory.
    std::string worker_label;
    if (shard_count > 0)
        worker_label = "shard" + std::to_string(shard_index);
    else
        worker_label = "pid" + std::to_string(getpid());
    obs::HeartbeatEmitter heart(fragments_dir, worker_label,
                                heartbeat_seconds, selected.size());

    using Clock = std::chrono::steady_clock;
    const Clock::time_point run_start = Clock::now();
    std::vector<bench::ResultIntegers> integers;
    std::vector<TimedUnit> timed;
    long completed = 0;
    for (const bench::WorkUnit *unit : selected) {
        std::fprintf(stderr, "[%ld/%zu] %s\n", completed + 1,
                     selected.size(), unit->id.c_str());
        heart.beginUnit(unit->id, unit->hash);
        const bench::ArtifactCacheStats before =
            bench::ArtifactCache::process().stats();
        const Clock::time_point start = Clock::now();
        const bench::ResultIntegers n =
            bench::executeUnitIntegers(*unit);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        const bench::ArtifactCacheStats after =
            bench::ArtifactCache::process().stats();
        if (!fragments_dir.empty()) {
            bench::UnitTiming timing;
            timing.wallSeconds = seconds;
            timing.cacheHits = after.hits - before.hits;
            timing.cacheMisses = after.misses - before.misses;
            if (!bench::writeFragment(fragments_dir, *unit, n, timing)) {
                std::fprintf(stderr, "cannot write fragment for %s\n",
                             unit->id.c_str());
                return 3;
            }
        }
        integers.push_back(n);
        timed.push_back({unit, seconds});
        ++completed;
        heart.completeUnit(n.instructions, after.hits - before.hits,
                           after.misses - before.misses);
        if (die_after >= 0 && completed >= die_after) {
            // Crash-recovery testing: die the hard way, mid-sweep,
            // with no destructors or atexit handlers.
            std::fprintf(stderr, "--die-after %ld: raising SIGKILL\n",
                         die_after);
            raise(SIGKILL);
        }
    }
    heart.finish();
    const double total_seconds =
        std::chrono::duration<double>(Clock::now() - run_start).count();

    if (!sharded && !out_path.empty()) {
        const std::string doc = bench::renderResultsDoc(units, integers);
        if (!writeFileAtomic(out_path, doc)) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 3;
        }
    }
    if (!timing_out.empty())
        writeTimingDoc(timing_out, timed, total_seconds);

    const bench::ArtifactCacheStats cache =
        bench::ArtifactCache::process().stats();
    std::fprintf(stderr,
                 "done: %ld units in %.2fs (cache: %llu hits, %llu "
                 "misses, %llu stores, %llu rejected)\n",
                 completed, total_seconds,
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.misses),
                 static_cast<unsigned long long>(cache.stores),
                 static_cast<unsigned long long>(cache.rejected));
    return 0;
}
