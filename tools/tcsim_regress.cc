/**
 * @file
 * tcsim_regress: the perf-regression gate for CI.
 *
 * Compares two canonical tcsim-bench-results-v1 documents per
 * (benchmark, config) unit and writes a tcsim-regression-v1 verdict.
 * Simulated metrics (IPC, effective fetch rate, conditional
 * mispredict rate) are deterministic and gated by a plain relative
 * threshold; per-unit wall-clock (optional, from the timing
 * documents) is noisy and gated by max(threshold, k × robust sigma)
 * where the sigma is learned from the spread of per-unit deltas.
 *
 *   tcsim_regress --baseline old.json --current new.json
 *     [--baseline-timing old_t.json --current-timing new_t.json]
 *     [--out report.json] [--rel-threshold f] [--wall-threshold f]
 *     [--noise-k f]
 *
 * Exit codes (distinct so CI can tell a regression from a crash):
 *   0  clean — no unit regressed
 *   5  regression detected (or baseline units missing from current)
 *   1  usage error
 *   2  a document could not be read or parsed
 *   3  the report could not be written
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "common/json.h"
#include "obs/regress.h"

namespace
{

using namespace tcsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --baseline f --current f\n"
                 "  [--baseline-timing f --current-timing f] [--out f]\n"
                 "  [--rel-threshold f] [--wall-threshold f] "
                 "[--noise-k f]\n",
                 argv0);
    std::exit(1);
}

std::optional<json::Value>
loadDoc(const std::string &path, const char *what)
{
    std::optional<json::Value> doc = json::parseFile(path);
    if (!doc)
        std::fprintf(stderr, "cannot read or parse %s '%s'\n", what,
                     path.c_str());
    return doc;
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    if (path == "-") {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return true;
    }
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path;
    std::string baseline_timing_path, current_timing_path;
    std::string out_path = "-";
    obs::RegressOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--current") {
            current_path = next();
        } else if (arg == "--baseline-timing") {
            baseline_timing_path = next();
        } else if (arg == "--current-timing") {
            current_timing_path = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--rel-threshold") {
            options.relThreshold = std::strtod(next(), nullptr);
        } else if (arg == "--wall-threshold") {
            options.wallThreshold = std::strtod(next(), nullptr);
        } else if (arg == "--noise-k") {
            options.noiseK = std::strtod(next(), nullptr);
        } else {
            usage(argv[0]);
        }
    }
    if (baseline_path.empty() || current_path.empty())
        usage(argv[0]);
    if (baseline_timing_path.empty() != current_timing_path.empty()) {
        std::fprintf(stderr, "--baseline-timing and --current-timing "
                             "must be given together\n");
        return 1;
    }

    const std::optional<json::Value> baseline =
        loadDoc(baseline_path, "baseline");
    const std::optional<json::Value> current =
        loadDoc(current_path, "current");
    if (!baseline || !current)
        return 2;
    std::optional<json::Value> baseline_timing, current_timing;
    if (!baseline_timing_path.empty()) {
        baseline_timing = loadDoc(baseline_timing_path,
                                  "baseline timing");
        current_timing = loadDoc(current_timing_path, "current timing");
        if (!baseline_timing || !current_timing)
            return 2;
    }

    std::string error;
    const std::optional<obs::RegressionReport> report =
        obs::compareResults(
            *baseline, *current,
            baseline_timing ? &*baseline_timing : nullptr,
            current_timing ? &*current_timing : nullptr, options,
            &error);
    if (!report) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }

    const std::string rendered =
        obs::renderRegressionReport(*report, options);
    if (!writeFileAtomic(out_path, rendered)) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 3;
    }

    std::size_t regressed_units = 0;
    for (const obs::UnitComparison &unit : report->units)
        regressed_units += unit.regressed ? 1 : 0;
    std::fprintf(stderr,
                 "compared %zu units: %zu regressed, %zu missing from "
                 "current, %zu new (wall band %.4f, sigma %.4f)\n",
                 report->units.size(), regressed_units,
                 report->missingInCurrent.size(),
                 report->missingInBaseline.size(), report->wallBand,
                 report->wallNoiseSigma);
    if (report->regressed) {
        for (const obs::UnitComparison &unit : report->units) {
            if (!unit.regressed)
                continue;
            for (const obs::MetricDelta &metric : unit.metrics) {
                if (metric.regressed) {
                    std::fprintf(stderr,
                                 "REGRESSION %s: %s %.6g -> %.6g "
                                 "(%+.2f%%)\n",
                                 unit.id.c_str(), metric.name.c_str(),
                                 metric.baseline, metric.current,
                                 100.0 * metric.relDelta);
                }
            }
            if (unit.wall && unit.wall->regressed) {
                std::fprintf(stderr,
                             "REGRESSION %s: wall %.3fs -> %.3fs "
                             "(%+.2f%%, band %.2f%%)\n",
                             unit.id.c_str(), unit.wall->baseline,
                             unit.wall->current,
                             100.0 * unit.wall->relDelta,
                             100.0 * report->wallBand);
            }
        }
        for (const std::string &id : report->missingInCurrent)
            std::fprintf(stderr, "REGRESSION coverage: %s missing "
                                 "from current run\n",
                         id.c_str());
        return 5;
    }
    return 0;
}
