/**
 * @file
 * tcsim_disasm: generate (or load) a workload and print its
 * disassembly, data image summary, and stream characterization —
 * the tool for inspecting what the simulator actually executes.
 *
 *   tcsim_disasm [--bench <name> | --load <file>] [--save <file>]
 *                [--limit <n>] [--characterize <insts>]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/characterize.h"
#include "workload/generator.h"
#include "workload/profile.h"
#include "workload/serialize.h"

int
main(int argc, char **argv)
{
    using namespace tcsim;

    std::string bench = "compress";
    std::string load_path, save_path;
    std::size_t limit = 200;
    std::uint64_t characterize_insts = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--bench")
            bench = value();
        else if (arg == "--load")
            load_path = value();
        else if (arg == "--save")
            save_path = value();
        else if (arg == "--limit")
            limit = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--characterize")
            characterize_insts =
                std::strtoull(value().c_str(), nullptr, 10);
        else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    workload::Program program = [&] {
        if (!load_path.empty()) {
            auto loaded = workload::loadProgram(load_path);
            if (!loaded)
                fatal("cannot load program from %s", load_path.c_str());
            return std::move(*loaded);
        }
        return workload::generateProgram(workload::findProfile(bench));
    }();

    if (!save_path.empty()) {
        if (!workload::saveProgram(program, save_path))
            fatal("cannot save program to %s", save_path.c_str());
        std::printf("saved %s (%zu instructions) to %s\n",
                    program.name().c_str(), program.codeSize(),
                    save_path.c_str());
    }

    std::printf("program %s: %zu instructions at 0x%llx, entry 0x%llx, "
                "%zu initialized data words\n",
                program.name().c_str(), program.codeSize(),
                static_cast<unsigned long long>(program.codeBase()),
                static_cast<unsigned long long>(program.entry()),
                program.initData().size());

    std::size_t printed = 0;
    for (Addr addr = program.codeBase();
         addr < program.codeLimit() && printed < limit;
         addr += isa::kInstBytes, ++printed) {
        std::printf("  %06llx  %s\n",
                    static_cast<unsigned long long>(addr),
                    isa::disassemble(program.fetch(addr), addr).c_str());
    }
    if (printed < program.codeSize())
        std::printf("  ... (%zu more; raise --limit)\n",
                    program.codeSize() - printed);

    if (characterize_insts > 0) {
        const workload::WorkloadStats ws =
            workload::characterize(program, characterize_insts);
        std::printf("\ncharacterization over %llu instructions:\n",
                    static_cast<unsigned long long>(ws.instCount));
        std::printf("  cond branches   %.2f%% (taken %.1f%%)\n",
                    100.0 * ws.condBranches / ws.instCount,
                    100.0 * ws.condTaken / ws.condBranches);
        std::printf("  fill block size %.2f\n", ws.avgFillBlockSize);
        std::printf("  loads/stores    %.1f%% / %.1f%%\n",
                    100.0 * ws.loads / ws.instCount,
                    100.0 * ws.stores / ws.instCount);
        std::printf("  calls/indirect  %.2f%% / %.2f%%\n",
                    100.0 * ws.calls / ws.instCount,
                    100.0 * ws.indirectJumps / ws.instCount);
        std::printf("  strongly biased %.1f%% of dynamic branches\n",
                    100.0 * ws.fracDynStronglyBiased);
    }
    return 0;
}
