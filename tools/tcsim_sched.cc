/**
 * @file
 * tcsim_sched: the long-lived cluster-scale sweep scheduler.
 *
 * Serves one authenticated HTTP endpoint that combines
 *
 *  - the lease protocol driven by `tcsim_sweep --pull` workers:
 *      POST /lease?worker=w     acquire a unit (work stealing: the
 *                               pool is central, idle workers always
 *                               pull the next undone unit; stragglers
 *                               are speculatively re-dispatched)
 *      POST /renew?worker=w&hash=h
 *                               extend the lease (a worker that stops
 *                               renewing forfeits after the timeout)
 *      POST /complete?worker=w&hash=h   body = fragment document
 *                               deliver a result; folded into the
 *                               streaming merge, persisted to the
 *                               backing store (first-wins), duplicate
 *                               deliveries deduped
 *      GET  /status             the tcsim-sched-status-v1 document
 *      GET  /partial            the rolling tcsim-bench-partial-v1
 *
 *  - the object-store shim (see bench/store_server.h) on the same
 *    port, so workers push heartbeats and share artifacts through
 *    one URL.
 *
 * The scheduler exits once every unit of the matrix has a result,
 * after writing the canonical results document — rendered by the same
 * shared renderer as the single-process path, hence byte-identical.
 * Resume is crash-safe: on startup, valid fragments already in the
 * backing store mark their units completed and only the holes are
 * dispatched.
 *
 * Matrix flags are shared with tcsim_sweep (see tools/matrix_args.h);
 * scheduler flags:
 *   --fragments-dir d     backing store directory (required)
 *   --out f               final canonical results document (required)
 *   --bind a              bind address (default 127.0.0.1)
 *   --port n              TCP port (default 0 = ephemeral)
 *   --port-file f         write the bound port (for launchers)
 *   --lease-timeout sec   unrenewed-lease expiry (default 120)
 *   --straggler-k f       re-dispatch past k x median (default 3)
 *   --min-median-samples n  completions before the median is trusted
 *   --partial-out f       rolling partial document (rewritten live)
 *   --status-out f        status document (rewritten live + at exit)
 *   --manifest-out f      store manifest document written at exit
 *   --max-seconds sec     abort (exit 5) if not done in time (CI)
 *
 * Auth: TCSIM_FARM_TOKEN (or TCSIM_STATUS_TOKEN) must be set; workers
 * present the same token.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/sched.h"
#include "bench/store.h"
#include "bench/store_server.h"
#include "bench/sweep.h"
#include "obs/http.h"
#include "tools/matrix_args.h"

namespace
{

using namespace tcsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --fragments-dir d --out f [--bind a] "
                 "[--port n] [--port-file f]\n"
                 "  [--lease-timeout sec] [--straggler-k f] "
                 "[--min-median-samples n]\n"
                 "  [--partial-out f] [--status-out f] "
                 "[--manifest-out f] [--max-seconds sec]\n"
                 "  [matrix flags: --benchmarks --configs --insts "
                 "--warmup --insts-for\n"
                 "   --sampled-interval --sampled-max-k --replay]\n",
                 argv0);
    std::exit(1);
}

double
monoSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/** The raw value of `key=` in @p query ("" when absent). */
std::string
queryParam(const std::string &query, const std::string &key)
{
    std::size_t start = 0;
    while (start <= query.size()) {
        const std::size_t amp = query.find('&', start);
        const std::size_t end =
            amp == std::string::npos ? query.size() : amp;
        const std::string pair = query.substr(start, end - start);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos && pair.substr(0, eq) == key)
            return pair.substr(eq + 1);
        if (amp == std::string::npos)
            break;
        start = amp + 1;
    }
    return "";
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

obs::HttpResponse
jsonReply(int status, const std::string &body)
{
    obs::HttpResponse resp;
    resp.status = status;
    resp.body = body;
    return resp;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string fragments_dir, out_path, partial_out, status_out;
    std::string manifest_out, port_file, bind_addr = "127.0.0.1";
    long port = 0;
    double max_seconds = 0.0;
    bench::SchedOptions sched_options;
    tools::MatrixArgs matrix;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (matrix.consume(arg, next)) {
            continue;
        } else if (arg == "--fragments-dir") {
            fragments_dir = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--bind") {
            bind_addr = next();
        } else if (arg == "--port") {
            port = std::strtol(next(), nullptr, 10);
        } else if (arg == "--port-file") {
            port_file = next();
        } else if (arg == "--lease-timeout") {
            sched_options.leaseTimeoutSeconds =
                std::strtod(next(), nullptr);
        } else if (arg == "--straggler-k") {
            sched_options.stragglerK = std::strtod(next(), nullptr);
        } else if (arg == "--min-median-samples") {
            sched_options.minMedianSamples = static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--partial-out") {
            partial_out = next();
        } else if (arg == "--status-out") {
            status_out = next();
        } else if (arg == "--manifest-out") {
            manifest_out = next();
        } else if (arg == "--max-seconds") {
            max_seconds = std::strtod(next(), nullptr);
        } else {
            usage(argv[0]);
        }
    }
    if (fragments_dir.empty() || out_path.empty())
        usage(argv[0]);
    if (!matrix.finalize())
        return 1;

    const std::string token = bench::farmToken();
    if (token.empty()) {
        std::fprintf(stderr,
                     "tcsim_sched: set TCSIM_FARM_TOKEN (or "
                     "TCSIM_STATUS_TOKEN)\n");
        return 1;
    }

    const std::vector<bench::WorkUnit> units =
        bench::enumerateUnits(matrix.options);
    const std::string matrix_hash = bench::matrixHash(units);

    bench::LocalDirStore store(fragments_dir);
    bench::StoreServer store_server(store);
    std::mutex sched_mutex;
    bench::Scheduler sched(units, sched_options);

    // Crash-safe resume: every valid fragment already in the store
    // fills its unit, so a restarted scheduler dispatches the holes.
    std::size_t resumed = 0;
    for (const bench::StoreObject &object : store.list("")) {
        const std::string &name = object.name;
        if (name.size() <= 5 ||
            name.compare(name.size() - 5, 5, ".json") != 0 ||
            obs::isHeartbeatFilename(name)) {
            continue;
        }
        const std::optional<std::string> bytes = store.get(name);
        bench::FragmentData frag;
        if (!bytes || !bench::parseFragmentBytes(*bytes, frag))
            continue;
        if (name.substr(0, name.size() - 5) != frag.hash)
            continue;
        if (sched.markCompleted(frag.hash, frag.integers))
            ++resumed;
    }

    const auto handler =
        [&](const obs::HttpRequest &request) -> obs::HttpResponse {
        if (bench::StoreServer::routes(request))
            return store_server.handle(request);

        const double now = monoSeconds();
        if (request.path == "/lease") {
            if (request.method != "POST")
                return jsonReply(405, "{\"error\": \"method\"}\n");
            const std::string worker =
                queryParam(request.query, "worker");
            if (worker.empty())
                return jsonReply(400, "{\"error\": \"worker\"}\n");
            bench::LeaseGrant grant;
            bench::AcquireStatus status;
            {
                std::lock_guard<std::mutex> lock(sched_mutex);
                status = sched.acquire(worker, now, grant);
            }
            std::string body = "{\n";
            body += "  \"schema\": \"tcsim-sched-lease-v1\",\n";
            body += "  \"matrix_hash\": \"" + matrix_hash + "\",\n";
            if (status == bench::AcquireStatus::Granted) {
                body += "  \"status\": \"lease\",\n";
                body += "  \"unit_index\": " +
                        std::to_string(grant.unitIndex) + ",\n";
                body += "  \"unit_id\": \"" + jsonEscape(grant.unitId) +
                        "\",\n";
                body += "  \"hash\": \"" + grant.hash + "\",\n";
                body += "  \"renew_seconds\": " +
                        std::to_string(grant.renewSeconds) + "\n";
            } else {
                body += std::string("  \"status\": \"") +
                        (status == bench::AcquireStatus::Done ? "done"
                                                              : "wait") +
                        "\"\n";
            }
            body += "}\n";
            return jsonReply(200, body);
        }
        if (request.path == "/renew") {
            if (request.method != "POST")
                return jsonReply(405, "{\"error\": \"method\"}\n");
            const std::string worker =
                queryParam(request.query, "worker");
            const std::string hash = queryParam(request.query, "hash");
            bool ok;
            {
                std::lock_guard<std::mutex> lock(sched_mutex);
                ok = sched.renew(worker, hash, now);
            }
            return jsonReply(200, ok ? "{\"ok\": true}\n"
                                     : "{\"ok\": false}\n");
        }
        if (request.path == "/complete") {
            if (request.method != "POST")
                return jsonReply(405, "{\"error\": \"method\"}\n");
            const std::string worker =
                queryParam(request.query, "worker");
            const std::string hash = queryParam(request.query, "hash");
            bench::FragmentData frag;
            if (!bench::parseFragmentBytes(request.body, frag) ||
                frag.hash != hash) {
                // An invalid or mislabeled fragment is treated as
                // never delivered: the unit stays dispatchable.
                return jsonReply(400,
                                 "{\"result\": \"invalid\"}\n");
            }
            bench::Scheduler::CompleteStatus status;
            {
                std::lock_guard<std::mutex> lock(sched_mutex);
                status = sched.complete(worker, hash, frag.integers, now);
            }
            if (status == bench::Scheduler::CompleteStatus::Unknown)
                return jsonReply(404, "{\"result\": \"unknown\"}\n");
            // Persist for crash-safe resume. First-wins: a straggler
            // duplicate (same content-hashed name) is a no-op here.
            // Exception: an already-stored object that fails the
            // shared fragment-validity predicate (e.g. a fragment a
            // dying worker truncated mid-record into valid-but-
            // incomplete JSON) is overwritten with the verified
            // payload — first-wins would pin the poison forever, and
            // --check/--merge/resume all reject what this scheduler
            // just counted done.
            const std::string object_name = frag.hash + ".json";
            bool heal = false;
            if (const std::optional<std::string> existing =
                    store.get(object_name)) {
                bench::FragmentData stored;
                heal = !bench::parseFragmentBytes(*existing, stored) ||
                       stored.hash != frag.hash;
            }
            store.put(object_name, request.body, heal);
            return jsonReply(
                200,
                status == bench::Scheduler::CompleteStatus::Accepted
                    ? "{\"result\": \"accepted\"}\n"
                    : "{\"result\": \"duplicate\"}\n");
        }
        if (request.path == "/status") {
            std::lock_guard<std::mutex> lock(sched_mutex);
            return jsonReply(200, sched.renderStatus(now));
        }
        if (request.path == "/partial") {
            std::lock_guard<std::mutex> lock(sched_mutex);
            return jsonReply(200, sched.renderPartial());
        }
        return jsonReply(404, "{\"error\": \"not found\"}\n");
    };

    obs::HttpServer server;
    if (!server.start(bind_addr, static_cast<std::uint16_t>(port), token,
                      handler)) {
        return 1;
    }
    if (!port_file.empty() &&
        !writeFileAtomic(port_file, std::to_string(server.port()) + "\n")) {
        std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "tcsim_sched: %zu units (matrix %s), %zu resumed, "
                 "serving on %s:%u\n",
                 units.size(), matrix_hash.c_str(), resumed,
                 bind_addr.c_str(), static_cast<unsigned>(server.port()));

    const double start = monoSeconds();
    double last_docs = 0.0;
    const auto writeLiveDocs = [&](double now) {
        std::string partial, status;
        {
            std::lock_guard<std::mutex> lock(sched_mutex);
            if (!partial_out.empty())
                partial = sched.renderPartial();
            if (!status_out.empty())
                status = sched.renderStatus(now);
        }
        if (!partial.empty())
            (void)writeFileAtomic(partial_out, partial);
        if (!status.empty())
            (void)writeFileAtomic(status_out, status);
    };

    bool timed_out = false;
    for (;;) {
        const double now = monoSeconds();
        bool finished;
        {
            std::lock_guard<std::mutex> lock(sched_mutex);
            sched.tick(now);
            finished = sched.done();
        }
        if (finished)
            break;
        if (max_seconds > 0.0 && now - start > max_seconds) {
            timed_out = true;
            break;
        }
        if (now - last_docs >= 1.0) {
            writeLiveDocs(now);
            last_docs = now;
        }
        // Short poll: the loop only ticks leases and watches for
        // done, but its period bounds how stale the exit detection
        // is — and that latency lands directly on the sweep's
        // wall-clock.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }

    // Final documents, then shut the endpoint down. The status and
    // partial documents are rewritten one last time so post-mortem
    // tooling (validate_obs.py, CI assertions) sees the end state.
    const double now = monoSeconds();
    writeLiveDocs(now);
    std::string status_doc, final_doc;
    {
        std::lock_guard<std::mutex> lock(sched_mutex);
        status_doc = sched.renderStatus(now);
        if (sched.done())
            final_doc = sched.renderResults();
    }
    if (!manifest_out.empty() &&
        !writeFileAtomic(manifest_out, store_server.renderManifest(""))) {
        std::fprintf(stderr, "cannot write %s\n", manifest_out.c_str());
    }
    server.stop();

    if (timed_out) {
        std::fprintf(stderr, "tcsim_sched: --max-seconds %.1f exceeded "
                             "(%llu/%zu units)\n",
                     max_seconds,
                     static_cast<unsigned long long>(
                         sched.completedUnits()),
                     units.size());
        return 5;
    }
    if (!writeFileAtomic(out_path, final_doc)) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 3;
    }
    std::fprintf(stderr,
                 "tcsim_sched: done — %zu units, %llu leases, %llu "
                 "expired, %llu redispatched, %llu duplicates\n",
                 units.size(),
                 static_cast<unsigned long long>(sched.leasesIssued()),
                 static_cast<unsigned long long>(sched.leasesExpired()),
                 static_cast<unsigned long long>(sched.redispatches()),
                 static_cast<unsigned long long>(sched.duplicates()));
    return 0;
}
