/**
 * @file
 * Shared command-line parsing for the sweep matrix: every tool that
 * enumerates work units (tcsim_sweep, tcsim_sched, tcsim_monitor's
 * sweep view) must build the SAME SweepOptions from the same flags,
 * or workers and the scheduler would silently disagree on unit hashes.
 * Centralizing the flags here makes that drift impossible.
 *
 * Flags consumed:
 *   --benchmarks a,b,c    subset of the suite (default: all)
 *   --configs x,y         preset names (default sweep set)
 *   --insts <n>           per-unit budget (default: profile default)
 *   --warmup <n>          predictor warm-up instructions
 *   --sampled-interval n  sampled execution: BBV interval length
 *   --sampled-max-k k     sampled execution: k-means cluster cap
 *   --replay              drive each unit's front end from a cached
 *                         tcsim-btrace-v1 recording instead of cycle
 *                         simulation (excludes --warmup/sampled)
 *   --insts-for sel=n[,sel=n...]
 *                         per-unit budget overrides; sel is
 *                         "benchmark" or "benchmark@config" (the cell
 *                         form wins). Used to build deliberately
 *                         skewed matrices for scheduler stress tests.
 */

#ifndef TCSIM_TOOLS_MATRIX_ARGS_H
#define TCSIM_TOOLS_MATRIX_ARGS_H

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/sweep.h"

namespace tcsim::tools
{

inline std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

class MatrixArgs
{
  public:
    /**
     * Try to consume @p arg as a matrix flag; @p next yields the
     * flag's value (and may exit on a missing one, like the tools'
     * usage() helpers do). @return whether the flag was ours.
     */
    bool
    consume(const std::string &arg,
            const std::function<const char *()> &next)
    {
        if (arg == "--benchmarks") {
            options.benchmarks = splitCommas(next());
        } else if (arg == "--configs") {
            configNames_ = splitCommas(next());
        } else if (arg == "--insts") {
            options.insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            options.warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sampled-interval") {
            options.sampled.enabled = true;
            options.sampled.interval =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sampled-max-k") {
            options.sampled.enabled = true;
            options.sampled.maxK = static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--replay") {
            options.replay = true;
        } else if (arg == "--insts-for") {
            if (!addInstsFor(next()))
                bad_ = true;
        } else {
            return false;
        }
        return true;
    }

    /**
     * Validate and resolve what consume() collected (config names ->
     * configs, sampled-flag pairing). Prints the problem to stderr
     * and @return false on error.
     */
    bool
    finalize()
    {
        if (bad_)
            return false;
        if (options.sampled.enabled &&
            (options.sampled.interval == 0 || options.sampled.maxK == 0)) {
            std::fprintf(stderr,
                         "--sampled-interval and --sampled-max-k must "
                         "be given together\n");
            return false;
        }
        if (options.replay &&
            (options.sampled.enabled || options.warmup != 0)) {
            std::fprintf(stderr,
                         "--replay cannot combine with --warmup or "
                         "sampled execution\n");
            return false;
        }
        for (const std::string &name : configNames_) {
            std::optional<sim::ProcessorConfig> config =
                bench::configByName(name);
            if (!config) {
                std::fprintf(stderr, "unknown config '%s'\n",
                             name.c_str());
                return false;
            }
            options.configs.push_back(std::move(*config));
        }
        return true;
    }

    bench::SweepOptions options;

  private:
    bool
    addInstsFor(const std::string &spec)
    {
        for (const std::string &pair : splitCommas(spec)) {
            const std::size_t eq = pair.find('=');
            const std::string digits =
                eq == std::string::npos ? "" : pair.substr(eq + 1);
            if (eq == 0 || digits.empty() ||
                digits.find_first_not_of("0123456789") !=
                    std::string::npos) {
                std::fprintf(stderr,
                             "bad --insts-for entry '%s' (want "
                             "bench[@config]=insts)\n",
                             pair.c_str());
                return false;
            }
            options.instsFor.emplace_back(
                pair.substr(0, eq),
                std::strtoull(digits.c_str(), nullptr, 10));
        }
        return true;
    }

    std::vector<std::string> configNames_;
    bool bad_ = false;
};

} // namespace tcsim::tools

#endif // TCSIM_TOOLS_MATRIX_ARGS_H
