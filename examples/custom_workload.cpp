/**
 * @file
 * Custom workload: build a µRISC program by hand with ProgramBuilder
 * — a checksum kernel with an error-check branch that never fires —
 * then measure how branch promotion and trace packing treat it.
 * Demonstrates the full public API surface: builder, functional
 * executor, and processor.
 */

#include <cstdio>

#include "sim/processor.h"
#include "workload/builder.h"
#include "workload/executor.h"

int
main()
{
    using namespace tcsim;
    using workload::Label;

    // --------------------------------------------------------------
    // Build the kernel: checksum over a 4 KB table, with a never-firing
    // error check in the loop body (a classic promotion candidate) and
    // a hot latch.
    // --------------------------------------------------------------
    workload::ProgramBuilder kb("checksum-kernel");
    const Addr kdata = kb.allocData(4096);
    for (unsigned w = 0; w < 512; ++w)
        kb.setData(kdata + 8 * w, 0x9e3779b97f4a7c15ULL * (w + 1));

    kb.loadImm64(5, static_cast<std::uint32_t>(kdata));
    kb.addi(4, 0, 0);    // checksum
    kb.addi(9, 0, 800);  // outer repetitions
    Label kouter = kb.here();
    kb.addi(3, 0, 500);  // inner trip
    kb.add(6, 5, 0);     // cursor = base
    Label ktop = kb.here();
    kb.ld(7, 0, 6);            // value = *cursor
    kb.xor_(4, 4, 7);          // checksum ^= value
    kb.slli(8, 4, 3);
    kb.add(4, 4, 8);           // mix
    Label kskip = kb.newLabel();
    kb.bne(0, 0, kskip);       // error check: never taken
    kb.addi(4, 4, 1);          // (dead) error path
    kb.bind(kskip);
    kb.addi(6, 6, 8);          // cursor += 8
    kb.addi(3, 3, -1);
    kb.bne(3, 0, ktop);        // hot latch: promotable
    kb.addi(9, 9, -1);
    kb.bne(9, 0, kouter);
    kb.halt();
    workload::Program program = kb.build();

    // --------------------------------------------------------------
    // Check the kernel architecturally first.
    // --------------------------------------------------------------
    workload::FunctionalExecutor golden(program);
    const std::uint64_t budget = 600000;
    while (!golden.halted() && golden.instCount() < budget)
        golden.step();
    std::printf("kernel: %llu architectural instructions, checksum=%llx\n",
                static_cast<unsigned long long>(golden.instCount()),
                static_cast<unsigned long long>(golden.reg(4)));

    // --------------------------------------------------------------
    // Measure the paper's techniques on it.
    // --------------------------------------------------------------
    for (const sim::ProcessorConfig &config :
         {sim::baselineConfig(), sim::promotionConfig(64),
          sim::promotionPackingConfig(64)}) {
        sim::Processor proc(config, program);
        const sim::SimResult r = proc.run(400000);
        std::printf("%-26s effFetch=%5.2f IPC=%5.2f promoted=%llu "
                    "faults=%llu\n",
                    r.config.c_str(), r.effectiveFetchRate, r.ipc,
                    static_cast<unsigned long long>(r.promotedRetired),
                    static_cast<unsigned long long>(r.promotedFaults));
    }
    return 0;
}
